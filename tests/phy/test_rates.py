"""Discrete rate-table tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.error import PacketErrorModel
from repro.phy.rates import (
    DOT11N_MCS_COUNT,
    DOT11B,
    DOT11G,
    DOT11N_20MHZ,
    STANDARD_TABLES,
    RateStep,
    RateTable,
    best_discrete_rate,
)
from repro.util.units import db_to_linear


class TestTableDefinitions:
    def test_granularity_matches_paper(self):
        # "4 in 802.11b vs 8 in 802.11g vs 32 in 802.11n".  The 32 MCS
        # indices of 802.11n share several rate values, so the distinct
        # rate steps number 18 — still far finer than b/g.
        assert len(DOT11B) == 4
        assert len(DOT11G) == 8
        assert DOT11N_MCS_COUNT == 32
        assert len(DOT11N_20MHZ) == 18
        assert len(DOT11N_20MHZ) > len(DOT11G) > len(DOT11B)

    def test_dot11g_rates(self):
        assert [s.rate_bps / 1e6 for s in DOT11G.steps] == \
            [6, 9, 12, 18, 24, 36, 48, 54]

    def test_dot11b_rates(self):
        assert [s.rate_bps / 1e6 for s in DOT11B.steps] == [1, 2, 5.5, 11]

    def test_thresholds_monotone(self):
        for table in STANDARD_TABLES.values():
            thresholds = [s.min_sinr_db for s in table.steps]
            assert thresholds == sorted(thresholds)

    def test_rates_strictly_increasing(self):
        for table in STANDARD_TABLES.values():
            rates = table.rates_bps
            assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_registry_names(self):
        assert set(STANDARD_TABLES) == {"802.11b", "802.11g",
                                        "802.11n-20MHz"}


class TestTableValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RateTable(name="x", steps=())

    def test_rejects_unsorted_rates(self):
        with pytest.raises(ValueError, match="increasing"):
            RateTable.from_pairs("x", [(2e6, 5.0), (1e6, 3.0)])

    def test_rejects_nonmonotone_thresholds(self):
        with pytest.raises(ValueError, match="threshold"):
            RateTable.from_pairs("x", [(1e6, 5.0), (2e6, 3.0)])

    def test_rejects_duplicate_rates(self):
        with pytest.raises(ValueError):
            RateTable.from_pairs("x", [(1e6, 3.0), (1e6, 5.0)])


class TestBestRate:
    def test_below_all_thresholds(self):
        assert DOT11G.best_rate(float(db_to_linear(2.0))) == 0.0

    def test_at_lowest_threshold(self):
        assert DOT11G.best_rate(float(db_to_linear(5.0))) == 6e6

    def test_top_rate(self):
        assert DOT11G.best_rate(float(db_to_linear(40.0))) == 54e6

    def test_intermediate(self):
        assert DOT11G.best_rate(float(db_to_linear(15.0))) == 24e6

    def test_zero_sinr(self):
        assert DOT11G.best_rate(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DOT11G.best_rate(-1.0)

    def test_best_rate_db_consistent(self):
        for sinr_db in (0.0, 5.0, 13.9, 24.0, 50.0):
            assert DOT11G.best_rate_db(sinr_db) == \
                DOT11G.best_rate(float(db_to_linear(sinr_db)))

    @given(st.floats(min_value=0.0, max_value=1e8))
    def test_monotone_in_sinr(self, sinr):
        assert DOT11G.best_rate(sinr) <= DOT11G.best_rate(sinr * 2 + 1)


class TestQuantize:
    def test_below_lowest(self):
        assert DOT11G.quantize(5e6) == 0.0

    def test_exact_rate(self):
        assert DOT11G.quantize(24e6) == 24e6

    def test_between_rates(self):
        assert DOT11G.quantize(30e6) == 24e6

    def test_above_top(self):
        assert DOT11G.quantize(1e9) == 54e6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DOT11G.quantize(-1.0)


class TestThresholdLookup:
    def test_known_rate(self):
        assert DOT11G.threshold_for_rate(6e6) == 5.0

    def test_unknown_rate(self):
        with pytest.raises(KeyError):
            DOT11G.threshold_for_rate(7e6)


class TestBestDiscreteRate:
    def test_without_error_model_equals_hard_threshold(self):
        sinr = float(db_to_linear(15.0))
        assert best_discrete_rate(DOT11G, sinr) == DOT11G.best_rate(sinr)

    def test_90pct_needs_margin_over_threshold(self):
        model = PacketErrorModel()
        # Exactly at a step's threshold, success is only ~50 %, so the
        # 90 % criterion must choose a lower rate than the hard rule.
        sinr = float(db_to_linear(14.0))  # exactly the 24 Mbps threshold
        assert DOT11G.best_rate(sinr) == 24e6
        assert best_discrete_rate(DOT11G, sinr, error_model=model) < 24e6

    def test_converges_with_margin(self):
        model = PacketErrorModel()
        sinr = float(db_to_linear(17.0))  # 3 dB above the 24 Mbps step
        assert best_discrete_rate(DOT11G, sinr, error_model=model) == 24e6

    def test_zero_sinr_gives_zero(self):
        assert best_discrete_rate(DOT11G, 0.0,
                                  error_model=PacketErrorModel()) == 0.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            best_discrete_rate(DOT11G, 1.0, target_success=1.5)


class TestRateStep:
    def test_linear_threshold(self):
        step = RateStep(rate_bps=1e6, min_sinr_db=10.0)
        assert step.min_sinr_linear == pytest.approx(10.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateStep(rate_bps=0.0, min_sinr_db=0.0)
