"""Packet-error model tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.error import PacketErrorModel, packet_success_probability
from repro.phy.rates import DOT11G, RateStep
from repro.util.units import db_to_linear


class TestSuccessCurve:
    def test_half_at_threshold(self):
        assert packet_success_probability(10.0, 10.0) == 0.5

    def test_saturates_high(self):
        assert packet_success_probability(60.0, 10.0) == 1.0

    def test_saturates_low(self):
        assert packet_success_probability(-60.0, 10.0) == 0.0

    def test_monotone_in_sinr(self):
        probs = [packet_success_probability(x, 10.0)
                 for x in (5.0, 8.0, 10.0, 12.0, 15.0)]
        assert probs == sorted(probs)

    def test_longer_packets_fail_more(self):
        short = packet_success_probability(11.0, 10.0, packet_bits=4000)
        long_ = packet_success_probability(11.0, 10.0, packet_bits=24000)
        assert long_ < short

    def test_reference_length_neutral(self):
        assert packet_success_probability(
            11.0, 10.0, packet_bits=12000, reference_bits=12000) == \
            pytest.approx(1 / (1 + math.exp(-1.5)))

    def test_rejects_bad_steepness(self):
        with pytest.raises(ValueError):
            packet_success_probability(10.0, 10.0, steepness_per_db=0.0)

    @given(st.floats(min_value=-30.0, max_value=60.0))
    def test_valid_probability(self, sinr_db):
        p = packet_success_probability(sinr_db, 10.0)
        assert 0.0 <= p <= 1.0


class TestPacketErrorModel:
    def test_packet_success_at_threshold(self):
        model = PacketErrorModel()
        step = RateStep(6e6, 5.0)
        assert model.packet_success(float(db_to_linear(5.0)), step) == \
            pytest.approx(0.5)

    def test_zero_sinr(self):
        model = PacketErrorModel()
        assert model.packet_success(0.0, DOT11G.steps[0]) == 0.0

    def test_rejects_negative_sinr(self):
        with pytest.raises(ValueError):
            PacketErrorModel().packet_success(-1.0, DOT11G.steps[0])

    def test_inversion_round_trip(self):
        model = PacketErrorModel()
        step = RateStep(12e6, 8.0)
        for target in (0.5, 0.9, 0.99):
            sinr_db = model.sinr_db_for_success(step, target)
            p = model.packet_success(float(db_to_linear(sinr_db)), step)
            assert p == pytest.approx(target, abs=1e-6)

    def test_90pct_margin_is_small(self):
        model = PacketErrorModel()
        step = RateStep(12e6, 8.0)
        sinr_db = model.sinr_db_for_success(step, 0.9)
        assert 8.0 < sinr_db < 11.0

    def test_inversion_rejects_degenerate_targets(self):
        model = PacketErrorModel()
        step = RateStep(12e6, 8.0)
        for target in (0.0, 1.0):
            with pytest.raises(ValueError):
                model.sinr_db_for_success(step, target)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            PacketErrorModel(steepness_per_db=-1.0)
