"""Shannon-rate / airtime tests (paper Eqs. 1, 2 and Table 1)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import (
    Channel,
    airtime,
    rate_from_snr_db,
    shannon_rate,
    sinr,
)

positive_power = st.floats(min_value=1e-15, max_value=1.0)


class TestSinr:
    def test_no_interference(self):
        assert sinr(1e-9, 0.0, 1e-13) == pytest.approx(1e4)

    def test_with_interference(self):
        assert sinr(2.0, 1.0, 1.0) == pytest.approx(1.0)

    def test_zero_signal(self):
        assert sinr(0.0, 1.0, 1.0) == 0.0

    def test_rejects_negative_signal(self):
        with pytest.raises(ValueError):
            sinr(-1.0, 0.0, 1.0)

    def test_rejects_zero_noise(self):
        with pytest.raises(ValueError):
            sinr(1.0, 0.0, 0.0)

    def test_broadcasts(self):
        out = sinr(np.array([1.0, 2.0]), 0.0, 1.0)
        assert list(out) == [1.0, 2.0]


class TestShannonRate:
    def test_unit_snr(self):
        # log2(1 + 1) == 1 bit/s/Hz
        assert shannon_rate(1e6, 1.0, 0.0, 1.0) == pytest.approx(1e6)

    def test_eq1_interference_limited(self):
        # Eq. 1: r = B log2(1 + S1/(S2 + N0))
        rate = shannon_rate(20e6, 3.0, 1.0, 1.0)
        assert rate == pytest.approx(20e6 * math.log2(1 + 3.0 / 2.0))

    def test_eq2_clean(self):
        rate = shannon_rate(20e6, 7.0, 0.0, 1.0)
        assert rate == pytest.approx(20e6 * 3.0)

    def test_zero_signal_zero_rate(self):
        assert shannon_rate(1e6, 0.0, 0.0, 1.0) == 0.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            shannon_rate(0.0, 1.0, 0.0, 1.0)

    @given(positive_power, positive_power)
    def test_interference_never_helps(self, s, i):
        clean = shannon_rate(1e6, s, 0.0, 1e-13)
        interfered = shannon_rate(1e6, s, i, 1e-13)
        assert interfered <= clean

    @given(positive_power, positive_power)
    def test_monotone_in_signal(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert (shannon_rate(1e6, lo, 0.0, 1e-13)
                <= shannon_rate(1e6, hi, 0.0, 1e-13))


class TestAirtime:
    def test_simple(self):
        assert airtime(1000.0, 1000.0) == 1.0

    def test_zero_rate_is_infinite(self):
        assert airtime(1000.0, 0.0) == math.inf

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            airtime(0.0, 1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            airtime(10.0, -1.0)

    def test_broadcasts(self):
        out = airtime(100.0, np.array([10.0, 0.0]))
        assert out[0] == 10.0 and math.isinf(out[1])


class TestChannel:
    def test_defaults_positive(self):
        ch = Channel()
        assert ch.bandwidth_hz > 0 and ch.noise_w > 0

    def test_frozen(self):
        ch = Channel()
        with pytest.raises(AttributeError):
            ch.bandwidth_hz = 1.0

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            Channel(noise_w=0.0)

    def test_rate_matches_function(self, channel):
        assert channel.rate(1e-9, 1e-10) == pytest.approx(
            shannon_rate(channel.bandwidth_hz, 1e-9, 1e-10,
                         channel.noise_w))

    def test_snr(self, channel):
        assert channel.snr(channel.noise_w) == pytest.approx(1.0)

    def test_airtime_helper(self, channel):
        t = channel.airtime(12000.0, 1e-9)
        assert t == pytest.approx(12000.0 / channel.rate(1e-9))


class TestRateFromSnrDb:
    def test_zero_db(self):
        assert rate_from_snr_db(1e6, 0.0) == pytest.approx(1e6)

    def test_matches_linear_path(self):
        assert rate_from_snr_db(20e6, 20.0) == pytest.approx(
            shannon_rate(20e6, 100.0, 0.0, 1.0))
