"""Propagation-model tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.pathloss import (
    FreeSpace,
    LogDistancePathLoss,
    free_space_path_gain,
    received_power,
)


class TestFreeSpaceGain:
    def test_decays_with_square(self):
        assert free_space_path_gain(20.0) == pytest.approx(
            free_space_path_gain(10.0) / 4.0)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            free_space_path_gain(0.0)

    def test_gain_below_unity_beyond_wavelength(self):
        assert free_space_path_gain(1.0) < 1.0

    def test_frequency_dependence(self):
        # Higher frequency, shorter wavelength, more loss.
        assert (free_space_path_gain(10.0, frequency_hz=5.8e9)
                < free_space_path_gain(10.0, frequency_hz=2.4e9))


class TestLogDistance:
    def test_alpha4_decay(self):
        model = LogDistancePathLoss(exponent=4.0)
        assert model.path_gain(20.0) == pytest.approx(
            model.path_gain(10.0) / 16.0)

    def test_matches_free_space_at_reference(self):
        model = LogDistancePathLoss(exponent=4.0, reference_distance_m=1.0)
        assert model.path_gain(1.0) == pytest.approx(free_space_path_gain(1.0))

    def test_free_space_inside_reference(self):
        model = LogDistancePathLoss(exponent=4.0, reference_distance_m=10.0)
        assert model.path_gain(5.0) == pytest.approx(free_space_path_gain(5.0))

    def test_received_power_scales_with_tx_power(self):
        model = LogDistancePathLoss()
        assert model.received_power(0.2, 10.0) == pytest.approx(
            2.0 * model.received_power(0.1, 10.0))

    def test_shadowing_requires_rng(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        with pytest.raises(ValueError, match="rng"):
            model.received_power(0.1, 10.0)

    def test_shadowing_is_random_but_seeded(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        a = model.received_power(0.1, 10.0, np.random.default_rng(1))
        b = model.received_power(0.1, 10.0, np.random.default_rng(1))
        c = model.received_power(0.1, 10.0, np.random.default_rng(2))
        assert a == b
        assert a != c

    def test_shadowing_unbiased_in_db(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        rng = np.random.default_rng(0)
        samples = model.received_power(0.1, np.full(4000, 10.0), rng)
        mean_db = np.mean(10 * np.log10(samples))
        expected_db = 10 * math.log10(
            0.1 * LogDistancePathLoss().path_gain(10.0))
        assert abs(mean_db - expected_db) < 0.3

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().path_gain(0.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)

    @given(st.floats(min_value=1.0, max_value=1000.0),
           st.floats(min_value=1.0, max_value=1000.0))
    def test_monotone_decay(self, d1, d2):
        model = LogDistancePathLoss()
        near, far = min(d1, d2), max(d1, d2)
        assert model.path_gain(far) <= model.path_gain(near)

    def test_array_input(self):
        model = LogDistancePathLoss()
        gains = model.path_gain(np.array([1.0, 10.0, 100.0]))
        assert gains.shape == (3,)
        assert gains[0] > gains[1] > gains[2]


class TestBatchGoldenEquivalence:
    """``path_gain_batch`` / ``received_power_batch`` must be
    bit-identical, element for element and draw for draw, to scalar
    calls in C order — the contract the vectorized trace generators'
    golden equivalence reduces to."""

    def distances(self, rng, shape):
        # Mix of near-field (< reference) and far-field distances.
        return rng.uniform(0.3, 120.0, size=shape)

    @pytest.mark.parametrize("exponent", [2.0, 3.5, 4.0])
    def test_path_gain_batch_elementwise_identical(self, exponent):
        model = LogDistancePathLoss(exponent=exponent)
        rng = np.random.default_rng(42)
        d = self.distances(rng, (7, 11))
        batch = model.path_gain_batch(d)
        assert batch.shape == d.shape
        for idx in np.ndindex(d.shape):
            assert batch[idx] == model.path_gain(float(d[idx]))

    def test_free_space_batch_elementwise_identical(self):
        model = FreeSpace()
        rng = np.random.default_rng(1)
        d = self.distances(rng, 40)
        batch = model.path_gain_batch(d)
        for k in range(d.size):
            assert batch[k] == model.path_gain(float(d[k]))

    def test_received_power_batch_no_shadowing(self):
        model = LogDistancePathLoss(exponent=3.5)
        rng = np.random.default_rng(2)
        d = self.distances(rng, (5, 8))
        batch = model.received_power_batch(0.1, d)
        for idx in np.ndindex(d.shape):
            assert batch[idx] == model.received_power(0.1, float(d[idx]))

    def test_received_power_batch_replays_shadowing_stream(self):
        # One block normal draw == per-element scalar draws in C order
        # with the same generator state.
        model = LogDistancePathLoss(exponent=3.5, shadowing_sigma_db=6.0)
        d = self.distances(np.random.default_rng(3), (6, 9))
        batch = model.received_power_batch(
            0.1, d, np.random.default_rng(2010))
        scalar_rng = np.random.default_rng(2010)
        for idx in np.ndindex(d.shape):
            assert batch[idx] == model.received_power(
                0.1, float(d[idx]), scalar_rng)

    def test_batch_leaves_rng_in_scalar_loop_state(self):
        # The generators interleave batch draws with later scalar draws,
        # so the post-call generator state must match the scalar loop's.
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        d = np.full((3, 4), 20.0)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        model.received_power_batch(0.1, d, rng_a)
        for idx in np.ndindex(d.shape):
            model.received_power(0.1, float(d[idx]), rng_b)
        assert rng_a.uniform() == rng_b.uniform()

    def test_batch_errors_match_scalar(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        with pytest.raises(ValueError):
            model.path_gain_batch(np.array([10.0, 0.0]))
        with pytest.raises(ValueError, match="rng"):
            model.received_power_batch(0.1, np.array([10.0]))
        with pytest.raises(ValueError):
            model.received_power_batch(0.0, np.array([10.0]),
                                       np.random.default_rng(0))


class TestReceivedPowerHelper:
    def test_default_model_is_alpha4(self):
        direct = LogDistancePathLoss().received_power(0.1, 25.0)
        assert received_power(0.1, 25.0) == pytest.approx(direct)

    def test_free_space_model(self):
        p = received_power(0.1, 25.0, model=FreeSpace())
        assert p == pytest.approx(0.1 * free_space_path_gain(25.0))

    def test_shadowed_model_with_seed(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        a = received_power(0.1, 25.0, model=model, rng=3)
        b = received_power(0.1, 25.0, model=model, rng=3)
        assert a == b
