"""Thermal-noise tests."""

import math

import pytest

from repro.phy.noise import (
    BOLTZMANN_J_PER_K,
    REFERENCE_TEMPERATURE_K,
    thermal_noise_watts,
)
from repro.util.units import watts_to_dbm


class TestThermalNoise:
    def test_ktb_at_zero_noise_figure(self):
        n = thermal_noise_watts(1.0, noise_figure_db=0.0)
        assert n == pytest.approx(BOLTZMANN_J_PER_K * REFERENCE_TEMPERATURE_K)

    def test_20mhz_floor_near_minus_101_dbm(self):
        # -174 dBm/Hz + 10log10(20e6) ~ -101 dBm, plus 7 dB NF ~ -94 dBm.
        n_dbm = watts_to_dbm(thermal_noise_watts(20e6))
        assert -97.0 < n_dbm < -92.0

    def test_scales_linearly_with_bandwidth(self):
        assert thermal_noise_watts(40e6) == pytest.approx(
            2.0 * thermal_noise_watts(20e6))

    def test_noise_figure_multiplies(self):
        base = thermal_noise_watts(1e6, noise_figure_db=0.0)
        assert thermal_noise_watts(1e6, noise_figure_db=3.0103) == \
            pytest.approx(2.0 * base, rel=1e-4)

    def test_rejects_negative_noise_figure(self):
        with pytest.raises(ValueError):
            thermal_noise_watts(1e6, noise_figure_db=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_watts(0.0)
