"""Block-fading channel tests."""

import numpy as np
import pytest

from repro.phy.fading import (
    BlockFadingLink,
    rayleigh_power_series,
    rician_power_series,
)


class TestRayleigh:
    def test_mean_converges(self):
        series = rayleigh_power_series(2.0, 50_000, rng=1)
        assert np.mean(series) == pytest.approx(2.0, rel=0.05)

    def test_all_positive(self):
        series = rayleigh_power_series(1.0, 1000, rng=2)
        assert np.all(series > 0.0)

    def test_deterministic_with_seed(self):
        a = rayleigh_power_series(1.0, 10, rng=3)
        b = rayleigh_power_series(1.0, 10, rng=3)
        assert np.array_equal(a, b)

    def test_zero_blocks(self):
        assert rayleigh_power_series(1.0, 0, rng=1).size == 0

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            rayleigh_power_series(0.0, 10)

    def test_rejects_negative_blocks(self):
        with pytest.raises(ValueError):
            rayleigh_power_series(1.0, -1)

    def test_exponential_shape(self):
        # Median of an exponential is mean * ln 2.
        series = rayleigh_power_series(1.0, 50_000, rng=4)
        assert np.median(series) == pytest.approx(np.log(2.0), rel=0.05)


class TestRician:
    def test_mean_converges(self):
        series = rician_power_series(3.0, k_factor=5.0, n_blocks=50_000,
                                     rng=1)
        assert np.mean(series) == pytest.approx(3.0, rel=0.05)

    def test_k_zero_is_rayleigh_like(self):
        series = rician_power_series(1.0, 0.0, 50_000, rng=2)
        # Exponential distribution: variance == mean^2.
        assert np.var(series) == pytest.approx(1.0, rel=0.1)

    def test_large_k_is_nearly_static(self):
        series = rician_power_series(1.0, 100.0, 20_000, rng=3)
        assert np.std(series) < 0.3

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            rician_power_series(1.0, -0.1, 10)


class TestBlockFadingLink:
    def test_rayleigh_default(self):
        link = BlockFadingLink(mean_sinr_linear=10.0)
        series = link.sinr_series(30_000, rng=5)
        assert np.mean(series) == pytest.approx(10.0, rel=0.05)

    def test_rician_variant(self):
        link = BlockFadingLink(mean_sinr_linear=10.0, k_factor=10.0)
        rayleigh = BlockFadingLink(mean_sinr_linear=10.0)
        assert np.std(link.sinr_series(20_000, rng=6)) < \
            np.std(rayleigh.sinr_series(20_000, rng=6))

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            BlockFadingLink(mean_sinr_linear=0.0)
