"""ARF rate-adaptation tests."""

import numpy as np
import pytest

from repro.phy.adaptation import (
    AdaptationTrace,
    ArfRateAdapter,
    adaptation_slack_sic_gain,
    run_adaptation,
)
from repro.phy.fading import BlockFadingLink
from repro.phy.rates import DOT11B, DOT11G
from repro.util.units import db_to_linear


class TestArfStateMachine:
    def test_starts_at_lowest_rate(self):
        adapter = ArfRateAdapter()
        assert adapter.current_rate_bps == DOT11G.steps[0].rate_bps

    def test_steps_up_after_successes(self):
        adapter = ArfRateAdapter(success_threshold=3)
        for _ in range(3):
            adapter.record(True)
        assert adapter.current_rate_bps == DOT11G.steps[1].rate_bps

    def test_steps_down_after_failures(self):
        adapter = ArfRateAdapter(success_threshold=1,
                                 failure_threshold=2)
        adapter.record(True)   # step up to index 1
        adapter.record(False)
        adapter.record(False)
        assert adapter.current_rate_bps == DOT11G.steps[0].rate_bps

    def test_failure_resets_success_streak(self):
        adapter = ArfRateAdapter(success_threshold=3)
        adapter.record(True)
        adapter.record(True)
        adapter.record(False)
        adapter.record(True)
        adapter.record(True)
        assert adapter.current_rate_bps == DOT11G.steps[0].rate_bps

    def test_clamped_at_top(self):
        adapter = ArfRateAdapter(success_threshold=1)
        for _ in range(100):
            adapter.record(True)
        assert adapter.current_rate_bps == DOT11G.max_rate_bps

    def test_clamped_at_bottom(self):
        adapter = ArfRateAdapter(failure_threshold=1)
        for _ in range(10):
            adapter.record(False)
        assert adapter.current_rate_bps == DOT11G.steps[0].rate_bps

    def test_reset(self):
        adapter = ArfRateAdapter(success_threshold=1)
        adapter.record(True)
        adapter.reset()
        assert adapter.current_rate_bps == DOT11G.steps[0].rate_bps

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            ArfRateAdapter(success_threshold=0)

    def test_other_table(self):
        adapter = ArfRateAdapter(table=DOT11B, success_threshold=1)
        for _ in range(10):
            adapter.record(True)
        assert adapter.current_rate_bps == DOT11B.max_rate_bps


class TestRunAdaptation:
    def make_trace(self, mean_snr_db=25.0, n=2000, seed=7, **arf_kwargs):
        link = BlockFadingLink(float(db_to_linear(mean_snr_db)))
        sinrs = link.sinr_series(n, rng=seed)
        adapter = ArfRateAdapter(**arf_kwargs)
        return run_adaptation(adapter, sinrs, rng=seed + 1)

    def test_trace_shapes(self):
        trace = self.make_trace(n=500)
        assert trace.n_packets == 500
        assert trace.chosen_rate_bps.shape == trace.success.shape

    def test_good_channel_delivers(self):
        trace = self.make_trace(mean_snr_db=35.0)
        assert trace.delivery_ratio > 0.7

    def test_dead_channel_fails(self):
        link = BlockFadingLink(float(db_to_linear(-10.0)))
        sinrs = link.sinr_series(300, rng=1)
        trace = run_adaptation(ArfRateAdapter(), sinrs, rng=2)
        assert trace.delivery_ratio < 0.2

    def test_slack_exists_under_fading(self):
        # The paper's premise: practical adaptation leaves slack.
        trace = self.make_trace(mean_snr_db=25.0)
        assert trace.mean_slack_fraction > 0.05

    def test_faster_adaptation_less_slack(self):
        slow = self.make_trace(success_threshold=10, failure_threshold=2)
        fast = self.make_trace(success_threshold=2, failure_threshold=1)
        assert fast.mean_slack_fraction < slow.mean_slack_fraction

    def test_milder_fading_less_slack(self):
        snr = float(db_to_linear(25.0))
        rayleigh = BlockFadingLink(snr)
        rician = BlockFadingLink(snr, k_factor=20.0)
        trace_hard = run_adaptation(ArfRateAdapter(),
                                    rayleigh.sinr_series(2000, rng=3),
                                    rng=4)
        trace_easy = run_adaptation(ArfRateAdapter(),
                                    rician.sinr_series(2000, rng=3),
                                    rng=4)
        assert trace_easy.mean_slack_fraction < \
            trace_hard.mean_slack_fraction

    def test_overshoot_bounded(self):
        trace = self.make_trace()
        assert 0.0 <= trace.overshoot_fraction <= 1.0


class TestSlackSicGain:
    def make_pair(self, seed=11, **arf_kwargs):
        strong_snr = float(db_to_linear(30.0))
        weak_snr = float(db_to_linear(15.0))
        strong = run_adaptation(
            ArfRateAdapter(**arf_kwargs),
            BlockFadingLink(strong_snr).sinr_series(1500, rng=seed),
            rng=seed + 1)
        weak = run_adaptation(
            ArfRateAdapter(**arf_kwargs),
            BlockFadingLink(weak_snr).sinr_series(1500, rng=seed + 2),
            rng=seed + 3)
        return strong, weak, strong_snr, weak_snr

    def test_gain_at_least_one(self):
        strong, weak, s, w = self.make_pair()
        gain = adaptation_slack_sic_gain(strong, weak, s, w)
        assert gain >= 1.0

    def test_slack_produces_some_gain(self):
        # With ARF-chosen (conservative) rates, interference sometimes
        # fits inside the slack and concurrency pays.
        strong, weak, s, w = self.make_pair()
        gain = adaptation_slack_sic_gain(strong, weak, s, w)
        assert gain > 1.01

    def test_better_adaptation_shrinks_sic_gain(self):
        # The paper's central thesis: "this slack is fast disappearing
        # with ... the recent advances in bitrate adaptation".  A
        # slower (classic) ARF leaves more slack for SIC than a fast
        # modern one.
        slow = self.make_pair(seed=21, success_threshold=10,
                              failure_threshold=2)
        fast = self.make_pair(seed=21, success_threshold=2,
                              failure_threshold=1)
        slow_gain = adaptation_slack_sic_gain(*slow)
        fast_gain = adaptation_slack_sic_gain(*fast)
        assert slow_gain >= fast_gain - 0.01

    def test_empty_traces(self):
        empty = AdaptationTrace(chosen_rate_bps=np.array([]),
                                feasible_rate_bps=np.array([]),
                                success=np.array([], dtype=bool))
        assert adaptation_slack_sic_gain(empty, empty, 10.0, 3.0) == 1.0
