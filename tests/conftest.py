"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel


@pytest.fixture
def channel() -> Channel:
    """The canonical 20 MHz / thermal-noise channel used throughout."""
    return Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))


@pytest.fixture
def unit_channel() -> Channel:
    """A noise-normalised channel (N0 == 1): RSS values are linear SNRs."""
    return Channel(bandwidth_hz=1.0, noise_w=1.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def snr_w(channel: Channel, snr_db: float) -> float:
    """RSS in watts for a given SNR over the channel's noise."""
    return float(10.0 ** (snr_db / 10.0)) * channel.noise_w
