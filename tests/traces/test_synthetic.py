"""Synthetic upload-trace generator tests."""

import numpy as np
import pytest

from repro.traces.synthetic import (
    UploadTraceConfig,
    UploadTraceGenerator,
    occupancy_factor,
)


@pytest.fixture(scope="module")
def short_trace():
    config = UploadTraceConfig(duration_days=1.0)
    return UploadTraceGenerator(config).generate(seed=7)


class TestConfig:
    def test_defaults_are_paper_scale(self):
        config = UploadTraceConfig()
        assert config.duration_days == 14.0
        assert config.snapshot_interval_s == 900.0

    def test_n_snapshots(self):
        config = UploadTraceConfig(duration_days=1.0)
        assert config.n_snapshots == 96

    def test_rejects_bad_night_fraction(self):
        with pytest.raises(ValueError):
            UploadTraceConfig(night_fraction=1.5)

    def test_rejects_zero_aps(self):
        with pytest.raises(ValueError):
            UploadTraceConfig(ap_rows=0)


class TestOccupancy:
    def test_peaks_at_13h(self):
        values = [occupancy_factor(h * 3600.0, 0.1) for h in range(24)]
        assert values.index(max(values)) == 13

    def test_bounded(self):
        for h in range(0, 24):
            f = occupancy_factor(h * 3600.0, 0.2)
            assert 0.2 <= f <= 1.0

    def test_night_quieter_than_noon(self):
        assert occupancy_factor(3 * 3600.0, 0.1) < \
            occupancy_factor(13 * 3600.0, 0.1)


class TestGenerator:
    def test_deterministic(self):
        config = UploadTraceConfig(duration_days=0.25)
        a = UploadTraceGenerator(config).generate(seed=3)
        b = UploadTraceGenerator(config).generate(seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        config = UploadTraceConfig(duration_days=0.25)
        a = UploadTraceGenerator(config).generate(seed=3)
        b = UploadTraceGenerator(config).generate(seed=4)
        assert a != b

    def test_ap_names_within_config(self, short_trace):
        config = UploadTraceConfig()
        valid = {f"AP{i + 1}" for i in range(config.n_aps)}
        assert set(short_trace.ap_names) <= valid

    def test_rssi_above_sensitivity(self, short_trace):
        config = UploadTraceConfig()
        for snap in short_trace:
            for obs in snap.clients:
                assert obs.rssi_dbm >= config.sensitivity_dbm

    def test_rssi_plausible_indoor_range(self, short_trace):
        rssi = [obs.rssi_dbm for snap in short_trace
                for obs in snap.clients]
        assert np.median(rssi) < -20.0
        assert min(rssi) >= -95.0

    def test_timestamps_align_to_interval(self, short_trace):
        for snap in short_trace:
            assert snap.timestamp_s % 900.0 == 0.0

    def test_produces_pairable_snapshots(self, short_trace):
        # The whole point of the trace: snapshots with >= 2 clients.
        assert len(short_trace.busy_snapshots(2)) > 10

    def test_diurnal_load_visible(self):
        config = UploadTraceConfig(duration_days=4.0, peak_clients=30.0)
        trace = UploadTraceGenerator(config).generate(seed=5)
        day = [s.n_clients for s in trace
               if 10 * 3600 <= s.timestamp_s % 86400 <= 16 * 3600]
        night = [s.n_clients for s in trace
                 if s.timestamp_s % 86400 <= 5 * 3600]
        assert np.mean(day) > np.mean(night)

    def test_client_names_unique_within_snapshot(self, short_trace):
        for snap in short_trace:
            names = [c.client for c in snap.clients]
            assert len(set(names)) == len(names)


class TestVectorizedGoldenEquivalence:
    """``generate`` (block draws, batched RSS, array association) must
    reproduce the frozen ``generate_scalar`` bit for bit — same
    snapshot order, same client names, same RSSI floats — for any seed
    and config (PR-1 convention)."""

    CONFIGS = [
        UploadTraceConfig(duration_days=0.25),
        UploadTraceConfig(duration_days=0.5, peak_clients=40.0),
        UploadTraceConfig(duration_days=0.25, ap_rows=1, ap_cols=2,
                          width_m=30.0, height_m=15.0),
        # No shadowing: the RSS matrix is fully deterministic.
        UploadTraceConfig(duration_days=0.25, shadowing_sigma_db=0.0),
        # Harsh clipping exercises the sensitivity-floor path.
        UploadTraceConfig(duration_days=0.25, sensitivity_dbm=-60.0,
                          pathloss_exponent=4.5),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[f"cfg{i}" for i in range(len(CONFIGS))])
    @pytest.mark.parametrize("seed", [0, 7, 2010])
    def test_bit_identical_to_scalar(self, config, seed):
        generator = UploadTraceGenerator(config)
        assert generator.generate(seed) == generator.generate_scalar(seed)

    def test_progress_reports_every_snapshot(self):
        config = UploadTraceConfig(duration_days=0.25)
        calls = []
        UploadTraceGenerator(config).generate(
            seed=1, progress=lambda done, total: calls.append((done, total)))
        n = config.n_snapshots
        assert calls == [(k + 1, n) for k in range(n)]

    def test_timer_covers_all_phases(self):
        from repro.util.timing import PhaseTimer
        timer = PhaseTimer()
        config = UploadTraceConfig(duration_days=0.25)
        UploadTraceGenerator(config).generate(seed=1, timer=timer)
        assert list(timer.phases) == ["draw", "rss", "assemble"]
        assert all(t >= 0.0 for t in timer.phases.values())

    def test_default_config_constructed_per_instance(self):
        # RPR305 regression: the default config must not be a shared
        # class-level instance.
        a, b = UploadTraceGenerator(), UploadTraceGenerator()
        assert a.config == b.config
        assert a.config is not b.config
