"""Trace JSONL round-trip tests."""

import json

import pytest

from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.io import (
    read_downlink_measurements,
    read_upload_trace,
    write_downlink_measurements,
    write_upload_trace,
)
from repro.traces.records import ApSnapshot, ClientObservation, UploadTrace
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator


@pytest.fixture
def upload_trace():
    config = UploadTraceConfig(duration_days=0.25)
    return UploadTraceGenerator(config).generate(seed=9)


@pytest.fixture
def campaign():
    config = DownlinkTraceConfig(n_locations=6)
    return DownlinkTraceGenerator(config).generate(seed=9)


class TestUploadRoundTrip:
    def test_lossless(self, upload_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_upload_trace(upload_trace, path)
        assert read_upload_trace(path) == upload_trace

    def test_empty_trace(self, tmp_path):
        trace = UploadTrace(building="x", snapshot_interval_s=900.0,
                            snapshots=())
        path = tmp_path / "empty.jsonl"
        write_upload_trace(trace, path)
        assert read_upload_trace(path) == trace

    def test_header_is_first_line(self, upload_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_upload_trace(upload_trace, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "upload-trace"

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\n")
        with pytest.raises(ValueError, match="not an upload trace"):
            read_upload_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_upload_trace(path)

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "upload-trace", "building": "b",
                        "snapshot_interval_s": 900.0}) + "\n"
            + json.dumps({"ap": "AP1"}) + "\n")
        with pytest.raises(ValueError, match=":2"):
            read_upload_trace(path)

    def test_blank_lines_ignored(self, upload_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_upload_trace(upload_trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_upload_trace(path) == upload_trace


class TestDownlinkRoundTrip:
    def test_lossless(self, campaign, tmp_path):
        path = tmp_path / "campaign.jsonl"
        write_downlink_measurements(campaign, path)
        assert read_downlink_measurements(path) == campaign

    def test_pair_keys_encoded(self, campaign, tmp_path):
        path = tmp_path / "campaign.jsonl"
        write_downlink_measurements(campaign, path)
        line = json.loads(path.read_text().splitlines()[1])
        assert all("|" in key for key in line["interfered_rate_bps"])

    def test_wrong_kind_rejected(self, campaign, tmp_path):
        upload_path = tmp_path / "upload.jsonl"
        trace = UploadTrace(
            building="b", snapshot_interval_s=900.0,
            snapshots=(ApSnapshot("AP1", 0.0,
                                  (ClientObservation("c", -50.0),)),))
        write_upload_trace(trace, upload_path)
        with pytest.raises(ValueError, match="not a downlink"):
            read_downlink_measurements(upload_path)

    def test_empty_campaign(self, tmp_path):
        path = tmp_path / "none.jsonl"
        write_downlink_measurements([], path)
        assert read_downlink_measurements(path) == []
