"""Trace-record tests."""

import pytest

from repro.traces.records import (
    ApSnapshot,
    ClientObservation,
    DownlinkMeasurement,
    UploadTrace,
)


def snapshot(ap="AP1", t=0.0, clients=2):
    return ApSnapshot(
        ap=ap, timestamp_s=t,
        clients=tuple(ClientObservation(f"c{i}", -60.0 - i)
                      for i in range(clients)))


class TestClientObservation:
    def test_rssi_to_watts(self):
        obs = ClientObservation("c", -30.0)
        assert obs.rss_w == pytest.approx(1e-6)

    def test_from_watts_round_trip(self):
        obs = ClientObservation.from_watts("c", 2.5e-9)
        assert obs.rss_w == pytest.approx(2.5e-9)


class TestApSnapshot:
    def test_counts(self):
        assert snapshot(clients=3).n_clients == 3

    def test_rss_watts_order(self):
        snap = snapshot(clients=2)
        watts = snap.rss_watts()
        assert watts[0] > watts[1]


class TestUploadTrace:
    def make_trace(self):
        return UploadTrace(
            building="b", snapshot_interval_s=900.0,
            snapshots=(snapshot("AP1", 0.0, 1), snapshot("AP2", 0.0, 3),
                       snapshot("AP1", 900.0, 2)))

    def test_len_and_iter(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_duration(self):
        assert self.make_trace().duration_s == 900.0

    def test_ap_names_sorted_unique(self):
        assert self.make_trace().ap_names == ["AP1", "AP2"]

    def test_busy_snapshots_filters(self):
        trace = self.make_trace()
        busy = trace.busy_snapshots(min_clients=2)
        assert len(busy) == 2
        assert all(s.n_clients >= 2 for s in busy)

    def test_empty_trace(self):
        trace = UploadTrace(building="x", snapshot_interval_s=900.0,
                            snapshots=())
        assert trace.duration_s == 0.0
        assert trace.ap_names == []


class TestDownlinkMeasurement:
    def test_strongest_ap(self):
        m = DownlinkMeasurement(location="L1",
                                snr_db={"AP1": 10.0, "AP2": 30.0})
        assert m.strongest_ap() == "AP2"

    def test_ap_names_sorted(self):
        m = DownlinkMeasurement(location="L1",
                                snr_db={"AP2": 1.0, "AP1": 2.0})
        assert m.ap_names == ["AP1", "AP2"]
