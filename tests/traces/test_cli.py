"""Trace CLI tests (``python -m repro.traces``)."""

import pytest

from repro.traces.__main__ import main
from repro.traces.io import read_downlink_measurements, read_upload_trace
from repro.util.errors import EXIT_CORRUPT_STATE, run_cli


class TestUploadCommand:
    def test_generates_readable_trace(self, tmp_path, capsys):
        out = tmp_path / "building.jsonl"
        rc = main(["upload", "--out", str(out), "--days", "0.5",
                   "--seed", "3"])
        assert rc == 0
        trace = read_upload_trace(out)
        assert len(trace) > 0
        assert "wrote" in capsys.readouterr().out

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["upload", "--out", str(a), "--days", "0.25", "--seed", "9"])
        main(["upload", "--out", str(b), "--days", "0.25", "--seed", "9"])
        assert read_upload_trace(a) == read_upload_trace(b)


    def test_progress_and_timing_reported(self, tmp_path, capsys):
        out = tmp_path / "building.jsonl"
        rc = main(["upload", "--out", str(out), "--days", "0.25",
                   "--seed", "3", "--progress"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "generated in" in captured.out  # PhaseTimer summary line
        assert "draw" in captured.out and "rss" in captured.out
        assert "snapshots: 24/24" in captured.err


class TestDownlinkCommand:
    def test_generates_readable_campaign(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        rc = main(["downlink", "--out", str(out), "--locations", "10",
                   "--seed", "3"])
        assert rc == 0
        measurements = read_downlink_measurements(out)
        assert len(measurements) == 10

    def test_workers_do_not_change_the_campaign(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["downlink", "--out", str(a), "--locations", "12",
              "--seed", "9"])
        main(["downlink", "--out", str(b), "--locations", "12",
              "--seed", "9", "--workers", "2"])
        assert read_downlink_measurements(a) == \
            read_downlink_measurements(b)

    def test_progress_and_timing_reported(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        rc = main(["downlink", "--out", str(out), "--locations", "8",
                   "--seed", "3", "--progress"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "generated in" in captured.out
        assert "measure" in captured.out
        assert "locations: 8/8" in captured.err


class TestInspectCommand:
    def test_inspect_upload(self, tmp_path, capsys):
        out = tmp_path / "building.jsonl"
        main(["upload", "--out", str(out), "--days", "0.25", "--seed", "3"])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        assert "upload trace" in capsys.readouterr().out

    def test_inspect_downlink(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        main(["downlink", "--out", str(out), "--locations", "5",
              "--seed", "3"])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        assert "downlink campaign" in capsys.readouterr().out

    def test_inspect_unknown_kind_is_corrupt_state(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "mystery"}\n')
        rc = run_cli("repro-traces", lambda: main(["inspect", str(bad)]))
        assert rc == EXIT_CORRUPT_STATE
        assert "corrupt-state" in capsys.readouterr().err

    def test_inspect_empty_file_is_corrupt_state(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = run_cli("repro-traces", lambda: main(["inspect", str(empty)]))
        assert rc == EXIT_CORRUPT_STATE
        assert "hint" in capsys.readouterr().err

    def test_inspect_torn_header_is_corrupt_state(self, tmp_path, capsys):
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"kind": "upload-tr')  # half a JSON header
        rc = run_cli("repro-traces", lambda: main(["inspect", str(torn)]))
        assert rc == EXIT_CORRUPT_STATE
        assert "torn" in capsys.readouterr().err
