"""Downlink measurement-campaign generator tests."""

import pytest

from repro.phy.rates import DOT11G
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator


@pytest.fixture(scope="module")
def campaign():
    config = DownlinkTraceConfig(n_locations=30)
    return DownlinkTraceGenerator(config).generate(seed=11)


class TestConfig:
    def test_paper_defaults(self):
        config = DownlinkTraceConfig()
        assert config.n_aps == 5
        assert config.n_locations == 100
        assert config.target_success == 0.9

    def test_rejects_single_ap(self):
        with pytest.raises(ValueError):
            DownlinkTraceConfig(n_aps=1)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            DownlinkTraceConfig(target_success=1.0)


class TestCampaign:
    def test_location_count_and_names(self, campaign):
        assert len(campaign) == 30
        assert campaign[0].location == "L1"
        assert campaign[-1].location == "L30"

    def test_every_ap_measured(self, campaign):
        for m in campaign:
            assert m.ap_names == ["AP1", "AP2", "AP3", "AP4", "AP5"]
            assert set(m.clean_rate_bps) == set(m.snr_db)

    def test_interfered_pairs_complete(self, campaign):
        for m in campaign:
            assert len(m.interfered_rate_bps) == 5 * 4

    def test_rates_come_from_the_table(self, campaign):
        valid = set(DOT11G.rates_bps) | {0.0}
        for m in campaign:
            assert set(m.clean_rate_bps.values()) <= valid
            assert set(m.interfered_rate_bps.values()) <= valid

    def test_interference_never_raises_rate(self, campaign):
        for m in campaign:
            for (serving, interferer), rate in m.interfered_rate_bps.items():
                assert rate <= m.clean_rate_bps[serving]

    def test_higher_snr_higher_clean_rate(self, campaign):
        for m in campaign:
            ranked = sorted(m.snr_db, key=m.snr_db.get)
            rates = [m.clean_rate_bps[ap] for ap in ranked]
            assert rates == sorted(rates)

    def test_deterministic(self):
        config = DownlinkTraceConfig(n_locations=5)
        a = DownlinkTraceGenerator(config).generate(seed=2)
        b = DownlinkTraceGenerator(config).generate(seed=2)
        assert a == b

    def test_strong_interference_can_kill_link(self, campaign):
        # Somewhere in 30 locations x 20 pairs there must be a dead
        # interfered link (rate 0) — that is what makes the discrete
        # feasibility question interesting.
        dead = [rate for m in campaign
                for rate in m.interfered_rate_bps.values() if rate == 0.0]
        assert dead


class TestVectorizedGoldenEquivalence:
    """``generate`` (batched SNR rows, chunked rate measurements) must
    reproduce the frozen ``generate_scalar`` bit for bit, for any seed,
    config and worker count (PR-1 convention)."""

    CONFIGS = [
        DownlinkTraceConfig(n_locations=20),
        DownlinkTraceConfig(n_locations=15, n_aps=3,
                            corridor_length_m=60.0),
        # No shadowing: SNR rows are fully deterministic.
        DownlinkTraceConfig(n_locations=12, shadowing_sigma_db=0.0),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[f"cfg{i}" for i in range(len(CONFIGS))])
    @pytest.mark.parametrize("seed", [0, 11, 2010])
    def test_bit_identical_to_scalar(self, config, seed):
        generator = DownlinkTraceGenerator(config)
        assert generator.generate(seed) == generator.generate_scalar(seed)

    def test_parallel_identical_to_serial(self):
        config = DownlinkTraceConfig(n_locations=30)
        generator = DownlinkTraceGenerator(config)
        serial = generator.generate(seed=5)
        parallel = generator.generate(seed=5, n_workers=3)
        assert serial == parallel

    def test_progress_reports_every_location(self):
        config = DownlinkTraceConfig(n_locations=8)
        calls = []
        DownlinkTraceGenerator(config).generate(
            seed=1, progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (8, 8)
        assert [done for done, _ in calls] == sorted(done
                                                     for done, _ in calls)

    def test_timer_covers_all_phases(self):
        from repro.util.timing import PhaseTimer
        timer = PhaseTimer()
        config = DownlinkTraceConfig(n_locations=6)
        DownlinkTraceGenerator(config).generate(seed=1, timer=timer)
        assert list(timer.phases) == ["draw", "measure", "assemble"]
        assert all(t >= 0.0 for t in timer.phases.values())

    def test_default_config_constructed_per_instance(self):
        # RPR305 regression: the default config must not be a shared
        # class-level instance.
        a, b = DownlinkTraceGenerator(), DownlinkTraceGenerator()
        assert a.config == b.config
        assert a.config is not b.config
