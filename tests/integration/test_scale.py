"""Scale and robustness tests: realistic WLAN sizes, extreme inputs."""

import time

import numpy as np
import pytest

from repro.phy.shannon import Channel
from repro.scheduling.groups import greedy_group_schedule
from repro.scheduling.matching import min_weight_perfect_matching
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sim.wlan import UplinkSimulator
from repro.techniques.pairing import TechniqueSet


class TestSchedulerScale:
    def test_eighty_clients_schedule_and_simulate(self, channel, rng):
        clients = [UploadClient(f"C{i}", 10 ** float(x))
                   for i, x in enumerate(rng.uniform(-12.5, -8, size=80))]
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        start = time.perf_counter()
        schedule = scheduler.schedule(clients)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"scheduling 80 clients took {elapsed:.1f}s"
        assert sorted(schedule.client_names) == sorted(
            c.name for c in clients)
        metrics = UplinkSimulator(channel=channel).run(schedule, clients)
        assert metrics.all_decoded
        assert metrics.completion_time_s == pytest.approx(
            schedule.total_time_s, rel=1e-9)

    def test_group_scheduler_scale(self, channel, rng):
        clients = [UploadClient(f"C{i}", 10 ** float(x))
                   for i, x in enumerate(rng.uniform(-12.5, -8, size=60))]
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        names = [n for slot in schedule.slots for n in slot.clients]
        assert sorted(names) == sorted(c.name for c in clients)

    def test_matching_scale(self, rng):
        import itertools
        n = 100
        costs = {(i, j): float(rng.uniform(0.1, 10.0))
                 for i, j in itertools.combinations(range(n), 2)}
        start = time.perf_counter()
        matching = min_weight_perfect_matching(costs, n)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"matching n=100 took {elapsed:.1f}s"
        assert len(matching) == 50


class TestExtremeInputs:
    def test_huge_rss_disparity(self, channel):
        # 1 W vs thermal-floor-level signals in one schedule.
        clients = [UploadClient("loud", 1.0),
                   UploadClient("faint", channel.noise_w * 1.01),
                   UploadClient("mid", 1e-9)]
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        schedule = scheduler.schedule(clients)
        assert schedule.total_time_s > 0.0
        metrics = UplinkSimulator(channel=channel).run(schedule, clients)
        assert metrics.all_decoded

    def test_identical_rss_clients(self, channel):
        clients = [UploadClient(f"C{i}", 1e-9) for i in range(6)]
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        schedule = scheduler.schedule(clients)
        metrics = UplinkSimulator(channel=channel).run(schedule, clients)
        assert metrics.all_decoded
        assert schedule.gain >= 1.0 - 1e-12

    def test_tiny_packets(self, channel):
        scheduler = SicScheduler(channel=channel, packet_bits=8.0,
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient("a", 1e-9), UploadClient("b", 1e-11)]
        schedule = scheduler.schedule(clients)
        sim = UplinkSimulator(channel=channel, packet_bits=8.0)
        assert sim.run(schedule, clients).all_decoded

    def test_jumbo_packets(self, channel):
        scheduler = SicScheduler(channel=channel, packet_bits=1e7,
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient("a", 1e-9), UploadClient("b", 1e-11)]
        schedule = scheduler.schedule(clients)
        assert np.isfinite(schedule.total_time_s)

    def test_narrowband_channel(self):
        narrow = Channel(bandwidth_hz=1e3, noise_w=1e-17)
        scheduler = SicScheduler(channel=narrow,
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient("a", 1e-12), UploadClient("b", 1e-14)]
        schedule = scheduler.schedule(clients)
        sim = UplinkSimulator(channel=narrow)
        assert sim.run(schedule, clients).all_decoded
