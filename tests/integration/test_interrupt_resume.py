"""Operator interrupt mid-sweep: exit resumable, resume bit-identically.

The one crash mode the in-process crash matrix cannot model honestly is
a real signal delivered to a real process, so this test runs the actual
CLI in a subprocess, SIGINTs it once checkpoints start landing, and
checks the full operator contract: exit code 5 (resumable), flushed
chunk files on disk, and a resumed rerun whose JSON output is
byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.util.checkpoint import CHECKPOINT_DIR_ENV
from repro.util.errors import EXIT_OK, EXIT_RESUMABLE

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

# Sized so chunk files land within ~1s but the sweep as a whole takes
# several seconds — a wide, reliable window for the interrupt.
_SAMPLES = 800_000
_CHUNK_SIZE = 5_000


def _spawn(checkpoint_dir, json_path):
    env = dict(os.environ)
    env[CHECKPOINT_DIR_ENV] = str(checkpoint_dir)
    env.pop("REPRO_CACHE_DIR", None)  # force real compute + checkpoints
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "fig6",
         "--samples", str(_SAMPLES), "--chunk-size", str(_CHUNK_SIZE),
         "--json", str(json_path)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _wait_for_chunks(checkpoint_dir, proc, minimum=5, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = list(Path(checkpoint_dir).glob("*/chunk_*.npz"))
        if len(done) >= minimum:
            return done
        if proc.poll() is not None:
            pytest.fail("sweep finished before the interrupt window: "
                        f"rc={proc.returncode}")
        time.sleep(0.05)
    pytest.fail("no checkpoint chunks appeared within the timeout")


def test_sigint_mid_sweep_is_resumable_and_bit_identical(tmp_path):
    ckpt = tmp_path / "ckpt"
    resumed_json = tmp_path / "resumed.json"

    # Phase 1: interrupt mid-sweep once checkpoints are landing.
    proc = _spawn(ckpt, resumed_json)
    try:
        flushed = _wait_for_chunks(ckpt, proc)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == EXIT_RESUMABLE, stderr
    assert "resumable" in stderr
    assert str(ckpt) in stderr  # the hint names the checkpoint root
    assert not resumed_json.exists()  # no half-finished output published
    # The flushed chunks survive the interrupt for the rerun to reuse.
    assert all(path.exists() for path in flushed)

    # Phase 2: the same command resumes from those chunks and finishes.
    proc = _spawn(ckpt, resumed_json)
    _, stderr = proc.communicate(timeout=300)
    assert proc.returncode == EXIT_OK, stderr

    # Phase 3: an uninterrupted run in a fresh tree must agree exactly.
    reference_json = tmp_path / "reference.json"
    proc = _spawn(tmp_path / "ckpt_reference", reference_json)
    _, stderr = proc.communicate(timeout=300)
    assert proc.returncode == EXIT_OK, stderr

    assert resumed_json.read_bytes() == reference_json.read_bytes()
    assert json.loads(resumed_json.read_text())["figure"] == "fig6"
