"""End-to-end integration tests across module boundaries.

These tests wire whole pipelines together: topology -> propagation ->
scheduler -> event simulator, and trace generation -> JSONL -> figure
evaluation — the paths a downstream user of the library actually runs.
"""

import numpy as np
import pytest

from repro.experiments import fig13, fig14
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.shannon import Channel
from repro.phy.noise import thermal_noise_watts
from repro.scheduling.baselines import greedy_schedule, serial_schedule
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sim.wlan import UplinkSimulator
from repro.techniques.pairing import TechniqueSet
from repro.topology.generators import random_uplink_clients
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.io import (
    read_downlink_measurements,
    read_upload_trace,
    write_downlink_measurements,
    write_upload_trace,
)
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator


@pytest.fixture(scope="module")
def channel():
    return Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))


class TestTopologyToSimulator:
    """Place clients physically, schedule them, execute the schedule."""

    def test_full_uplink_pipeline(self, channel):
        topo = random_uplink_clients(9, cell_radius_m=35.0, rng=17)
        model = LogDistancePathLoss(exponent=3.5)
        clients = [
            UploadClient(c.name, float(model.received_power(
                DEFAULT_TX_POWER_W, c.distance_to(topo.ap))))
            for c in topo.clients
        ]
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        schedule = scheduler.schedule(clients)
        metrics = UplinkSimulator(channel=channel).run(schedule, clients)

        assert metrics.all_decoded
        assert metrics.completion_time_s == pytest.approx(
            schedule.total_time_s, rel=1e-9)
        assert schedule.gain >= 1.0
        # Throughput must be at least the serial baseline's.
        serial = serial_schedule(scheduler, clients)
        serial_metrics = UplinkSimulator(channel=channel).run(serial,
                                                              clients)
        assert metrics.throughput_bps >= serial_metrics.throughput_bps - 1e-6

    def test_policy_stack_consistency(self, channel):
        topo = random_uplink_clients(8, cell_radius_m=30.0, rng=23)
        model = LogDistancePathLoss(exponent=4.0)
        clients = [
            UploadClient(c.name, float(model.received_power(
                DEFAULT_TX_POWER_W, c.distance_to(topo.ap))))
            for c in topo.clients
        ]
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        sim = UplinkSimulator(channel=channel)
        times = {}
        for name, schedule in (
                ("blossom", scheduler.schedule(clients)),
                ("greedy", greedy_schedule(scheduler, clients)),
                ("serial", serial_schedule(scheduler, clients))):
            metrics = sim.run(schedule, clients)
            assert metrics.all_decoded
            times[name] = metrics.completion_time_s
        assert times["blossom"] <= times["greedy"] + 1e-12
        assert times["greedy"] <= times["serial"] + 1e-12


class TestTraceFilePipelines:
    """Figures must produce identical results from in-memory and
    on-disk traces."""

    def test_fig13_from_file(self, tmp_path):
        config = UploadTraceConfig(duration_days=0.5)
        trace = UploadTraceGenerator(config).generate(seed=31)
        path = tmp_path / "building.jsonl"
        write_upload_trace(trace, path)
        reloaded = read_upload_trace(path)

        direct = fig13.compute(trace=trace, max_snapshots=30)
        from_file = fig13.compute(trace=reloaded, max_snapshots=30)
        for label in ("pairing", "pairing+power_control"):
            assert np.array_equal(direct[label]["gains"],
                                  from_file[label]["gains"])

    def test_fig14_from_file(self, tmp_path):
        config = DownlinkTraceConfig(n_locations=20)
        campaign = DownlinkTraceGenerator(config).generate(seed=37)
        path = tmp_path / "campaign.jsonl"
        write_downlink_measurements(campaign, path)
        reloaded = read_downlink_measurements(path)

        direct = fig14.compute(measurements=campaign, n_scenarios=150,
                               seed=5)
        from_file = fig14.compute(measurements=reloaded, n_scenarios=150,
                                  seed=5)
        for label in ("arbitrary", "discrete+packing"):
            assert np.array_equal(direct[label]["gains"],
                                  from_file[label]["gains"])


class TestSchedulerOnTraceSnapshots:
    def test_every_busy_snapshot_schedulable(self, channel):
        config = UploadTraceConfig(duration_days=0.5)
        trace = UploadTraceGenerator(config).generate(seed=41)
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        sim = UplinkSimulator(channel=channel)
        checked = 0
        for snapshot in trace.busy_snapshots(2)[:25]:
            clients = [UploadClient(obs.client, obs.rss_w)
                       for obs in snapshot.clients]
            schedule = scheduler.schedule(clients)
            metrics = sim.run(schedule, clients)
            assert metrics.all_decoded
            assert schedule.gain >= 1.0
            checked += 1
        assert checked == 25
