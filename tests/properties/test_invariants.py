"""Cross-module property tests on the library's core invariants.

Module-level tests already carry targeted hypothesis cases; this file
holds the invariants that span several subsystems at once — "the
analytic layer, the techniques and the scheduler never disagree about
who is faster" style guarantees.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.scheduling.matching import (
    matching_cost,
    min_weight_perfect_matching,
)
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sic.airtime import z_serial_same_receiver, z_sic_same_receiver
from repro.sic.capacity import capacity_with_sic
from repro.sic.receiver import SicReceiver
from repro.techniques.pairing import TechniqueSet, pair_airtime
from repro.util.cdf import EmpiricalCdf

rss = st.floats(min_value=1e-13, max_value=1e-5)
L = 12_000.0


class TestAnalyticOperationalAgreement:
    @settings(max_examples=80, deadline=None)
    @given(rss, rss)
    def test_eq6_rates_always_decodable(self, a, b):
        """The rate pair behind Eq. 6 must pass the receiver's own
        decode procedure — the analysis and the receiver model cannot
        drift apart."""
        channel = Channel()
        receiver = SicReceiver(channel=channel)
        rate_a, rate_b = receiver.feasible_rate_pair(a, b)
        assert receiver.can_resolve_both(a, rate_a, b, rate_b)

    @settings(max_examples=80, deadline=None)
    @given(rss, rss)
    def test_sic_airtime_consistent_with_rate_pair(self, a, b):
        channel = Channel()
        receiver = SicReceiver(channel=channel)
        rate_a, rate_b = receiver.feasible_rate_pair(a, b)
        z = z_sic_same_receiver(channel, L, a, b)
        assert z == pytest.approx(max(L / rate_a, L / rate_b), rel=1e-9)

    @settings(max_examples=80, deadline=None)
    @given(rss, rss)
    def test_capacity_equals_sum_of_rate_pair(self, a, b):
        channel = Channel()
        receiver = SicReceiver(channel=channel)
        rate_a, rate_b = receiver.feasible_rate_pair(a, b)
        assert capacity_with_sic(channel, a, b) == pytest.approx(
            rate_a + rate_b, rel=1e-9)


class TestSchedulerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(rss, min_size=1, max_size=8))
    def test_schedule_never_slower_than_serial(self, rss_list):
        scheduler = SicScheduler(channel=Channel(),
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient(f"C{i}", value)
                   for i, value in enumerate(rss_list)]
        schedule = scheduler.schedule(clients)
        assert schedule.total_time_s <= \
            scheduler.serial_time(clients) + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(st.lists(rss, min_size=2, max_size=8))
    def test_schedule_invariant_under_client_order(self, rss_list):
        scheduler = SicScheduler(channel=Channel(),
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient(f"C{i}", value)
                   for i, value in enumerate(rss_list)]
        forward = scheduler.schedule(clients).total_time_s
        backward = scheduler.schedule(list(reversed(clients))).total_time_s
        assert forward == pytest.approx(backward, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(rss, min_size=2, max_size=6), rss)
    def test_adding_a_client_never_reduces_total_time(self, rss_list,
                                                      extra):
        scheduler = SicScheduler(channel=Channel(),
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient(f"C{i}", value)
                   for i, value in enumerate(rss_list)]
        base = scheduler.schedule(clients).total_time_s
        more = scheduler.schedule(
            clients + [UploadClient("extra", extra)]).total_time_s
        assert more >= base - 1e-12


class TestMatchingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=6, max_size=6))
    def test_perfect_matching_cost_is_lower_bound_over_swaps(self, values):
        # 4 vertices, 6 edge costs: optimal never beats a local 2-swap.
        costs = dict(zip(itertools.combinations(range(4), 2), values))
        matching = min_weight_perfect_matching(costs, 4)
        optimal = matching_cost(matching, costs)
        for perfect in ([(0, 1), (2, 3)], [(0, 2), (1, 3)],
                        [(0, 3), (1, 2)]):
            assert optimal <= matching_cost(set(perfect), costs) + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                    min_size=15, max_size=15),
           st.floats(min_value=0.5, max_value=2.0))
    def test_scaling_costs_preserves_matching_structure(self, values,
                                                        scale):
        costs = dict(zip(itertools.combinations(range(6), 2), values))
        scaled = {pair: cost * scale for pair, cost in costs.items()}
        original = min_weight_perfect_matching(costs, 6)
        rescaled = min_weight_perfect_matching(scaled, 6)
        assert matching_cost(rescaled, scaled) == pytest.approx(
            scale * matching_cost(original, costs), rel=1e-6)


class TestPairCostInvariants:
    @settings(max_examples=60, deadline=None)
    @given(rss, rss)
    def test_pair_cost_between_halves_of_serial_and_serial(self, a, b):
        channel = Channel()
        cost = pair_airtime(channel, L, a, b, techniques=TechniqueSet.ALL)
        serial = z_serial_same_receiver(channel, L, a, b)
        # The pair still has to deliver both packets: no pairing can
        # beat half the serial time (gain <= 2), nor lose to serial.
        assert serial / 2 - 1e-12 <= cost.airtime_s <= serial + 1e-12


class TestCdfInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=2.0),
                    min_size=1, max_size=40))
    def test_quantiles_invert_cdf(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            x = cdf.quantile(q)
            assert cdf(x) >= q - 1e-9
