"""Property tests on the scheduling extensions (backlog/online/groups).

Work-conservation and packet-conservation invariants that must hold
regardless of RSS distributions, queue shapes or arrival patterns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.scheduling.backlog import BacklogClient, drain_backlog
from repro.scheduling.groups import greedy_group_schedule
from repro.scheduling.online import ArrivalClient, simulate_online
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sim.overhead import DOT11G_OVERHEADS, apply_overheads
from repro.techniques.pairing import TechniqueSet

rss_values = st.floats(min_value=1e-12, max_value=1e-7)


def scheduler():
    return SicScheduler(channel=Channel(), techniques=TechniqueSet.ALL)


class TestBacklogInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(rss_values, st.integers(0, 4)),
                    min_size=1, max_size=5))
    def test_packet_conservation(self, spec):
        clients = [BacklogClient(f"C{i}", rss, queue)
                   for i, (rss, queue) in enumerate(spec)]
        result = drain_backlog(scheduler(), clients)
        scheduled = sum(len(slot.clients) for schedule in result.rounds
                        for slot in schedule.slots)
        assert scheduled == sum(c.backlog for c in clients)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(rss_values, st.integers(1, 3)),
                    min_size=1, max_size=5))
    def test_total_is_sum_of_rounds(self, spec):
        clients = [BacklogClient(f"C{i}", rss, queue)
                   for i, (rss, queue) in enumerate(spec)]
        result = drain_backlog(scheduler(), clients)
        assert result.total_time_s == pytest.approx(
            sum(r.total_time_s for r in result.rounds))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(rss_values, st.integers(1, 3)),
                    min_size=1, max_size=5))
    def test_finish_times_ordered_by_rounds(self, spec):
        clients = [BacklogClient(f"C{i}", rss, queue)
                   for i, (rss, queue) in enumerate(spec)]
        result = drain_backlog(scheduler(), clients)
        # The largest backlog finishes last (it transmits in every
        # round, so its finish time is within the final round).
        biggest = max(clients, key=lambda c: c.backlog)
        last_round_start = result.total_time_s - \
            result.rounds[-1].total_time_s
        assert result.finish_times_s[biggest.name] > last_round_start


class TestOnlineInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 2 ** 31 - 1))
    def test_packet_conservation(self, n_clients, seed):
        channel = Channel()
        n0 = channel.noise_w
        clients = [ArrivalClient(f"C{i}", (10 ** (15 + 5 * i / 2)) * n0,
                                 1000.0)
                   for i in range(n_clients)]
        sched = SicScheduler(channel=channel,
                             techniques=TechniqueSet.ALL)
        for policy in ("fifo", "sic_pairing"):
            metrics = simulate_online(sched, clients, 0.05,
                                      policy=policy, seed=seed)
            assert metrics.leftover_packets == 0
            assert metrics.served_packets == len(metrics.delays_s)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_busy_time_never_exceeds_span(self, seed):
        channel = Channel()
        n0 = channel.noise_w
        clients = [ArrivalClient("a", 1e4 * n0, 2000.0),
                   ArrivalClient("b", 1e2 * n0, 2000.0)]
        sched = SicScheduler(channel=channel,
                             techniques=TechniqueSet.ALL)
        metrics = simulate_online(sched, clients, 0.05, seed=seed)
        # Busy time can exceed the arrival horizon (drain phase) but
        # never the horizon plus the drain (== last completion).
        if metrics.delays_s:
            assert metrics.busy_time_s <= metrics.horizon_s + \
                max(metrics.delays_s) + 1e-9


class TestOverheadsOnGroups:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(rss_values, min_size=2, max_size=8))
    def test_apply_overheads_duck_types_group_schedules(self, rss_list):
        # GroupSchedule exposes the same slots/total/serial surface as
        # Schedule, so the overhead model applies unchanged.
        channel = Channel()
        clients = [UploadClient(f"C{i}", rss)
                   for i, rss in enumerate(rss_list)]
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        adjusted = apply_overheads(schedule, DOT11G_OVERHEADS)
        assert adjusted.total_time_s > schedule.total_time_s
        assert adjusted.overhead_s <= adjusted.serial_overhead_s + 1e-12
