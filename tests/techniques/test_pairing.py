"""Pair-cost tests (paper Section 5.1 / Section 6 edge weights)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.airtime import z_serial_same_receiver, z_sic_same_receiver
import numpy as np

from repro.techniques.pairing import (
    PairMode,
    TechniqueSet,
    pair_airtime,
    pair_airtime_batch,
    solo_airtime,
    solo_airtime_batch,
)

L = 12_000.0
power = st.floats(min_value=1e-13, max_value=1e-5)


class TestTechniqueSet:
    def test_flags_compose(self):
        both = TechniqueSet.POWER_CONTROL | TechniqueSet.MULTIRATE
        assert TechniqueSet.POWER_CONTROL in both
        assert both == TechniqueSet.ALL

    def test_none_contains_nothing(self):
        assert TechniqueSet.POWER_CONTROL not in TechniqueSet.NONE


class TestSoloAirtime:
    def test_matches_channel(self, channel):
        assert solo_airtime(channel, L, 1e-9) == pytest.approx(
            L / channel.rate(1e-9))

    def test_rejects_bad_rss(self, channel):
        with pytest.raises(ValueError):
            solo_airtime(channel, L, 0.0)


class TestPairAirtime:
    def test_sic_disabled_is_serial(self, channel):
        cost = pair_airtime(channel, L, 1e-9, 1e-10, sic_enabled=False)
        assert cost.mode is PairMode.SERIAL
        assert cost.airtime_s == pytest.approx(
            z_serial_same_receiver(channel, L, 1e-9, 1e-10))

    def test_good_pair_uses_sic(self, channel):
        # RSS gap near the equal-rate optimum: SIC wins outright.
        n0 = channel.noise_w
        s1 = 1e6 * n0
        s2 = 1e3 * n0
        cost = pair_airtime(channel, L, s1, s2)
        assert cost.mode is PairMode.SIC
        assert cost.airtime_s == pytest.approx(
            z_sic_same_receiver(channel, L, s1, s2))

    def test_bad_pair_falls_back_to_serial(self, channel):
        # Equal strong RSS: SIC loses; the MAC goes serial.
        n0 = channel.noise_w
        cost = pair_airtime(channel, L, 1e6 * n0, 1e6 * n0)
        assert cost.mode is PairMode.SERIAL
        assert cost.gain == 1.0

    def test_power_control_rescues_similar_pair(self, channel):
        n0 = channel.noise_w
        cost = pair_airtime(channel, L, 1e6 * n0, 1e6 * n0,
                            techniques=TechniqueSet.POWER_CONTROL)
        assert cost.mode is PairMode.SIC_POWER_CONTROL
        assert cost.gain > 1.0

    def test_multirate_picked_when_best(self, channel):
        n0 = channel.noise_w
        cost = pair_airtime(channel, L, 1e6 * n0, 0.9e6 * n0,
                            techniques=TechniqueSet.MULTIRATE)
        assert cost.mode is PairMode.SIC_MULTIRATE
        assert cost.airtime_s < z_sic_same_receiver(channel, L,
                                                    1e6 * n0, 0.9e6 * n0)

    def test_all_techniques_picks_minimum(self, channel):
        n0 = channel.noise_w
        s1, s2 = 1e6 * n0, 0.9e6 * n0
        alone = {
            t: pair_airtime(channel, L, s1, s2, techniques=t).airtime_s
            for t in (TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
                      TechniqueSet.MULTIRATE)
        }
        combined = pair_airtime(channel, L, s1, s2,
                                techniques=TechniqueSet.ALL)
        assert combined.airtime_s == pytest.approx(min(alone.values()))

    @given(power, power)
    def test_cost_never_exceeds_serial(self, a, b):
        channel = Channel()
        cost = pair_airtime(channel, L, a, b,
                            techniques=TechniqueSet.ALL)
        assert cost.airtime_s <= cost.serial_airtime_s + 1e-12
        assert cost.gain >= 1.0

    @given(power, power)
    def test_more_techniques_never_hurt(self, a, b):
        channel = Channel()
        base = pair_airtime(channel, L, a, b).airtime_s
        full = pair_airtime(channel, L, a, b,
                            techniques=TechniqueSet.ALL).airtime_s
        assert full <= base + 1e-12

    def test_symmetric(self, channel):
        a = pair_airtime(channel, L, 1e-9, 3e-10,
                         techniques=TechniqueSet.ALL)
        b = pair_airtime(channel, L, 3e-10, 1e-9,
                         techniques=TechniqueSet.ALL)
        assert a.airtime_s == pytest.approx(b.airtime_s)


#: Every technique set the scheduler can hand the batch kernels.
ALL_TECHNIQUE_SETS = [
    TechniqueSet.NONE,
    TechniqueSet.POWER_CONTROL,
    TechniqueSet.MULTIRATE,
    TechniqueSet.ALL,
]


def random_rss(rng, n):
    """Log-uniform RSS spanning the paper's 3-45 dB SNR workload."""
    return 10.0 ** rng.uniform(-13.0, -5.0, size=n)


class TestBatchEquivalence:
    """The vectorised kernels must match the scalar path bit for bit —
    the scheduler's fast cost graph is only sound if no rounding
    difference can creep in (PR-1 convention: golden equivalence)."""

    @pytest.mark.parametrize("techniques", ALL_TECHNIQUE_SETS,
                             ids=lambda t: str(t))
    @pytest.mark.parametrize("sic_enabled", [True, False])
    def test_pair_batch_bit_identical(self, channel, rng, techniques,
                                      sic_enabled):
        rss_a = random_rss(rng, 200)
        rss_b = random_rss(rng, 200)
        batch = pair_airtime_batch(channel, L, rss_a, rss_b,
                                   techniques=techniques,
                                   sic_enabled=sic_enabled)
        scalar = [pair_airtime(channel, L, a, b, techniques=techniques,
                               sic_enabled=sic_enabled).airtime_s
                  for a, b in zip(rss_a, rss_b)]
        assert batch.tolist() == scalar  # exact, not approx

    def test_solo_batch_bit_identical(self, channel, rng):
        rss = random_rss(rng, 200)
        batch = solo_airtime_batch(channel, L, rss)
        scalar = [solo_airtime(channel, L, r) for r in rss]
        assert batch.tolist() == scalar  # exact, not approx

    def test_pair_batch_handles_extreme_asymmetry(self, channel):
        rss_a = np.array([1e-5, 1e-13, 1e-9])
        rss_b = np.array([1e-13, 1e-5, 1e-9])
        batch = pair_airtime_batch(channel, L, rss_a, rss_b,
                                   techniques=TechniqueSet.ALL)
        scalar = [pair_airtime(channel, L, a, b,
                               techniques=TechniqueSet.ALL).airtime_s
                  for a, b in zip(rss_a, rss_b)]
        assert batch.tolist() == scalar

    def test_pair_batch_rejects_nonpositive_rss(self, channel):
        with pytest.raises(ValueError):
            pair_airtime_batch(channel, L, np.array([1e-9, 0.0]),
                               np.array([1e-9, 1e-9]))

    def test_solo_batch_rejects_nonpositive_rss(self, channel):
        with pytest.raises(ValueError):
            solo_airtime_batch(channel, L, np.array([1e-9, -1e-9]))

    def test_empty_batches(self, channel):
        empty = np.array([])
        assert pair_airtime_batch(channel, L, empty, empty).size == 0
        assert solo_airtime_batch(channel, L, empty).size == 0
