"""Power-reduction tests (paper Section 5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.airtime import z_sic_same_receiver
from repro.techniques.power_control import (
    equal_rate_weak_rss,
    power_controlled_pair_airtime,
)

L = 12_000.0
power = st.floats(min_value=1e-13, max_value=1e-5)


class TestEqualRateWeakRss:
    def test_solves_the_quadratic(self, channel):
        strong = 1e-9
        x = equal_rate_weak_rss(channel, strong)
        n0 = channel.noise_w
        assert strong / (x + n0) == pytest.approx(x / n0, rel=1e-12)

    def test_below_strong(self, channel):
        strong = 1e-9
        assert equal_rate_weak_rss(channel, strong) < strong

    def test_monotone_in_strong(self, channel):
        assert equal_rate_weak_rss(channel, 1e-9) > \
            equal_rate_weak_rss(channel, 1e-10)

    def test_rejects_nonpositive(self, channel):
        with pytest.raises(ValueError):
            equal_rate_weak_rss(channel, 0.0)


class TestPowerControlledAirtime:
    def test_reduces_when_rss_similar(self, channel):
        # Similar RSS: the stronger client is the bottleneck; power
        # control must strictly improve on plain SIC.
        n0 = channel.noise_w
        s1, s2 = 1e4 * n0, 0.8e4 * n0
        plain = z_sic_same_receiver(channel, L, s1, s2)
        controlled = power_controlled_pair_airtime(channel, L, s1, s2)
        assert controlled.power_reduced
        assert controlled.airtime_s < plain

    def test_no_reduction_when_gap_wide(self, channel):
        n0 = channel.noise_w
        s1, s2 = 1e8 * n0, 10 * n0   # far beyond the equal-rate gap
        plain = z_sic_same_receiver(channel, L, s1, s2)
        controlled = power_controlled_pair_airtime(channel, L, s1, s2)
        assert not controlled.power_reduced
        assert controlled.airtime_s == pytest.approx(plain)
        assert controlled.weak_power_backoff_db == 0.0

    def test_reduced_pair_finishes_together(self, channel):
        n0 = channel.noise_w
        s1, s2 = 1e4 * n0, 0.9e4 * n0
        controlled = power_controlled_pair_airtime(channel, L, s1, s2)
        r_strong = channel.rate(controlled.strong_rss_w,
                                controlled.weak_rss_w)
        r_weak = channel.rate(controlled.weak_rss_w)
        assert r_strong == pytest.approx(r_weak, rel=1e-9)

    def test_backoff_db_positive_when_reduced(self, channel):
        n0 = channel.noise_w
        controlled = power_controlled_pair_airtime(
            channel, L, 1e4 * n0, 0.9e4 * n0)
        assert controlled.weak_power_backoff_db > 0.0

    def test_argument_order_irrelevant(self, channel):
        a = power_controlled_pair_airtime(channel, L, 1e-9, 3e-10)
        b = power_controlled_pair_airtime(channel, L, 3e-10, 1e-9)
        assert a.airtime_s == pytest.approx(b.airtime_s)

    @given(power, power)
    def test_never_worse_than_plain_sic(self, a, b):
        channel = Channel()
        plain = z_sic_same_receiver(channel, L, a, b)
        controlled = power_controlled_pair_airtime(channel, L, a, b)
        assert controlled.airtime_s <= plain + 1e-12

    @given(power, power)
    def test_power_only_ever_reduced(self, a, b):
        channel = Channel()
        controlled = power_controlled_pair_airtime(channel, L, a, b)
        assert controlled.weak_rss_w <= min(a, b) + 1e-25
        assert controlled.strong_rss_w == max(a, b)
