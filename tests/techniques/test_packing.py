"""Packet-packing tests (paper Section 5.4, Fig. 10g)."""

import pytest

from repro.techniques.packing import pack_pair_links, pack_uplink_airtime

L = 12_000.0


class TestPackPairLinks:
    def test_infeasible_degenerates_to_serial(self, channel):
        packed = pack_pair_links(channel, L,
                                 slow_rss_w=1e-10, slow_interference_w=1e-11,
                                 fast_rss_w=1e-9, fast_interference_w=0.0,
                                 sic_feasible=False)
        assert packed.fast_packets == 1
        assert packed.gain == 1.0

    def test_fast_link_packs_multiple(self, channel):
        n0 = channel.noise_w
        packed = pack_pair_links(channel, L,
                                 slow_rss_w=3 * n0, slow_interference_w=0.0,
                                 fast_rss_w=1e5 * n0,
                                 fast_interference_w=0.0,
                                 sic_feasible=True)
        assert packed.fast_packets > 1
        assert packed.gain > 1.0

    def test_respects_max_fast_packets(self, channel):
        n0 = channel.noise_w
        packed = pack_pair_links(channel, L,
                                 slow_rss_w=2 * n0, slow_interference_w=0.0,
                                 fast_rss_w=1e8 * n0,
                                 fast_interference_w=0.0,
                                 sic_feasible=True, max_fast_packets=3)
        assert packed.fast_packets <= 3

    def test_no_packing_when_fast_is_not_faster(self, channel):
        packed = pack_pair_links(channel, L,
                                 slow_rss_w=1e-9, slow_interference_w=0.0,
                                 fast_rss_w=1e-9, fast_interference_w=0.0,
                                 sic_feasible=True)
        assert packed.fast_packets == 1

    def test_gain_never_below_one(self, channel):
        n0 = channel.noise_w
        for slow_int in (0.0, 1e3 * n0):
            packed = pack_pair_links(channel, L,
                                     slow_rss_w=10 * n0,
                                     slow_interference_w=slow_int,
                                     fast_rss_w=1e4 * n0,
                                     fast_interference_w=0.0,
                                     sic_feasible=True)
            assert packed.gain >= 1.0

    def test_packed_airtime_bounded_by_components(self, channel):
        n0 = channel.noise_w
        packed = pack_pair_links(channel, L,
                                 slow_rss_w=5 * n0, slow_interference_w=0.0,
                                 fast_rss_w=1e5 * n0,
                                 fast_interference_w=0.0,
                                 sic_feasible=True)
        t_slow = L / channel.rate(5 * n0)
        assert packed.airtime_s >= t_slow - 1e-12
        assert packed.airtime_s <= packed.serial_airtime_s + 1e-12


class TestPackUplink:
    def test_single_fast_client_packs(self, channel):
        n0 = channel.noise_w
        packed = pack_uplink_airtime(channel, L,
                                     slow_rss_w=3 * n0,
                                     fast_rss_ws=[1e5 * n0])
        assert packed.packed_order == (0,)
        assert packed.gain > 1.0

    def test_mid_air_joins_gated(self, channel):
        n0 = channel.noise_w
        fast = [1e5 * n0, 1e5 * n0, 1e5 * n0]
        today = pack_uplink_airtime(channel, L, 3 * n0, fast,
                                    allow_mid_air_joins=False)
        future = pack_uplink_airtime(channel, L, 3 * n0, fast,
                                     allow_mid_air_joins=True)
        assert len(today.packed_order) <= 1
        assert len(future.packed_order) >= len(today.packed_order)
        assert future.airtime_s <= today.airtime_s + 1e-12

    def test_fastest_first_ordering(self, channel):
        n0 = channel.noise_w
        fast = [1e3 * n0, 1e6 * n0]
        packed = pack_uplink_airtime(channel, L, 2 * n0, fast,
                                     allow_mid_air_joins=True)
        # Client 1 (higher RSS, faster) must be packed before client 0.
        assert packed.packed_order[0] == 1

    def test_leftovers_serialised_after_slow(self, channel):
        n0 = channel.noise_w
        # Fast packets fit only partially under the slow one: the rest
        # queue up afterwards, so the total exceeds the slow airtime.
        slow = 5 * n0
        fast = [1e3 * n0, 1e3 * n0, 1e3 * n0, 1e3 * n0]
        packed = pack_uplink_airtime(channel, L, slow, fast,
                                     allow_mid_air_joins=False)
        t_slow_clean = L / channel.rate(slow)
        assert len(packed.packed_order) == 1
        assert packed.airtime_s > t_slow_clean

    def test_never_worse_than_serial(self, channel):
        n0 = channel.noise_w
        packed = pack_uplink_airtime(channel, L, 2 * n0,
                                     [5 * n0, 10 * n0, 1e4 * n0])
        assert packed.airtime_s <= packed.serial_airtime_s + 1e-12
        assert packed.gain >= 1.0

    def test_rejects_empty_fast_list(self, channel):
        with pytest.raises(ValueError):
            pack_uplink_airtime(channel, L, 1e-9, [])
