"""Multirate packetization tests (paper Section 5.3, Fig. 10f)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.airtime import z_sic_same_receiver
from repro.techniques.multirate import multirate_pair_airtime

L = 12_000.0
power = st.floats(min_value=1e-13, max_value=1e-5)


class TestMultirate:
    def test_helps_when_strong_is_bottleneck(self, channel):
        n0 = channel.noise_w
        s1, s2 = 1e4 * n0, 0.8e4 * n0   # similar RSS: strong bottleneck
        plain = z_sic_same_receiver(channel, L, s1, s2)
        plan = multirate_pair_airtime(channel, L, s1, s2)
        assert plan.used_rate_switch
        assert plan.airtime_s < plain

    def test_no_switch_when_weak_is_bottleneck(self, channel):
        n0 = channel.noise_w
        s1, s2 = 1e8 * n0, 3 * n0
        plain = z_sic_same_receiver(channel, L, s1, s2)
        plan = multirate_pair_airtime(channel, L, s1, s2)
        assert not plan.used_rate_switch
        assert plan.airtime_s == pytest.approx(plain)

    def test_bit_conservation(self, channel):
        # Bits sent in the overlap plus the boost phase equal L.
        n0 = channel.noise_w
        s1, s2 = 1e4 * n0, 0.8e4 * n0
        plan = multirate_pair_airtime(channel, L, s1, s2)
        rate_int = channel.rate(s1, s2)
        rate_clean = channel.rate(s1)
        bits = rate_int * plan.overlap_s + rate_clean * plan.boost_s
        assert bits == pytest.approx(L, rel=1e-9)

    def test_argument_order_irrelevant(self, channel):
        a = multirate_pair_airtime(channel, L, 1e-9, 3e-10)
        b = multirate_pair_airtime(channel, L, 3e-10, 1e-9)
        assert a.airtime_s == pytest.approx(b.airtime_s)

    @given(power, power)
    def test_never_worse_than_plain_sic(self, a, b):
        channel = Channel()
        plain = z_sic_same_receiver(channel, L, a, b)
        plan = multirate_pair_airtime(channel, L, a, b)
        assert plan.airtime_s <= plain + 1e-12

    @given(power, power)
    def test_airtime_at_least_weak_clean_time(self, a, b):
        # Both packets must fully transmit; the weak one's clean-rate
        # time is a hard lower bound.
        channel = Channel()
        plan = multirate_pair_airtime(channel, L, a, b)
        weak = min(a, b)
        assert plan.airtime_s >= L / channel.rate(weak) - 1e-12

    def test_rejects_bad_inputs(self, channel):
        with pytest.raises(ValueError):
            multirate_pair_airtime(channel, 0.0, 1e-9, 1e-10)
        with pytest.raises(ValueError):
            multirate_pair_airtime(channel, L, 0.0, 1e-10)
