"""Fig. 7 experiment-module tests (reduced sizes)."""

import pytest

from repro.experiments import fig7


@pytest.fixture(scope="module")
def result():
    return fig7.compute(n_ewlan_grids=30, n_residential_rows=100,
                        seed=2010)


class TestFig7Compute:
    def test_keys(self, result):
        assert set(result) == {"ewlan", "residential", "mesh",
                               "mesh_frontier"}

    def test_ewlan_capture_dominates(self, result):
        assert result["ewlan"].capture_fraction > 0.85

    def test_residential_beats_ewlan_on_opportunities(self, result):
        assert result["residential"].sic_feasible_fraction >= \
            result["ewlan"].sic_feasible_fraction

    def test_mesh_has_both_outcomes(self, result):
        feasible = [a.sic_feasible for a in result["mesh"]]
        assert any(feasible) and not all(feasible)

    def test_deterministic(self):
        a = fig7.compute(n_ewlan_grids=5, n_residential_rows=10, seed=4)
        b = fig7.compute(n_ewlan_grids=5, n_residential_rows=10, seed=4)
        assert a["ewlan"] == b["ewlan"]
        assert a["residential"] == b["residential"]

    def test_bit_identical_to_frozen_scalar_pipeline(self):
        fast = fig7.compute(n_ewlan_grids=8, n_residential_rows=12,
                            seed=2010)
        scalar = fig7.compute_scalar(n_ewlan_grids=8,
                                     n_residential_rows=12, seed=2010)
        assert fast["ewlan"] == scalar["ewlan"]
        assert fast["residential"] == scalar["residential"]
        assert fast["mesh"] == scalar["mesh"]
        assert fast["mesh_frontier"] == scalar["mesh_frontier"]

    def test_supervised_knobs_do_not_change_results(self):
        from repro.util.cache import ResultCache
        base = fig7.compute(n_ewlan_grids=8, n_residential_rows=12,
                            seed=3, cache=ResultCache(None))
        tuned = fig7.compute(n_ewlan_grids=8, n_residential_rows=12,
                             seed=3, n_workers=2, chunk_size=5,
                             cache=ResultCache(None))
        assert tuned["ewlan"] == base["ewlan"]
        assert tuned["residential"] == base["residential"]


class TestFig7Render:
    def test_renders_all_panels(self, result):
        lines = fig7.render(result)
        text = "\n".join(lines)
        assert "7a enterprise" in text
        assert "7b residential" in text
        assert "7c mesh" in text
        assert "frontier" in text
