"""The paper's prose claims, asserted within tolerance bands.

These are the headline numbers of the reproduction; EXPERIMENTS.md
reports the same quantities at full sample counts.
"""

import pytest

from repro.experiments import claims


class TestC1CapacityShape:
    @pytest.fixture(scope="class")
    def shape(self):
        return claims.capacity_gain_shape(n_points=31)

    def test_gain_at_least_one(self, shape):
        assert shape["min_gain"] >= 1.0

    def test_similar_rss_beats_dissimilar(self, shape):
        assert shape["frac_diag_above_row_edge"] >= 0.95

    def test_max_gain_near_two_but_not_above(self, shape):
        assert 1.4 < shape["max_gain"] <= 2.0


class TestC2Ridge:
    def test_db_ratio_is_about_two(self):
        ratio = claims.airtime_ridge_ratio(n_points=81)
        assert ratio == pytest.approx(2.0, abs=0.3)


class TestC3TwoReceiverNoGain:
    def test_about_90pct_no_gain(self):
        frac = claims.two_receiver_no_gain_fraction(n_samples=800,
                                                    seed=2010)
        assert frac >= 0.85


class TestC4C5TechniqueFractions:
    @pytest.fixture(scope="class")
    def fractions(self):
        return claims.technique_gain_fractions(n_samples=800, seed=2010)

    def test_one_receiver_sic_alone_modest(self, fractions):
        # Paper: "20 % of the cases gain over 20 %" — band: 3 %..35 %.
        assert 0.03 <= fractions["one_receiver/sic"] <= 0.35

    def test_mechanisms_lift_the_fraction(self, fractions):
        # Paper: "over 20 % [gain] in 40 % of the topologies by using
        # one of the above mechanisms" — they must at least double the
        # plain-SIC fraction and reach 20 %+.
        best = max(fractions["one_receiver/power_control"],
                   fractions["one_receiver/multirate"],
                   fractions["one_receiver/packing"])
        assert best >= 0.20
        assert best >= 2.0 * fractions["one_receiver/sic"]

    def test_two_receiver_almost_nothing(self, fractions):
        assert fractions["two_receivers/sic"] <= 0.05

    def test_two_receiver_little_even_with_packing(self, fractions):
        assert fractions["two_receivers/packing"] <= 0.25


class TestEvaluateAll:
    def test_report_structure(self):
        report = claims.evaluate_all(n_samples=200, seed=1)
        assert set(report) == {
            "C1_capacity_gain_shape",
            "C2_airtime_ridge_db_ratio",
            "C3_two_receiver_frac_no_gain",
            "C4_C5_gain_over_20pct_fractions",
        }
