"""The supervised executor: bit-identical results under injected faults.

The hard invariant: chunk ``i`` is a pure function of ``(config, chunk
seed i, chunk size i)``, so retries, pool rebuilds, in-process
degradation and checkpoint resume must all yield arrays
``np.array_equal`` to a fault-free serial run.  Every test here drives
a recovery path with the deterministic ``FaultInjector`` and asserts
exactly that.
"""

import time
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import runner
from repro.experiments.montecarlo import (
    MonteCarloConfig,
    one_receiver_technique_gains,
    two_receiver_scenarios,
)
from repro.experiments.runner import (
    ChunkExecutionError,
    ExecutionDegradedWarning,
    ExecutionPolicy,
    run_chunked,
)
from repro.util.cache import ResultCache
from repro.util.checkpoint import CHECKPOINT_DIR_ENV
from repro.util.faults import FaultInjector, RetryPolicy, always_failing

CONFIG = MonteCarloConfig(n_samples=300)
CHUNK = 60  # -> 5 chunks

#: Kill every chunk once and the process pool twice (rebuilt both times).
STORMY = FaultInjector(fail_first_attempts=1, pool_break_rounds={0, 1})


@dataclass(frozen=True)
class _TinyConfig:
    """Minimal config for driving run_chunked with a custom chunk_fn."""

    n_samples: int = 250


def _counting_chunk(calls):
    """A deterministic chunk_fn that records each (index-free) call."""
    from repro.util.rng import make_rng

    def chunk_fn(config, seed, n):
        calls.append(n)
        return {"x": make_rng(seed).random(n)}

    return chunk_fn


def _slow_once_chunk(config, seed, n, marker_dir):
    """Sleeps on first sight of the marker dir; instant afterwards."""
    from repro.util.rng import make_rng

    marker = Path(marker_dir) / "slept"
    if not marker.exists():
        marker.touch()
        time.sleep(1.0)
    return {"x": make_rng(seed).random(n)}


class TestDeterminismUnderFaults:
    """Acceptance: chunk kills + pool crashes never change results."""

    def test_fig6_engine_matches_fault_free_serial(self):
        ref, fractions_ref = two_receiver_scenarios(CONFIG, seed=42,
                                                    chunk_size=CHUNK,
                                                    n_workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # recovery must stay quiet
            gains, fractions = two_receiver_scenarios(
                CONFIG, seed=42, chunk_size=CHUNK, n_workers=2,
                policy=ExecutionPolicy(faults=STORMY))
        assert np.array_equal(gains, ref)
        assert fractions == fractions_ref

    def test_fig11_engine_matches_fault_free_serial(self):
        ref = one_receiver_technique_gains(CONFIG, seed=43,
                                           chunk_size=CHUNK, n_workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = one_receiver_technique_gains(
                CONFIG, seed=43, chunk_size=CHUNK, n_workers=2,
                policy=ExecutionPolicy(faults=STORMY))
        assert set(out) == set(ref)
        for technique in ref:
            assert np.array_equal(out[technique], ref[technique]), technique

    def test_inline_retries_match_too(self):
        ref, _ = two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK)
        gains, _ = two_receiver_scenarios(
            CONFIG, seed=42, chunk_size=CHUNK, n_workers=1,
            policy=ExecutionPolicy(faults=FaultInjector(
                fail_first_attempts=1)))
        assert np.array_equal(gains, ref)

    def test_retry_budget_never_changes_results(self):
        ref, _ = two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK)
        for max_attempts in (2, 5):
            gains, _ = two_receiver_scenarios(
                CONFIG, seed=42, chunk_size=CHUNK, n_workers=2,
                policy=ExecutionPolicy(
                    retry=RetryPolicy(max_attempts=max_attempts),
                    faults=FaultInjector(fail_first_attempts=1)))
            assert np.array_equal(gains, ref), max_attempts

    def test_backoff_goes_through_injected_sleep(self):
        delays = []
        policy = ExecutionPolicy(
            retry=RetryPolicy(backoff_base_s=0.25, backoff_factor=2.0,
                              sleep=delays.append),
            faults=FaultInjector(failures={
                ("two_receiver_scenarios", 1, 1),
                ("two_receiver_scenarios", 1, 2),
            }))
        ref, _ = two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK)
        gains, _ = two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK,
                                          n_workers=1, policy=policy)
        assert np.array_equal(gains, ref)
        assert delays == [0.25, 0.5]  # deterministic exponential ladder


class TestDegradation:
    def test_pool_storm_degrades_with_structured_warning(self):
        ref, _ = two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK)
        policy = ExecutionPolicy(
            max_pool_rebuilds=2,
            faults=FaultInjector(pool_break_rounds={0, 1, 2}))
        with pytest.warns(ExecutionDegradedWarning) as record:
            gains, _ = two_receiver_scenarios(CONFIG, seed=42,
                                              chunk_size=CHUNK, n_workers=2,
                                              policy=policy)
        assert np.array_equal(gains, ref)
        (warning,) = record
        assert warning.message.engine == "two_receiver_scenarios"
        assert warning.message.pool_failures == 3
        assert "injected pool break" in warning.message.reason

    def test_worker_timeout_counts_as_pool_failure(self, tmp_path):
        policy = ExecutionPolicy(worker_timeout_s=0.2, max_pool_rebuilds=0)
        ref = run_chunked("slow", _slow_once_chunk, _TinyConfig(), 11,
                          code_version=0, chunk_size=50,
                          kwargs={"marker_dir": str(tmp_path)})
        (tmp_path / "slept").unlink()  # re-arm the slow first call
        with pytest.warns(ExecutionDegradedWarning) as record:
            out = run_chunked("slow", _slow_once_chunk, _TinyConfig(), 11,
                              code_version=0, chunk_size=50, n_workers=2,
                              kwargs={"marker_dir": str(tmp_path)},
                              policy=policy)
        assert np.array_equal(out["x"], ref["x"])
        assert "no worker progress" in record[0].message.reason


class TestRetryExhaustion:
    def test_raises_structured_chunk_error(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(max_attempts=2),
            faults=always_failing("two_receiver_scenarios", 2,
                                  max_attempts=2))
        with pytest.raises(ChunkExecutionError) as excinfo:
            two_receiver_scenarios(CONFIG, seed=42, chunk_size=CHUNK,
                                   n_workers=1, policy=policy)
        assert excinfo.value.engine == "two_receiver_scenarios"
        assert excinfo.value.chunk_index == 2
        assert excinfo.value.attempts == 2


class TestCheckpointResume:
    def test_interrupt_then_resume_recomputes_only_missing(self, tmp_path):
        calls = []
        chunk_fn = _counting_chunk(calls)
        ref = run_chunked("eng", chunk_fn, _TinyConfig(), 9,
                          code_version=0, chunk_size=50)
        assert calls == [50] * 5

        # Interrupted sweep: chunk 3 exhausts its retries after 0..2
        # completed and checkpointed.
        calls.clear()
        with pytest.raises(ChunkExecutionError):
            run_chunked("eng", chunk_fn, _TinyConfig(), 9, code_version=0,
                        chunk_size=50,
                        policy=ExecutionPolicy(
                            checkpoint_dir=tmp_path,
                            faults=always_failing("eng", 3)))

        # Resume: only chunks 3 and 4 are recomputed, result identical.
        calls.clear()
        out = run_chunked("eng", chunk_fn, _TinyConfig(), 9, code_version=0,
                          chunk_size=50,
                          policy=ExecutionPolicy(checkpoint_dir=tmp_path))
        assert len(calls) == 2
        assert np.array_equal(out["x"], ref["x"])

        # A fully checkpointed sweep recomputes nothing.
        calls.clear()
        again = run_chunked("eng", chunk_fn, _TinyConfig(), 9, code_version=0,
                            chunk_size=50,
                            policy=ExecutionPolicy(checkpoint_dir=tmp_path))
        assert calls == []
        assert np.array_equal(again["x"], ref["x"])

    def test_corrupt_checkpoint_chunk_recomputed_not_trusted(self, tmp_path):
        calls = []
        chunk_fn = _counting_chunk(calls)
        policy = ExecutionPolicy(checkpoint_dir=tmp_path)
        ref = run_chunked("eng", chunk_fn, _TinyConfig(), 9, code_version=0,
                          chunk_size=50, policy=policy)
        (run_dir,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        (run_dir / "chunk_000001.npz").write_bytes(b"garbage")
        calls.clear()
        out = run_chunked("eng", chunk_fn, _TinyConfig(), 9, code_version=0,
                          chunk_size=50, policy=policy)
        assert len(calls) == 1  # only the quarantined chunk
        assert np.array_equal(out["x"], ref["x"])
        assert list((run_dir / "corrupt").glob("chunk_000001.*.npz"))

    def test_env_variable_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
        ref, _ = two_receiver_scenarios(CONFIG, seed=45, chunk_size=CHUNK)
        assert any(p.is_dir() for p in tmp_path.iterdir())
        gains, _ = two_receiver_scenarios(CONFIG, seed=45, chunk_size=CHUNK)
        assert np.array_equal(gains, ref)

    def test_generator_seeds_never_checkpoint(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=tmp_path)
        rng = np.random.default_rng(5)
        two_receiver_scenarios(CONFIG, rng, chunk_size=CHUNK, policy=policy)
        assert list(tmp_path.iterdir()) == []  # unreplayable: no resume


class TestAcceptanceSweep:
    """ISSUE acceptance: chunk failures + a pool crash + a corrupt cache
    entry, with checkpointing on — completes and matches the fault-free
    serial reference exactly."""

    @pytest.mark.parametrize("engine_fn,seed", [
        (two_receiver_scenarios, 42),
        (one_receiver_technique_gains, 43),
    ])
    def test_full_fault_sweep_matches_reference(self, tmp_path, engine_fn,
                                                seed):
        reference = engine_fn(CONFIG, seed=seed, chunk_size=CHUNK,
                              n_workers=1)

        cache = ResultCache(tmp_path / "cache")
        engine_fn(CONFIG, seed=seed, chunk_size=CHUNK, cache=cache)
        (entry,) = (tmp_path / "cache").glob("*.npz")
        entry.write_bytes(b"corrupt cache entry")

        policy = ExecutionPolicy(
            checkpoint_dir=tmp_path / "ckpt",
            faults=FaultInjector(fail_first_attempts=1,
                                 pool_break_rounds={0}))
        stormy = engine_fn(CONFIG, seed=seed, chunk_size=CHUNK, n_workers=2,
                           cache=cache, policy=policy)

        assert cache.quarantined == 1  # the corrupt entry, set aside
        if isinstance(reference, tuple):
            assert np.array_equal(stormy[0], reference[0])
            assert stormy[1] == reference[1]
        else:
            for technique in reference:
                assert np.array_equal(stormy[technique],
                                      reference[technique]), technique

    def test_resume_after_crash_recomputes_only_affected(self, tmp_path):
        """Interrupt an engine sweep mid-run, resume, count recomputes."""
        calls = []
        original = runner._guarded_chunk

        def counting_guard(*args):
            calls.append(args[7])  # chunk_index
            return original(*args)

        ref, _ = two_receiver_scenarios(CONFIG, seed=47, chunk_size=CHUNK)
        policy = ExecutionPolicy(
            checkpoint_dir=tmp_path,
            faults=always_failing("two_receiver_scenarios", 3))
        with pytest.raises(ChunkExecutionError):
            two_receiver_scenarios(CONFIG, seed=47, chunk_size=CHUNK,
                                   n_workers=1, policy=policy)

        runner._guarded_chunk = counting_guard
        try:
            gains, _ = two_receiver_scenarios(
                CONFIG, seed=47, chunk_size=CHUNK, n_workers=1,
                policy=ExecutionPolicy(checkpoint_dir=tmp_path))
        finally:
            runner._guarded_chunk = original
        assert sorted(calls) == [3, 4]  # chunks 0-2 came from checkpoints
        assert np.array_equal(gains, ref)
