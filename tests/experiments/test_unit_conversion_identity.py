"""The fig10/fig12 switch to ``repro.util.units`` changed no numbers.

These modules used to hand-roll ``10 ** (x / 10)``; the conversion now
routes through :func:`repro.util.units.db_to_linear`.  The tests pin the
outputs draw-for-draw against the inline formula so the refactor is
provably a no-op.
"""

import numpy as np

from repro.experiments import fig10, fig12
from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.util.rng import make_rng


def _channel():
    return Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))


class TestFig10Identity:
    def test_detuned_rss_matches_inline_formula(self):
        channel = _channel()
        got = fig10.detuned_client_rss_watts(channel)
        want = [(10.0 ** (x / 10.0)) * channel.noise_w
                for x in (40.0, 36.0, 35.0, 31.0)]
        assert got == want  # bit-for-bit, not approximately

    def test_detuned_compute_orderings_hold(self):
        # The figure's load-bearing ordering survives the refactor:
        # power control strictly improves on every plain pairing.
        result = fig10.compute(detuned=True)
        assert result.power_control_units < min(result.pairing_units.values())


class TestFig12Identity:
    def test_random_clients_match_inline_formula(self):
        noise_w = _channel().noise_w
        draws = make_rng(2010).uniform(3.0, 45.0, size=16)
        want = [float(10.0 ** (snr / 10.0)) * noise_w for snr in draws]

        clients = fig12.random_clients(16, make_rng(2010), noise_w=noise_w)
        # Same RNG draws; values equal up to the 1-ulp difference between
        # the scalar ** operator and numpy's np.power libm path.
        np.testing.assert_allclose([c.rss_w for c in clients], want,
                                   rtol=1e-14, atol=0.0)

    def test_same_rng_stream_consumed(self):
        # The conversion change must not alter how many draws are taken.
        rng = make_rng(7)
        fig12.random_clients(5, rng)
        fingerprint_after = rng.uniform()
        rng2 = make_rng(7)
        rng2.uniform(3.0, 45.0, size=5)
        assert fingerprint_after == rng2.uniform()


class TestShannonIdentity:
    def test_rate_from_snr_db_matches_inline_formula(self):
        from repro.phy.shannon import rate_from_snr_db

        snr_db = np.linspace(-10.0, 40.0, 23)
        want = 20e6 * np.log2(1.0 + np.power(10.0, snr_db / 10.0))
        got = np.asarray(rate_from_snr_db(20e6, snr_db), dtype=float)
        np.testing.assert_array_equal(got, want)


class TestPowerControlIdentity:
    def test_backoff_db_matches_inline_formula(self):
        import math

        from repro.techniques.power_control import (
            power_controlled_pair_airtime,
        )

        channel = _channel()
        n0 = channel.noise_w
        # Similar RSS -> the pair is tighter than the equal-rate optimum
        # and power control engages.
        pair = power_controlled_pair_airtime(channel, 12_000.0,
                                             1e4 * n0, 8e3 * n0)
        assert pair.power_reduced
        want = -10.0 * math.log10(pair.weak_rss_w / pair.original_weak_rss_w)
        # ratio_db computes 10*log10(orig/weak); equal to the inline
        # -10*log10(weak/orig) up to one ulp of the reciprocal rounding.
        assert abs(pair.weak_power_backoff_db - want) < 1e-12 * abs(want)
