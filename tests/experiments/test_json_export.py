"""JSON-export tests for the experiments CLI."""

import json

import numpy as np
import pytest

from repro.experiments.__main__ import main
from repro.experiments.registry import jsonify


class TestJsonify:
    def test_scalars_pass_through(self):
        assert jsonify(3) == 3
        assert jsonify(2.5) == 2.5
        assert jsonify("x") == "x"
        assert jsonify(None) is None
        assert jsonify(True) is True

    def test_numpy_types(self):
        assert jsonify(np.float64(1.5)) == 1.5
        assert jsonify(np.int64(4)) == 4
        assert jsonify(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_tuple_keys_encoded(self):
        out = jsonify({("AP1", "AP2"): 1.0})
        assert out == {"AP1|AP2": 1.0}

    def test_enum_values(self):
        from repro.sic.scenarios import PairCase
        assert jsonify(PairCase.SIC_AT_R2) == "b"
        assert jsonify({PairCase.SIC_AT_R2: 0.5}) == {"b": 0.5}

    def test_dataclasses_expanded(self):
        from repro.architectures.mesh import ChainAnalysis
        analysis = ChainAnalysis(long_hop_m=40.0, short_hop_m=2.0,
                                 sic_feasible=True,
                                 throughput_serial_bps=1e6,
                                 throughput_sic_bps=1.5e6,
                                 bottleneck_rate_bps=2e6)
        out = jsonify(analysis)
        assert out["sic_feasible"] is True
        assert out["long_hop_m"] == 40.0

    def test_nested_containers(self):
        out = jsonify({"a": [np.array([1.0]), (2, 3)]})
        assert out == {"a": [[1.0], [2, 3]]}

    def test_round_trips_through_json(self):
        from repro.experiments import fig6
        result = fig6.compute(ranges_m=(20.0,), n_samples=50, seed=1)
        payload = json.dumps(jsonify(result))
        assert json.loads(payload)["range=20m"]["summary"]["n"] == 50.0


class TestCliJsonFlag:
    def test_single_figure_dump(self, tmp_path, capsys):
        out = tmp_path / "fig10.json"
        assert main(["fig10", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["figure"] == "fig10"
        assert data["data"]["serial_units"] == pytest.approx(15.0)

    def test_all_with_json_rejected(self, tmp_path, capsys):
        out = tmp_path / "all.json"
        assert main(["all", "--quick", "--json", str(out)]) == 2
        assert not out.exists()

    def test_json_and_stdout_both_produced(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        assert main(["fig3", "--quick", "--json", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "json written" in stdout
        assert "fig3-capacity-gain" in stdout
