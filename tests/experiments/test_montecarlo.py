"""Monte-Carlo engine tests."""

import numpy as np
import pytest

from repro.experiments.montecarlo import (
    MonteCarloConfig,
    one_receiver_technique_gains,
    two_receiver_gains,
    two_receiver_technique_gains,
)


@pytest.fixture(scope="module")
def config():
    return MonteCarloConfig(n_samples=300)


class TestConfig:
    def test_paper_defaults(self):
        config = MonteCarloConfig()
        assert config.n_samples == 10_000
        assert config.pathloss_exponent == 4.0

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            MonteCarloConfig(n_samples=0)

    def test_channel_uses_thermal_noise(self, config):
        channel = config.channel()
        assert channel.bandwidth_hz == config.bandwidth_hz
        assert 0.0 < channel.noise_w < 1e-11


class TestTwoReceiverGains:
    def test_sample_count(self, config):
        gains = two_receiver_gains(config, seed=1)
        assert gains.shape == (300,)

    def test_deterministic(self, config):
        assert np.array_equal(two_receiver_gains(config, seed=1),
                              two_receiver_gains(config, seed=1))

    def test_bounds(self, config):
        gains = two_receiver_gains(config, seed=2)
        assert np.all(gains >= 1.0)
        assert np.all(gains <= 2.0 + 1e-9)


class TestOneReceiverTechniques:
    @pytest.fixture(scope="class")
    def gains(self):
        return one_receiver_technique_gains(
            MonteCarloConfig(n_samples=300), seed=3)

    def test_all_techniques_present(self, gains):
        assert set(gains) == {"sic", "power_control", "multirate",
                              "packing"}

    def test_power_control_dominates_sic(self, gains):
        assert np.all(gains["power_control"] >= gains["sic"] - 1e-9)

    def test_multirate_dominates_sic(self, gains):
        assert np.all(gains["multirate"] >= gains["sic"] - 1e-9)

    def test_all_gains_at_least_one(self, gains):
        for values in gains.values():
            assert np.all(values >= 1.0)

    def test_pc_and_mr_bounded_by_two(self, gains):
        # One packet gets at most a full free ride for these two.
        for technique in ("sic", "power_control", "multirate"):
            assert np.all(gains[technique] <= 2.0 + 1e-9)


class TestTwoReceiverTechniques:
    @pytest.fixture(scope="class")
    def gains(self):
        return two_receiver_technique_gains(
            MonteCarloConfig(n_samples=300), seed=4)

    def test_keys(self, gains):
        assert set(gains) == {"sic", "packing"}

    def test_packing_dominates_sic(self, gains):
        assert np.all(gains["packing"] >= gains["sic"] - 1e-9)

    def test_gains_at_least_one(self, gains):
        for values in gains.values():
            assert np.all(values >= 1.0)
