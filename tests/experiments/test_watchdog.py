"""Hung-worker watchdog and operator-interrupt flushing.

The watchdog's *decisions* are pinned with scripted clocks — no test
here sleeps to trigger a deadline.  The two pooled integration tests
use a genuinely slow worker once each to prove the wiring end to end,
and the interrupt tests drive ``_flush_completed``/``_drain`` directly
with already-resolved futures.  In every case timing only decides when
a chunk is recomputed, never what it computes, so each test closes by
asserting bit-identity against a fault-free run.
"""

import signal
from concurrent.futures import Future

import numpy as np
import pytest

from repro.experiments.runner import (
    ExecutionDegradedWarning,
    ExecutionPolicy,
    Watchdog,
    _Supervisor,
    _WatchdogMonitor,
    run_chunked,
    run_indexed,
)
from repro.util.checkpoint import CheckpointStore
from repro.util.errors import ResumableInterrupt
from tests.experiments.test_runner_faults import (
    _TinyConfig,
    _slow_once_chunk,
)


class _ScriptedClock:
    """A deterministic clock the test advances by hand."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestWatchdogPolicy:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            Watchdog(chunk_deadline_s=0.0)
        with pytest.raises(ValueError):
            Watchdog(heartbeat_interval_s=-1.0)

    def test_armed_property(self):
        assert not Watchdog().armed
        assert Watchdog(chunk_deadline_s=5.0).armed
        assert Watchdog(heartbeat_interval_s=5.0).armed

    def test_effective_watchdog_prefers_explicit(self):
        wd = Watchdog(chunk_deadline_s=3.0)
        policy = ExecutionPolicy(watchdog=wd, worker_timeout_s=9.0)
        assert policy.effective_watchdog() is wd

    def test_worker_timeout_compat_maps_to_heartbeat(self):
        policy = ExecutionPolicy(worker_timeout_s=0.5)
        effective = policy.effective_watchdog()
        assert effective.heartbeat_interval_s == 0.5
        assert effective.chunk_deadline_s is None

    def test_unarmed_watchdog_is_none(self):
        assert ExecutionPolicy(watchdog=Watchdog()).effective_watchdog() \
            is None
        assert ExecutionPolicy().effective_watchdog() is None


class TestMonitorDecisions:
    """Scripted-clock units: deadline and heartbeat logic, no sleeping."""

    def test_chunk_deadline_expiry(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(chunk_deadline_s=10.0, clock=clock))
        monitor.submitted(3)
        clock.now = 9.9
        assert monitor.expired() is None
        clock.now = 10.0
        assert monitor.expired() == "chunk 3 exceeded its 10s deadline"

    def test_completion_disarms_the_chunk_deadline(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(chunk_deadline_s=10.0, clock=clock))
        monitor.submitted(0)
        clock.now = 8.0
        monitor.completed(0)
        clock.now = 25.0  # long after the old deadline: nothing running
        assert monitor.expired() is None

    def test_resubmission_restarts_the_deadline(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(chunk_deadline_s=10.0, clock=clock))
        monitor.submitted(0)
        clock.now = 8.0
        monitor.completed(0)  # failed attempt drained...
        monitor.submitted(0)  # ...and retried: fresh clock
        clock.now = 17.0
        assert monitor.expired() is None
        clock.now = 18.0
        assert "chunk 0" in monitor.expired()

    def test_heartbeat_expiry(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(heartbeat_interval_s=5.0, clock=clock))
        clock.now = 4.9
        assert monitor.expired() is None
        clock.now = 5.0
        assert monitor.expired() == "no worker progress within 5s"

    def test_any_completion_feeds_the_heartbeat(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(heartbeat_interval_s=5.0, clock=clock))
        monitor.submitted(0)
        monitor.submitted(1)
        clock.now = 4.0
        monitor.completed(1)
        clock.now = 8.9  # 4.9 since the last beat
        assert monitor.expired() is None
        clock.now = 9.0
        assert monitor.expired() is not None

    def test_wait_timeout_tracks_nearest_cutoff(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(Watchdog(
            chunk_deadline_s=10.0, heartbeat_interval_s=4.0, clock=clock))
        monitor.submitted(0)
        assert monitor.wait_timeout() == 4.0  # heartbeat is nearer
        clock.now = 3.0
        monitor.completed(0)
        monitor.submitted(1)
        clock.now = 6.0
        # heartbeat cutoff 3+4=7 (1s away), deadline cutoff 3+10=13.
        assert monitor.wait_timeout() == pytest.approx(1.0)

    def test_wait_timeout_never_negative(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(heartbeat_interval_s=2.0, clock=clock))
        clock.now = 50.0
        assert monitor.wait_timeout() == 0.0

    def test_unlimited_monitor_waits_forever(self):
        monitor = _WatchdogMonitor(
            Watchdog(clock=_ScriptedClock()))
        assert monitor.wait_timeout() is None
        assert monitor.expired() is None

    def test_earliest_overdue_chunk_reported(self):
        clock = _ScriptedClock()
        monitor = _WatchdogMonitor(
            Watchdog(chunk_deadline_s=5.0, clock=clock))
        monitor.submitted(7)
        clock.now = 1.0
        monitor.submitted(2)
        clock.now = 6.5  # both overdue; lowest index reported
        assert "chunk 2" in monitor.expired() or "chunk 7" in monitor.expired()
        assert monitor.expired().startswith("chunk 2")


class TestPooledIntegration:
    """One genuinely hung worker, caught and recovered end to end."""

    def test_chunk_deadline_breaks_and_recovers(self, tmp_path):
        policy = ExecutionPolicy(
            watchdog=Watchdog(chunk_deadline_s=0.2), max_pool_rebuilds=0)
        ref = run_chunked("slow", _slow_once_chunk, _TinyConfig(), 11,
                          code_version=0, chunk_size=50,
                          kwargs={"marker_dir": str(tmp_path)})
        (tmp_path / "slept").unlink()  # re-arm the slow first call
        with pytest.warns(ExecutionDegradedWarning) as record:
            out = run_chunked("slow", _slow_once_chunk, _TinyConfig(), 11,
                              code_version=0, chunk_size=50, n_workers=2,
                              kwargs={"marker_dir": str(tmp_path)},
                              policy=policy)
        assert np.array_equal(out["x"], ref["x"])
        assert "deadline" in record[0].message.reason

    def test_run_indexed_honours_the_watchdog(self, tmp_path):
        policy = ExecutionPolicy(
            watchdog=Watchdog(heartbeat_interval_s=0.2),
            max_pool_rebuilds=0)
        ref = run_indexed("slow-idx", _slow_once_chunk, _TinyConfig(), 250,
                          code_version=0, chunk_size=50,
                          kwargs={"marker_dir": str(tmp_path)})
        (tmp_path / "slept").unlink()
        with pytest.warns(ExecutionDegradedWarning) as record:
            out = run_indexed("slow-idx", _slow_once_chunk, _TinyConfig(),
                              250, code_version=0, chunk_size=50,
                              n_workers=2,
                              kwargs={"marker_dir": str(tmp_path)},
                              policy=policy)
        assert np.array_equal(out["x"], ref["x"])
        assert "no worker progress" in record[0].message.reason


def _resolved_future(value):
    future = Future()
    future.set_result(value)
    return future


def _failed_future(exc):
    future = Future()
    future.set_exception(exc)
    return future


def _supervisor_with_store(tmp_path, n_chunks=3):
    store = CheckpointStore(tmp_path, {"engine": "t", "seed": 1}, n_chunks)
    supervisor = _Supervisor(
        engine="t", chunk_fn=lambda config, seed, n: {"x": np.ones(n)},
        config=_TinyConfig(), seeds=list(range(n_chunks)),
        sizes=[4] * n_chunks, kwargs={}, policy=ExecutionPolicy(),
        checkpoint=store)
    return supervisor, store


class TestInterruptFlush:
    """SIGINT mid-drain persists every already-finished chunk."""

    def test_flush_completed_persists_done_futures(self, tmp_path):
        supervisor, store = _supervisor_with_store(tmp_path)
        futures = {
            _resolved_future({"x": np.full(4, 1.5)}): 0,
            _failed_future(RuntimeError("worker died")): 1,
            Future(): 2,  # still pending: must be skipped, not awaited
        }
        supervisor._flush_completed(futures)
        fresh = CheckpointStore(tmp_path, {"engine": "t", "seed": 1}, 3)
        assert np.array_equal(fresh.get_chunk(0)["x"], np.full(4, 1.5))
        assert fresh.get_chunk(1) is None
        assert fresh.get_chunk(2) is None

    def test_drain_flushes_then_reraises_interrupt(self, tmp_path):
        supervisor, store = _supervisor_with_store(tmp_path)
        futures = {_resolved_future({"x": np.full(4, 2.5)}): 0}

        def interrupted(pool, futures_, monitor):
            raise ResumableInterrupt(signal.SIGINT)

        supervisor._drain_inner = interrupted
        with pytest.raises(ResumableInterrupt):
            supervisor._drain(None, futures, None)
        fresh = CheckpointStore(tmp_path, {"engine": "t", "seed": 1}, 3)
        assert np.array_equal(fresh.get_chunk(0)["x"], np.full(4, 2.5))

    def test_drain_flushes_on_keyboard_interrupt_too(self, tmp_path):
        supervisor, store = _supervisor_with_store(tmp_path)
        futures = {_resolved_future({"x": np.zeros(4)}): 0}

        def interrupted(pool, futures_, monitor):
            raise KeyboardInterrupt()

        supervisor._drain_inner = interrupted
        with pytest.raises(KeyboardInterrupt):
            supervisor._drain(None, futures, None)
        fresh = CheckpointStore(tmp_path, {"engine": "t", "seed": 1}, 3)
        assert fresh.get_chunk(0) is not None

    def test_flushed_chunks_resume_bit_identically(self, tmp_path):
        # The flushed chunk must be indistinguishable from one persisted
        # by an uninterrupted run: a resumed supervisor reloads it and
        # the merged sweep equals the fault-free reference.
        supervisor, store = _supervisor_with_store(tmp_path)
        chunk = {"x": np.arange(4.0)}
        supervisor._flush_completed({_resolved_future(chunk): 1})
        resumed, _ = _supervisor_with_store(tmp_path)
        resumed._restore_checkpointed()
        assert 1 in resumed.results
        assert np.array_equal(resumed.results[1]["x"], chunk["x"])
        assert resumed.pending() == [0, 2]
