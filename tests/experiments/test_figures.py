"""Per-figure shape tests (reduced sizes; the benches run full scale).

Each test pins the *qualitative* result the paper reports for that
figure — who wins, by roughly what factor, where the peak sits — with
tolerance bands wide enough to be seed-robust at reduced sample sizes.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig6,
    fig8,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.compute(n_points=41)

    def test_sic_beats_both_individuals(self, result):
        sic = result.series["C with SIC (bps)"]
        assert np.all(sic >= result.series["C1 alone (bps)"])
        assert np.all(sic >= result.series["C2 alone (bps)"])

    def test_closed_form_identity(self, result):
        assert np.allclose(result.series["C with SIC (bps)"],
                           result.series["closed form (bps)"], rtol=1e-9)

    def test_sic_capacity_monotone_in_snr1(self, result):
        sic = result.series["C with SIC (bps)"]
        assert np.all(np.diff(sic) > 0)

    def test_approaches_c1_at_high_snr1(self, result):
        # When S1 dominates, the SIC sum is barely above C1 alone.
        sic = result.series["C with SIC (bps)"][-1]
        c1 = result.series["C1 alone (bps)"][-1]
        assert sic / c1 < 1.01

    def test_region_area_advantage_at_least_one(self, result):
        advantage = result.series["region area advantage"]
        assert np.all(advantage >= 1.0 - 1e-9)


class TestFig3:
    @pytest.fixture(scope="class")
    def grid(self):
        return fig3.compute(n_points=41)

    def test_gain_at_least_one(self, grid):
        assert grid.min_value >= 1.0

    def test_gain_at_most_two(self, grid):
        assert grid.max_value <= 2.0

    def test_peak_at_small_similar_rss(self, grid):
        peak = grid.argmax()
        assert peak["SNR1 (dB)"] <= 5.0
        assert peak["SNR2 (dB)"] <= 5.0

    def test_symmetric_grid(self, grid):
        assert np.allclose(grid.values, grid.values.T, rtol=1e-9)

    def test_gain_not_high_in_general(self, grid):
        # "SIC capacity gains are not high in general": the median cell
        # sits well below the theoretical max of 2.
        assert np.median(grid.values) < 1.2


class TestFig4:
    @pytest.fixture(scope="class")
    def grid(self):
        return fig4.compute(n_points=81)

    def test_ridge_at_twice_the_db(self, grid):
        ratio = fig4.ridge_snr_ratio(grid)
        assert 1.7 < ratio < 2.3

    def test_peak_gain_below_two(self, grid):
        assert grid.max_value <= 2.0

    def test_peak_gain_substantial(self, grid):
        assert grid.max_value > 1.5

    def test_diagonal_loses_at_high_snr(self, grid):
        # Equal strong RSS: SIC loses outright (gain < 1), the dark
        # diagonal of the paper's figure.
        diagonal = np.diag(grid.values)
        assert diagonal[-1] < 1.0

    def test_symmetric_grid(self, grid):
        assert np.allclose(grid.values, grid.values.T, rtol=1e-9)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.compute(ranges_m=(10.0, 20.0, 40.0), n_samples=800,
                            seed=2010)

    def test_no_gain_in_about_90pct(self, result):
        for entry in result.values():
            assert entry["summary"]["frac_no_gain"] >= 0.85

    def test_gains_bounded_by_two(self, result):
        for entry in result.values():
            assert entry["summary"]["max"] <= 2.0

    def test_helper_extracts_fractions(self, result):
        fractions = fig6.fraction_no_gain(result)
        assert set(fractions) == {"range=10m", "range=20m", "range=40m"}

    def test_case_mix_reported(self, result):
        for entry in result.values():
            fractions = entry["case_fractions"]
            assert set(fractions) == {"a", "b", "c", "d", "feasible"}
            total = sum(fractions[c] for c in "abcd")
            assert total == pytest.approx(1.0)
            # Feasible topologies are a subset of the SIC-needing cases.
            assert fractions["feasible"] <= (fractions["b"]
                                             + fractions["c"]
                                             + fractions["d"] + 1e-9)

    def test_lower_exponent_lower_gains(self):
        high = fig6.compute(ranges_m=(20.0,), n_samples=600,
                            pathloss_exponent=4.0, seed=1)
        low = fig6.compute(ranges_m=(20.0,), n_samples=600,
                           pathloss_exponent=2.0, seed=1)
        (high_entry,) = high.values()
        (low_entry,) = low.values()
        assert low_entry["summary"]["frac_no_gain"] >= \
            high_entry["summary"]["frac_no_gain"]


class TestFig8:
    @pytest.fixture(scope="class")
    def grid(self):
        return fig8.compute(n_points=41)

    def test_very_little_benefit(self, grid):
        assert grid.max_value < 1.35

    def test_never_below_one(self, grid):
        assert grid.min_value >= 1.0

    def test_weaker_than_upload_everywhere(self, grid):
        upload = fig4.compute(n_points=41)
        assert np.all(grid.values <= np.maximum(upload.values, 1.0) + 1e-9)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.compute()

    @pytest.fixture(scope="class")
    def detuned(self):
        return fig10.compute(detuned=True)

    def test_serial_is_15_units(self, result):
        assert result.serial_units == pytest.approx(15.0, rel=1e-6)

    def test_adjacent_pairing_is_best(self, result):
        assert result.best_pairing == "(C1|C2, C3|C4)"

    def test_all_pairings_beat_serial(self, result):
        assert all(units < result.serial_units
                   for units in result.pairing_units.values())

    def test_scheduler_finds_the_best(self, result):
        best = min(min(result.pairing_units.values()),
                   result.power_control_units, result.multirate_units)
        assert result.scheduler_units <= best + 1e-9

    def test_detuned_power_control_strictly_helps(self, detuned):
        best_pairing = min(detuned.pairing_units.values())
        assert detuned.power_control_units < min(best_pairing,
                                                 detuned.serial_units)

    def test_detuned_multirate_beats_power_control(self, detuned):
        assert detuned.multirate_units <= detuned.power_control_units + 1e-9

    def test_rows_render(self, result):
        rows = result.rows()
        assert any("serial" in row for row in rows)
        assert any("best" in row for row in rows)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.compute(n_samples=800, seed=2010)

    def test_one_receiver_techniques_beat_plain_sic(self, result):
        panel = result["one_receiver"]
        sic = panel["sic"]["summary"]["frac_gain_over_20pct"]
        for technique in ("power_control", "multirate"):
            boosted = panel[technique]["summary"]["frac_gain_over_20pct"]
            assert boosted > sic

    def test_two_receiver_sic_almost_no_gain(self, result):
        summary = result["two_receivers"]["sic"]["summary"]
        assert summary["frac_no_gain"] > 0.85

    def test_one_receiver_beats_two_receiver(self, result):
        one = result["one_receiver"]["sic"]["summary"]
        two = result["two_receivers"]["sic"]["summary"]
        assert one["frac_gain_over_10pct"] > two["frac_gain_over_10pct"]

    def test_gains_never_below_one(self, result):
        for panel in ("one_receiver", "two_receivers"):
            for entry in result[panel].values():
                assert entry["summary"]["min"] >= 1.0

    def test_headline_fractions_helper(self, result):
        fractions = fig11.headline_fractions(result)
        assert "one_receiver/sic" in fractions
        assert "two_receivers/packing" in fractions


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.compute(sizes=(3, 5, 8), n_trials=8, seed=2010)

    def test_blossom_equals_brute_force(self, result):
        for comparison in result["comparisons"]:
            assert comparison.mean_times["blossom"] == pytest.approx(
                comparison.mean_times["brute_force"], rel=1e-9)

    def test_policy_ordering(self, result):
        for comparison in result["comparisons"]:
            times = comparison.mean_times
            assert times["blossom"] <= times["greedy"] + 1e-12
            assert times["greedy"] <= times["serial"] + 1e-12
            assert times["random"] <= times["serial"] + 1e-12

    def test_gain_grows_with_pool_size(self, result):
        gains = [c.mean_gains["blossom"] for c in result["comparisons"]]
        assert gains[-1] > gains[0]

    def test_runtime_reported_for_all_sizes(self, result):
        assert set(result["runtime"]) == {4, 8, 16, 32, 64}

    def test_runtime_carries_phase_split(self, result):
        for entry in result["runtime"].values():
            assert set(entry) == {"total_s", "cost_build_s",
                                  "matching_s", "assembly_s"}
            assert all(v >= 0.0 for v in entry.values())
            phase_sum = sum(v for k, v in entry.items() if k != "total_s")
            assert phase_sum <= entry["total_s"]


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.traces.synthetic import UploadTraceConfig
        return fig13.compute(
            trace_config=UploadTraceConfig(duration_days=1.0),
            seed=2010, max_snapshots=80)

    def test_all_curves_present(self, result):
        assert set(result) == {"pairing", "pairing+power_control",
                               "pairing+multirate", "meta"}

    def test_trends_match_fig11a(self, result):
        # Power control / multirate enhance the pairing gains.
        base = result["pairing"]["summary"]["frac_gain_over_10pct"]
        for label in ("pairing+power_control", "pairing+multirate"):
            assert result[label]["summary"]["frac_gain_over_10pct"] >= base

    def test_real_life_pairing_gains_exist(self, result):
        assert result["pairing+power_control"]["summary"]["median"] > 1.0

    def test_gains_never_below_one(self, result):
        for label, entry in result.items():
            if label == "meta":
                continue
            assert entry["summary"]["min"] >= 1.0 - 1e-12

    def test_meta_counts(self, result):
        assert result["meta"]["n_snapshots"] == 80


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14.compute(n_scenarios=600, seed=2010)

    def test_all_panels_present(self, result):
        assert set(result) == {"arbitrary", "arbitrary+packing",
                               "discrete", "discrete+packing", "meta"}

    def test_packing_improves_both_panels(self, result):
        for base in ("arbitrary", "discrete"):
            plain = result[base]["summary"]["frac_gain_over_20pct"]
            packed = result[f"{base}+packing"]["summary"][
                "frac_gain_over_20pct"]
            assert packed >= plain

    def test_plain_sic_gains_limited(self, result):
        # Fig. 14a's message: without packing the gains are small.
        assert result["arbitrary"]["summary"]["frac_no_gain"] > 0.6
        assert result["discrete"]["summary"]["frac_no_gain"] > 0.6

    def test_discrete_packing_reaches_real_gains(self, result):
        summary = result["discrete+packing"]["summary"]
        assert summary["frac_gain_over_20pct"] > 0.1

    def test_gains_never_below_one(self, result):
        for label, entry in result.items():
            if label == "meta":
                continue
            assert entry["summary"]["min"] >= 1.0
