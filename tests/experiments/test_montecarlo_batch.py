"""Equivalence tests: batched Monte-Carlo engines vs the scalar reference.

The batched engines must reproduce the scalar reference *draw for
draw* for a fixed seed (not just in distribution): the vectorised
samplers consume the same uniform stream, so sample ``k`` of a batch is
the same topology the scalar loop sees on iteration ``k``.  Gains are
compared with a tight tolerance (the only permitted difference is
last-ulp trig/hypot rounding); case fractions must match exactly.

Chunked runs re-seed per chunk, so their reference is the scalar engine
run chunk-by-chunk on the same spawned seeds.  Worker count must never
change results: ``n_workers=1`` and ``n_workers=4`` must be
bit-identical.
"""

import json

import numpy as np
import pytest

from repro.experiments.montecarlo import (
    MonteCarloConfig,
    chunk_seeds,
    chunk_sizes,
    one_receiver_technique_gains,
    one_receiver_technique_gains_scalar,
    two_receiver_scenarios,
    two_receiver_scenarios_scalar,
    two_receiver_technique_gains,
    two_receiver_technique_gains_scalar,
)
from repro.util.cache import ResultCache, array_digest

RTOL = 1e-9

N_WORKERS = [1, 4]


@pytest.fixture(scope="module")
def config():
    return MonteCarloConfig(n_samples=500)


class TestChunkHelpers:
    def test_default_is_single_chunk(self):
        assert chunk_sizes(10_000, None) == [10_000]

    def test_even_split(self):
        assert chunk_sizes(1000, 250) == [250, 250, 250, 250]

    def test_remainder_chunk(self):
        assert chunk_sizes(1000, 300) == [300, 300, 300, 100]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            chunk_sizes(100, 0)

    def test_single_chunk_reuses_seed(self):
        (seed,) = chunk_seeds(1234, 1)
        assert seed == 1234

    def test_multi_chunk_spawns_deterministically(self):
        a = chunk_seeds(1234, 3)
        b = chunk_seeds(1234, 3)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert [s.entropy for s in a] == [s.entropy for s in b]


class TestTwoReceiverScenariosEquivalence:
    @pytest.mark.parametrize("n_workers", N_WORKERS)
    def test_matches_scalar_draw_for_draw(self, config, n_workers):
        gains_ref, fractions_ref = two_receiver_scenarios_scalar(config,
                                                                 seed=42)
        gains, fractions = two_receiver_scenarios(config, seed=42,
                                                  n_workers=n_workers)
        np.testing.assert_allclose(gains, gains_ref, rtol=RTOL)
        assert fractions == fractions_ref

    def test_workers_do_not_change_chunked_results(self, config):
        serial = two_receiver_scenarios(config, seed=42, chunk_size=128,
                                        n_workers=1)
        parallel = two_receiver_scenarios(config, seed=42, chunk_size=128,
                                          n_workers=4)
        assert np.array_equal(serial[0], parallel[0])
        assert serial[1] == parallel[1]

    def test_chunked_matches_scalar_per_chunk(self, config):
        """A chunked run is the scalar engine applied per spawned seed."""
        sizes = chunk_sizes(config.n_samples, 128)
        seeds = chunk_seeds(42, len(sizes))
        expected = np.concatenate([
            two_receiver_scenarios_scalar(
                MonteCarloConfig(n_samples=n), seed=s)[0]
            for s, n in zip(seeds, sizes)
        ])
        gains, _ = two_receiver_scenarios(config, seed=42, chunk_size=128)
        np.testing.assert_allclose(gains, expected, rtol=RTOL)


class TestOneReceiverTechniqueEquivalence:
    @pytest.mark.parametrize("n_workers", N_WORKERS)
    def test_matches_scalar_draw_for_draw(self, config, n_workers):
        ref = one_receiver_technique_gains_scalar(config, seed=43)
        out = one_receiver_technique_gains(config, seed=43,
                                           n_workers=n_workers)
        assert set(out) == set(ref)
        for technique in ref:
            np.testing.assert_allclose(out[technique], ref[technique],
                                       rtol=RTOL, err_msg=technique)

    def test_workers_do_not_change_chunked_results(self, config):
        serial = one_receiver_technique_gains(config, seed=43,
                                              chunk_size=99, n_workers=1)
        parallel = one_receiver_technique_gains(config, seed=43,
                                                chunk_size=99, n_workers=4)
        for technique in serial:
            assert np.array_equal(serial[technique], parallel[technique])


class TestTwoReceiverTechniqueEquivalence:
    @pytest.mark.parametrize("n_workers", N_WORKERS)
    def test_matches_scalar_draw_for_draw(self, config, n_workers):
        ref = two_receiver_technique_gains_scalar(config, seed=44)
        out = two_receiver_technique_gains(config, seed=44,
                                           n_workers=n_workers)
        assert set(out) == set(ref)
        for technique in ref:
            np.testing.assert_allclose(out[technique], ref[technique],
                                       rtol=RTOL, err_msg=technique)

    def test_workers_do_not_change_chunked_results(self, config):
        serial = two_receiver_technique_gains(config, seed=44,
                                              chunk_size=77, n_workers=1)
        parallel = two_receiver_technique_gains(config, seed=44,
                                                chunk_size=77, n_workers=4)
        for technique in serial:
            assert np.array_equal(serial[technique], parallel[technique])


class TestResultCacheIntegration:
    def test_second_call_is_served_from_cache(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        first, fr_first = two_receiver_scenarios(config, seed=7, cache=cache)
        stored = list(tmp_path.glob("*.npz"))
        assert len(stored) == 1
        # Poison the only entry's gains *and* refresh the sidecar digest
        # (a digest-consistent tamper); a cache hit must surface it.
        with np.load(stored[0]) as archive:
            poisoned = {name: archive[name].copy()
                        for name in archive.files}
        poisoned["gains"][:] = 123.0
        np.savez_compressed(stored[0], **poisoned)
        (meta_path,) = tmp_path.glob("*.json")
        meta = json.loads(meta_path.read_text())
        meta["sha256"] = array_digest(poisoned)
        meta_path.write_text(json.dumps(meta))
        second, fr_second = two_receiver_scenarios(config, seed=7,
                                                   cache=cache)
        assert np.all(second == 123.0)
        assert fr_second == fr_first

    def test_tampered_entry_is_quarantined_and_recomputed(self, config,
                                                          tmp_path):
        """A payload whose digest mismatches the sidecar is never served."""
        cache = ResultCache(tmp_path)
        first, fr_first = two_receiver_scenarios(config, seed=7, cache=cache)
        (entry,) = tmp_path.glob("*.npz")
        with np.load(entry) as archive:
            poisoned = {name: archive[name].copy()
                        for name in archive.files}
        poisoned["gains"][:] = 123.0
        np.savez_compressed(entry, **poisoned)  # sidecar digest left stale
        second, fr_second = two_receiver_scenarios(config, seed=7,
                                                   cache=cache)
        assert np.array_equal(second, first)
        assert fr_second == fr_first
        assert cache.quarantined == 1
        assert list((tmp_path / "corrupt").glob("*.npz"))

    def test_different_seeds_get_different_entries(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        two_receiver_scenarios(config, seed=1, cache=cache)
        two_receiver_scenarios(config, seed=2, cache=cache)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_generator_seeds_are_not_cached(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        rng = np.random.default_rng(5)
        two_receiver_scenarios(config, rng, cache=cache)
        assert list(tmp_path.glob("*.npz")) == []

    def test_chunking_changes_the_key(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        two_receiver_scenarios(config, seed=1, cache=cache)
        two_receiver_scenarios(config, seed=1, chunk_size=128, cache=cache)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_technique_engine_roundtrip(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        first = one_receiver_technique_gains(config, seed=3, cache=cache)
        second = one_receiver_technique_gains(config, seed=3, cache=cache)
        for technique in first:
            assert np.array_equal(first[technique], second[technique])
