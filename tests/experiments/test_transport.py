"""Shared-memory chunk transport: round-trips, fallbacks, leak checks.

The transport must never change results — only how bytes move — so
every test here is an identity check plus a ``/dev/shm`` scan: after
any run (including faulted ones) no ``repro_shm_*`` segment survives.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments import transport
from repro.experiments.runner import ExecutionPolicy, run_chunked
from repro.experiments.transport import (
    ShmChunk,
    TransportPolicy,
    TransportStats,
    active_segments,
    decode_chunk,
    encode_chunk,
    release_chunk,
    shm_available,
)
from repro.util.faults import FaultInjector

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this platform")


def _payload(n=2048, seed=0):
    rng = np.random.default_rng(seed)
    return {"gains": rng.random(n), "cases": rng.integers(0, 4, n)}


@dataclass(frozen=True)
class _TinyConfig:
    n_samples: int = 400


def _payload_chunk(config, seed, n):
    """Module-level (picklable) chunk fn with a deterministic payload."""
    from repro.util.rng import make_rng

    rng = make_rng(seed)
    return {"x": rng.random(n), "y": rng.random(n)}


class TestRoundTrip:
    def test_large_arrays_ride_shared_memory(self):
        before = active_segments()
        raw = encode_chunk(_payload(), TransportPolicy(min_bytes=1))
        assert isinstance(raw, ShmChunk)
        assert raw.total_bytes > 0
        decoded = decode_chunk(raw)
        expected = _payload()
        assert set(decoded) == set(expected)
        for name in expected:
            assert np.array_equal(decoded[name], expected[name])
            assert decoded[name].dtype == expected[name].dtype
        assert active_segments() == before

    def test_non_contiguous_and_multidim_arrays(self):
        base = np.arange(600, dtype=np.float64).reshape(20, 30)
        result = {"strided": base[::2, ::3], "grid": base}
        raw = encode_chunk(result, TransportPolicy(min_bytes=1))
        assert isinstance(raw, ShmChunk)
        decoded = decode_chunk(raw)
        assert np.array_equal(decoded["strided"], base[::2, ::3])
        assert np.array_equal(decoded["grid"], base)

    def test_empty_array_survives(self):
        result = {"big": np.ones(1024), "empty": np.empty(0)}
        raw = encode_chunk(result, TransportPolicy(min_bytes=1))
        assert isinstance(raw, ShmChunk)
        decoded = decode_chunk(raw)
        assert decoded["empty"].shape == (0,)
        assert np.array_equal(decoded["big"], result["big"])


class TestFallbacks:
    def test_small_payload_pickles(self):
        result = {"x": np.ones(4)}
        assert encode_chunk(result, TransportPolicy()) is result

    def test_disabled_policy_pickles(self):
        result = _payload()
        raw = encode_chunk(result, TransportPolicy(min_bytes=1,
                                                   enabled=False))
        assert raw is result

    def test_none_policy_pickles(self):
        result = _payload()
        assert encode_chunk(result, None) is result

    def test_object_dtype_pickles(self):
        result = {"big": np.ones(1024),
                  "weird": np.array([{"a": 1}], dtype=object)}
        assert encode_chunk(result, TransportPolicy(min_bytes=1)) is result

    def test_non_ndarray_value_pickles(self):
        result = {"big": np.ones(1024), "scalar": 3.0}
        assert encode_chunk(result, TransportPolicy(min_bytes=1)) is result

    def test_unavailable_platform_pickles(self, monkeypatch):
        monkeypatch.setattr(transport, "_AVAILABLE", False)
        result = _payload()
        assert encode_chunk(result, TransportPolicy(min_bytes=1)) is result

    def test_negative_min_bytes_rejected(self):
        with pytest.raises(ValueError, match="min_bytes"):
            TransportPolicy(min_bytes=-1)


class TestRelease:
    def test_release_is_idempotent(self):
        raw = encode_chunk(_payload(), TransportPolicy(min_bytes=1))
        assert isinstance(raw, ShmChunk)
        release_chunk(raw)
        release_chunk(raw)  # second release of the same segment: no-op
        assert raw.segment not in active_segments()

    def test_release_after_decode_is_noop(self):
        raw = encode_chunk(_payload(), TransportPolicy(min_bytes=1))
        decode_chunk(raw)
        release_chunk(raw)

    def test_release_ignores_plain_dicts(self):
        release_chunk({"x": np.ones(3)})
        release_chunk(None)


class TestStats:
    def test_decode_records_both_paths(self):
        stats = TransportStats()
        raw = encode_chunk(_payload(), TransportPolicy(min_bytes=1))
        decode_chunk(raw, stats)
        decode_chunk({"x": np.ones(8)}, stats)
        snapshot = stats.as_dict()
        assert snapshot["shm_chunks"] == 1
        assert snapshot["shm_bytes"] == raw.total_bytes
        assert snapshot["pickled_chunks"] == 1
        assert snapshot["pickled_bytes"] == 8 * 8


class TestSupervisedRuns:
    """The transport plugged into run_chunked: identity + no leaks."""

    def test_pooled_run_matches_serial_and_leaves_no_segments(self):
        before = active_segments()
        serial = run_chunked("transport_serial", _payload_chunk,
                             _TinyConfig(), seed=5, code_version=1,
                             chunk_size=100)
        stats = TransportStats()
        policy = ExecutionPolicy(transport=TransportPolicy(min_bytes=1),
                                 transport_stats=stats)
        pooled = run_chunked("transport_pooled", _payload_chunk,
                             _TinyConfig(), seed=5, code_version=1,
                             n_workers=2, chunk_size=100, policy=policy)
        for name in serial:
            assert np.array_equal(serial[name], pooled[name])
        assert stats.as_dict()["shm_chunks"] > 0
        assert active_segments() == before

    def test_faulted_run_matches_serial_and_leaves_no_segments(self):
        before = active_segments()
        serial = run_chunked("transport_faulted", _payload_chunk,
                             _TinyConfig(), seed=9, code_version=1,
                             chunk_size=100)
        stats = TransportStats()
        policy = ExecutionPolicy(
            transport=TransportPolicy(min_bytes=1),
            transport_stats=stats,
            faults=FaultInjector(fail_first_attempts=1,
                                 pool_break_rounds={0}))
        faulted = run_chunked("transport_faulted", _payload_chunk,
                              _TinyConfig(), seed=9, code_version=1,
                              n_workers=2, chunk_size=100, policy=policy)
        for name in serial:
            assert np.array_equal(serial[name], faulted[name])
        assert active_segments() == before
