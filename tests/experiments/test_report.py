"""Markdown-report CLI tests."""

import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.__main__ import main

ALL_FIGURES = ("fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
               "fig10", "fig11", "fig12", "fig13", "fig14")


class TestReportFlag:
    def test_single_figure_report(self, tmp_path, capsys):
        out = tmp_path / "fig10.md"
        assert main(["fig10", "--report", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# SIC reproduction")
        assert "## fig10" in text
        assert "serial (no SIC)" in text
        assert "report written" in capsys.readouterr().out

    def test_quick_mode_noted(self, tmp_path, capsys):
        out = tmp_path / "fig3.md"
        assert main(["fig3", "--quick", "--report", str(out)]) == 0
        assert "quick run" in out.read_text()

    def test_all_quick_report_has_every_figure(self, tmp_path, capsys):
        out = tmp_path / "all.md"
        assert main(["all", "--quick", "--samples", "100",
                     "--report", str(out)]) == 0
        text = out.read_text()
        for figure in ALL_FIGURES:
            assert f"## {figure}" in text
        assert "## suite:" in text  # the shared-pool summary section
        # sections come out in paper order even though figures ran
        # concurrently on the shared pool
        assert text.index("## fig2") < text.index("## fig10")

    def test_no_report_without_flag(self, tmp_path, capsys):
        assert main(["fig10"]) == 0
        assert "report written" not in capsys.readouterr().out


class TestAllQuickSubprocess:
    """End-to-end: the real CLI process, suite path included."""

    def test_all_quick_end_to_end(self, tmp_path):
        report = tmp_path / "all.md"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "all", "--quick",
             "--samples", "40", "--report", str(report)],
            capture_output=True, text=True, timeout=600, env=env)
        assert proc.returncode == 0, proc.stderr
        for figure in ALL_FIGURES:
            assert f"== {figure}:" in proc.stdout
        assert "== suite:" in proc.stdout
        assert "report written" in proc.stdout
        # the report landed atomically: final file present, no temp
        # litter from repro.util.cache.atomic_write_text
        assert report.exists()
        text = report.read_text()
        for figure in ALL_FIGURES:
            assert f"## {figure}" in text
        leftovers = [p for p in tmp_path.iterdir() if p != report]
        assert leftovers == []
