"""Markdown-report CLI tests."""

from repro.experiments.__main__ import main


class TestReportFlag:
    def test_single_figure_report(self, tmp_path, capsys):
        out = tmp_path / "fig10.md"
        assert main(["fig10", "--report", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# SIC reproduction")
        assert "## fig10" in text
        assert "serial (no SIC)" in text
        assert "report written" in capsys.readouterr().out

    def test_quick_mode_noted(self, tmp_path, capsys):
        out = tmp_path / "fig3.md"
        assert main(["fig3", "--quick", "--report", str(out)]) == 0
        assert "quick run" in out.read_text()

    def test_all_quick_report_has_every_figure(self, tmp_path, capsys):
        out = tmp_path / "all.md"
        assert main(["all", "--quick", "--samples", "100",
                     "--report", str(out)]) == 0
        text = out.read_text()
        for figure in ("fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                       "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert f"## {figure}" in text

    def test_no_report_without_flag(self, tmp_path, capsys):
        assert main(["fig10"]) == 0
        assert "report written" not in capsys.readouterr().out
