"""Suite engine tests: fairness, pool lifecycle, golden bit-identity.

The load-bearing guarantee: running figures through the shared suite
pool yields results bit-identical to calling each figure's
``compute()`` directly with the same kwargs — for any worker count,
chunk size, or interleaving.  Chunks are pure functions of
``(config, chunk seed, chunk size)`` and the suite never alters a
figure's chunk layout, so only *where* chunks execute moves.
"""

from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.experiments import fig6, fig11, fig13
from repro.experiments.suite import (
    LaneQueue,
    SuitePool,
    run_suite,
)
from repro.experiments.transport import TransportPolicy, active_segments


def _square(x):
    return x * x


class TestLaneQueue:
    def test_round_robin_across_lanes(self):
        queue = LaneQueue()
        for item in ("a1", "a2", "a3"):
            queue.push("a", item)
        for item in ("b1", "b2"):
            queue.push("b", item)
        queue.push("c", "c1")
        order = [queue.pop() for _ in range(len(queue))]
        assert order == ["a1", "b1", "c1", "a2", "b2", "a3"]

    def test_pop_empty_raises(self):
        queue = LaneQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_len_and_lanes(self):
        queue = LaneQueue()
        assert len(queue) == 0 and queue.lanes() == []
        queue.push("x", 1)
        queue.push("y", 2)
        assert len(queue) == 2
        assert set(queue.lanes()) == {"x", "y"}
        queue.pop()
        queue.pop()
        assert len(queue) == 0 and queue.lanes() == []


class TestSuitePool:
    def test_submit_through_round(self):
        with SuitePool(2) as pool:
            handle = pool.open_round("lane")
            futures = [handle.submit(_square, i) for i in range(8)]
            assert [f.result(timeout=60) for f in futures] \
                == [i * i for i in range(8)]
            stats = pool.stats()
        assert stats["tasks_done"] == 8
        assert stats["lanes"] == {"lane": 8}
        assert stats["workers"] == 2

    def test_worker_exception_surfaces_on_proxy(self):
        with SuitePool(1) as pool:
            handle = pool.open_round("lane")
            future = handle.submit(_square, "not-a-number")
            with pytest.raises(TypeError):
                future.result(timeout=60)

    def test_rebuild_once_per_generation(self):
        with SuitePool(1) as pool:
            first = pool.open_round("a")
            second = pool.open_round("b")
            first.broken()
            second.broken()  # same generation: must not rebuild again
            assert pool.stats()["rebuilds"] == 1
            # the pool stays usable after a rebuild
            fresh = pool.open_round("a")
            assert fresh.submit(_square, 3).result(timeout=60) == 9

    def test_close_is_idempotent_and_fails_late_submits(self):
        pool = SuitePool(1)
        pool.close()
        pool.close()
        future = pool.open_round("lane").submit(_square, 2)
        with pytest.raises(BrokenProcessPool):
            future.result(timeout=60)

    def test_interrupt_fails_queued_chunks(self):
        class _Stop(BaseException):
            pass

        with SuitePool(1) as pool:
            pool.interrupt(_Stop())
            future = pool.open_round("lane").submit(_square, 2)
            with pytest.raises(_Stop):
                future.result(timeout=60)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            SuitePool(0)


def _assert_gain_maps_equal(actual, expected):
    assert set(actual) == set(expected)
    for label in expected:
        if not isinstance(expected[label], dict):
            assert actual[label] == expected[label]
            continue
        for key, value in expected[label].items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(actual[label][key], value), \
                    (label, key)
            elif isinstance(value, dict):
                assert actual[label][key] == value, (label, key)
            else:
                assert actual[label][key] == value, (label, key)


class TestRunSuiteGolden:
    """Suite-mode outputs are bit-identical to direct compute() calls."""

    @pytest.mark.parametrize("n_workers", [1, 2])
    @pytest.mark.parametrize("chunk_size", [None, 64])
    def test_fig6_fig11_identical_across_workers_and_chunks(
            self, n_workers, chunk_size):
        kwargs = {
            "fig6": {"n_samples": 200, "seed": 11,
                     "chunk_size": chunk_size},
            "fig11": {"n_samples": 200, "seed": 11,
                      "chunk_size": chunk_size},
        }
        suite = run_suite(["fig6", "fig11"], kwargs, n_workers=n_workers)
        runs = suite.runs()

        direct6 = fig6.compute(**kwargs["fig6"])
        _assert_gain_maps_equal(runs["fig6"].result, direct6)
        direct11 = fig11.compute(**kwargs["fig11"])
        for panel in direct11:
            _assert_gain_maps_equal(runs["fig11"].result[panel],
                                    direct11[panel])

    def test_fig13_indexed_runner_identical(self):
        kwargs = {"fig13": {"max_snapshots": 6, "seed": 3}}
        suite = run_suite(["fig13"], kwargs, n_workers=2)
        direct = fig13.compute(max_snapshots=6, seed=3)
        result = suite.runs()["fig13"].result
        assert set(result) == set(direct)
        for label in direct:
            if label == "meta":
                assert result[label] == direct[label]
                continue
            assert np.array_equal(result[label]["gains"],
                                  direct[label]["gains"]), label

    def test_outcomes_in_paper_order_regardless_of_request_order(self):
        suite = run_suite(["fig10", "fig2"], {"fig2": {"n_points": 5}},
                          n_workers=1)
        assert [outcome.figure for outcome in suite.outcomes] \
            == ["fig2", "fig10"]

    def test_transport_exercised_and_no_leaked_segments(self):
        before = active_segments()
        kwargs = {"fig6": {"n_samples": 400, "seed": 2,
                           "chunk_size": 100}}
        suite = run_suite(["fig6"], kwargs, n_workers=2,
                          transport=TransportPolicy(min_bytes=1))
        total = suite.transport["shm_chunks"] \
            + suite.transport["pickled_chunks"]
        assert suite.transport["shm_chunks"] > 0
        assert total >= suite.transport["shm_chunks"]
        assert active_segments() == before
        direct = fig6.compute(**kwargs["fig6"])
        _assert_gain_maps_equal(suite.runs()["fig6"].result, direct)

    def test_summary_lines_cover_pool_and_transport(self):
        suite = run_suite(["fig2"], {"fig2": {"n_points": 5}}, n_workers=1)
        text = "\n".join(suite.summary_lines())
        assert "== suite:" in text
        assert "fig2" in text
        assert "pool: utilization" in text
        assert "transport:" in text

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="unknown figures"):
            run_suite(["fig99"])

    def test_figure_error_reraised_after_all_settle(self):
        with pytest.raises(TypeError):
            run_suite(["fig2", "fig10"],
                      {"fig2": {"no_such_kwarg": 1}}, n_workers=1)

    def test_borrowed_pool_left_open(self):
        with SuitePool(1) as pool:
            run_suite(["fig2"], {"fig2": {"n_points": 5}}, pool=pool)
            # still usable: run_suite must not close a borrowed pool
            handle = pool.open_round("after")
            assert handle.submit(_square, 4).result(timeout=60) == 16
