"""Fast-path trace evaluation: ``run_indexed`` and Fig. 13/14 goldens.

The hard invariant mirrors the Monte-Carlo engines': chunk ``i`` of an
indexed run is a pure function of ``(config, start i, size i)``, so the
merged result is independent of chunking, worker count, caching and
faults — and the figure pipelines built on top (``fig13.compute``,
``fig14.compute``) must be bit-identical to their frozen ``*_scalar``
references under every execution mode.
"""

import numpy as np
import pytest

from repro.experiments import fig13, fig14
from repro.experiments.runner import (
    ChunkExecutionError,
    ExecutionPolicy,
    run_indexed,
)
from repro.traces.downlink import DownlinkTraceConfig
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.util.cache import ResultCache
from repro.util.faults import FaultInjector, always_failing


def _square_chunk(config, start, n, scale=1.0):
    idx = np.arange(start, start + n, dtype=float)
    return {"idx": idx, "sq": scale * idx * idx}


def _counting_chunk(calls):
    def chunk_fn(config, start, n):
        calls.append((start, n))
        return {"idx": np.arange(start, start + n, dtype=float)}

    return chunk_fn


class TestRunIndexed:
    def test_maps_every_index_in_order(self):
        out = run_indexed("eng", _square_chunk, None, 30,
                          code_version=0, chunk_size=7)
        assert np.array_equal(out["idx"], np.arange(30.0))
        assert np.array_equal(out["sq"], np.arange(30.0) ** 2)

    def test_chunking_invariance(self):
        ref = run_indexed("eng", _square_chunk, None, 53,
                          code_version=0, chunk_size=53)
        for chunk_size in (1, 3, 8, 50, 200):
            out = run_indexed("eng", _square_chunk, None, 53,
                              code_version=0, chunk_size=chunk_size)
            assert np.array_equal(out["sq"], ref["sq"]), chunk_size

    def test_worker_invariance(self):
        ref = run_indexed("eng", _square_chunk, None, 40,
                          code_version=0, chunk_size=10)
        out = run_indexed("eng", _square_chunk, None, 40,
                          code_version=0, chunk_size=10, n_workers=3)
        assert np.array_equal(out["idx"], ref["idx"])
        assert np.array_equal(out["sq"], ref["sq"])

    def test_zero_items(self):
        out = run_indexed("eng", _square_chunk, None, 0,
                          code_version=0, chunk_size=8)
        assert out["idx"].shape == (0,)

    def test_kwargs_forwarded(self):
        out = run_indexed("eng", _square_chunk, None, 5,
                          code_version=0, chunk_size=5,
                          kwargs={"scale": 3.0})
        assert np.array_equal(out["sq"], 3.0 * np.arange(5.0) ** 2)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_indexed("eng", _square_chunk, None, 5,
                        code_version=0, n_workers=0)
        with pytest.raises(ValueError):
            run_indexed("eng", _square_chunk, None, -1, code_version=0)

    def test_cache_round_trip(self, tmp_path):
        calls = []
        chunk_fn = _counting_chunk(calls)
        cache = ResultCache(tmp_path)
        key = {"seed": 1}
        first = run_indexed("eng", chunk_fn, None, 12, code_version=0,
                            chunk_size=4, cache_key=key, cache=cache)
        assert calls == [(0, 4), (4, 4), (8, 4)]
        calls.clear()
        again = run_indexed("eng", chunk_fn, None, 12, code_version=0,
                            chunk_size=4, cache_key=key, cache=cache)
        assert calls == []  # served from cache, nothing recomputed
        assert np.array_equal(again["idx"], first["idx"])

    def test_cache_key_none_disables_cache(self, tmp_path):
        calls = []
        chunk_fn = _counting_chunk(calls)
        cache = ResultCache(tmp_path)
        for _ in range(2):
            run_indexed("eng", chunk_fn, None, 6, code_version=0,
                        chunk_size=3, cache=cache)
        assert len(calls) == 4  # both runs computed every chunk

    def test_identical_under_injected_faults(self):
        ref = run_indexed("eng", _square_chunk, None, 24,
                          code_version=0, chunk_size=6)
        out = run_indexed(
            "eng", _square_chunk, None, 24, code_version=0, chunk_size=6,
            policy=ExecutionPolicy(faults=FaultInjector(
                fail_first_attempts=1)))
        assert np.array_equal(out["sq"], ref["sq"])

    def test_interrupt_then_resume_recomputes_only_missing(self, tmp_path):
        calls = []
        chunk_fn = _counting_chunk(calls)
        key = {"seed": 9}
        ref = run_indexed("eng", chunk_fn, None, 20, code_version=0,
                          chunk_size=5, cache_key=key)
        assert len(calls) == 4
        calls.clear()
        with pytest.raises(ChunkExecutionError):
            run_indexed("eng", chunk_fn, None, 20, code_version=0,
                        chunk_size=5, cache_key=key,
                        policy=ExecutionPolicy(
                            checkpoint_dir=tmp_path,
                            faults=always_failing("eng", 2)))
        calls.clear()
        out = run_indexed("eng", chunk_fn, None, 20, code_version=0,
                          chunk_size=5, cache_key=key,
                          policy=ExecutionPolicy(checkpoint_dir=tmp_path))
        assert len(calls) == 2  # chunks 2 and 3; 0 and 1 from checkpoint
        assert np.array_equal(out["idx"], ref["idx"])


def assert_results_identical(a, b):
    """Exact equality of a figure-result dict: gains, summaries, meta."""
    assert set(a) == set(b)
    for label in a:
        if label == "meta":
            assert a["meta"] == b["meta"]
            continue
        assert np.array_equal(a[label]["gains"], b[label]["gains"]), label
        assert a[label]["summary"] == b[label]["summary"], label


class TestFig13Golden:
    CONFIG = UploadTraceConfig(duration_days=1.0)
    KW = dict(trace_config=CONFIG, seed=2010, max_snapshots=60)

    @pytest.fixture(scope="class")
    def scalar(self):
        return fig13.compute_scalar(**self.KW)

    @pytest.fixture(scope="class")
    def fast(self):
        return fig13.compute(**self.KW)

    def test_fast_equals_scalar(self, scalar, fast):
        assert_results_identical(fast, scalar)

    def test_parallel_equals_serial(self, fast):
        assert_results_identical(
            fig13.compute(**self.KW, n_workers=2), fast)

    def test_chunk_size_invariant(self, fast):
        assert_results_identical(
            fig13.compute(**self.KW, chunk_size=7), fast)

    def test_cached_equals_fresh(self, fast, tmp_path):
        cache = ResultCache(tmp_path)
        first = fig13.compute(**self.KW, cache=cache)
        second = fig13.compute(**self.KW, cache=cache)
        assert_results_identical(first, fast)
        assert_results_identical(second, fast)

    def test_explicit_trace_equals_generated(self, fast):
        trace = UploadTraceGenerator(self.CONFIG).generate(2010)
        assert_results_identical(
            fig13.compute(trace=trace, seed=2010, max_snapshots=60), fast)

    def test_timer_covers_all_phases(self):
        from repro.util.timing import PhaseTimer
        timer = PhaseTimer()
        fig13.compute(**self.KW, timer=timer)
        assert list(timer.phases) == ["trace_gen", "scheduling", "assembly"]
        assert all(t >= 0.0 for t in timer.phases.values())


class TestFig14Golden:
    KW = dict(trace_config=DownlinkTraceConfig(n_locations=20),
              n_scenarios=300, seed=2010)

    @pytest.fixture(scope="class")
    def scalar(self):
        return fig14.compute_scalar(**self.KW)

    @pytest.fixture(scope="class")
    def fast(self):
        return fig14.compute(**self.KW)

    def test_fast_equals_scalar(self, scalar, fast):
        assert_results_identical(fast, scalar)

    def test_parallel_equals_serial(self, fast):
        assert_results_identical(
            fig14.compute(**self.KW, n_workers=2), fast)

    def test_chunk_size_invariant(self, fast):
        assert_results_identical(
            fig14.compute(**self.KW, chunk_size=37), fast)

    def test_cached_equals_fresh(self, fast, tmp_path):
        cache = ResultCache(tmp_path)
        first = fig14.compute(**self.KW, cache=cache)
        second = fig14.compute(**self.KW, cache=cache)
        assert_results_identical(first, fast)
        assert_results_identical(second, fast)

    def test_timer_covers_all_phases(self):
        from repro.util.timing import PhaseTimer
        timer = PhaseTimer()
        fig14.compute(**self.KW, timer=timer)
        assert list(timer.phases) == ["trace_gen", "draw", "evaluate",
                                      "assembly"]
        assert all(t >= 0.0 for t in timer.phases.values())
