"""Fig. 14 scenario-construction tests.

The mapping from two measurement records to the `PairRss` /
`DiscretePairRates` inputs is subtle (which AP serves which location,
which interfered key feeds which feasibility check); these tests pin it
with a hand-built campaign.
"""

import pytest

from repro.experiments.fig14 import (
    _scenario_discrete_rates,
    _scenario_rss,
)
from repro.traces.records import DownlinkMeasurement
from repro.util.units import db_to_linear


def mbps(x):
    return x * 1e6


@pytest.fixture
def loc1():
    return DownlinkMeasurement(
        location="L1",
        snr_db={"AP1": 30.0, "AP2": 20.0},
        clean_rate_bps={"AP1": mbps(54), "AP2": mbps(36)},
        interfered_rate_bps={("AP1", "AP2"): mbps(12),
                             ("AP2", "AP1"): mbps(6)},
    )


@pytest.fixture
def loc2():
    return DownlinkMeasurement(
        location="L2",
        snr_db={"AP1": 25.0, "AP2": 15.0},
        clean_rate_bps={"AP1": mbps(48), "AP2": mbps(24)},
        interfered_rate_bps={("AP1", "AP2"): mbps(18),
                             ("AP2", "AP1"): mbps(9)},
    )


class TestScenarioRss:
    def test_receiver_indexing(self, loc1, loc2):
        # R1 = loc1 served by AP1 (T1); R2 = loc2 served by AP2 (T2).
        rss = _scenario_rss(loc1, loc2, "AP1", "AP2")
        assert rss.s11 == pytest.approx(float(db_to_linear(30.0)))
        assert rss.s12 == pytest.approx(float(db_to_linear(20.0)))
        assert rss.s21 == pytest.approx(float(db_to_linear(25.0)))
        assert rss.s22 == pytest.approx(float(db_to_linear(15.0)))

    def test_swapping_aps_swaps_roles(self, loc1, loc2):
        forward = _scenario_rss(loc1, loc2, "AP1", "AP2")
        swapped = _scenario_rss(loc1, loc2, "AP2", "AP1")
        assert swapped.s11 == pytest.approx(forward.s12)
        assert swapped.s12 == pytest.approx(forward.s11)


class TestScenarioDiscreteRates:
    def test_clean_rates_from_serving_aps(self, loc1, loc2):
        rates = _scenario_discrete_rates(loc1, loc2, "AP1", "AP2")
        assert rates.clean_1 == mbps(54)    # AP1 at loc1
        assert rates.clean_2 == mbps(24)    # AP2 at loc2

    def test_interfered_key_orientation(self, loc1, loc2):
        rates = _scenario_discrete_rates(loc1, loc2, "AP1", "AP2")
        # interfered_11: AP1's signal at loc1 while AP2 transmits.
        assert rates.interfered_11 == mbps(12)
        # interfered_21: AP1's signal decodable at loc2 under AP2.
        assert rates.interfered_21 == mbps(18)
        # interfered_22: AP2's signal at loc2 while AP1 transmits.
        assert rates.interfered_22 == mbps(9)
        # interfered_12: AP2's signal decodable at loc1 under AP1.
        assert rates.interfered_12 == mbps(6)

    def test_swapped_scenario_mirrors(self, loc1, loc2):
        forward = _scenario_discrete_rates(loc1, loc2, "AP1", "AP2")
        mirrored = _scenario_discrete_rates(loc2, loc1, "AP2", "AP1")
        assert mirrored.clean_1 == forward.clean_2
        assert mirrored.clean_2 == forward.clean_1
        assert mirrored.interfered_11 == forward.interfered_22
        assert mirrored.interfered_21 == forward.interfered_12
