"""CLI tests for ``python -m repro.experiments``."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.registry import REGISTRY, run_experiment


class TestRegistry:
    def test_all_paper_figures_registered(self):
        assert set(REGISTRY) == {"fig2", "fig3", "fig4", "fig6", "fig7",
                                 "fig8", "fig10", "fig11", "fig12",
                                 "fig13", "fig14"}

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="unknown figure"):
            run_experiment("fig99")

    def test_run_experiment_renders_rows(self):
        rows = run_experiment("fig4", n_points=21)
        assert rows[0].startswith("== fig4")
        assert len(rows) > 3


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig13" in out

    def test_single_figure_quick(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out

    def test_grid_figure_quick(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig3-capacity-gain" in out

    def test_monte_carlo_figure_with_samples(self, capsys):
        assert main(["fig6", "--quick", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "range=" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["fig99"]) == 2

    def test_claims_quick(self, capsys):
        assert main(["claims", "--quick", "--samples", "100"]) == 0
        out = capsys.readouterr().out
        assert "C3_two_receiver_frac_no_gain" in out
