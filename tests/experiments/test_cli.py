"""CLI tests for ``python -m repro.experiments``."""

import pytest

from repro.experiments.__main__ import _kwargs_for, build_parser, main
from repro.experiments.registry import (
    REGISTRY,
    figure_sort_key,
    ordered_figures,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        assert set(REGISTRY) == {"fig2", "fig3", "fig4", "fig6", "fig7",
                                 "fig8", "fig10", "fig11", "fig12",
                                 "fig13", "fig14"}

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="unknown figure"):
            run_experiment("fig99")

    def test_run_experiment_renders_rows(self):
        run = run_experiment("fig4", n_points=21)
        assert run.figure == "fig4"
        assert run.lines[0].startswith("== fig4")
        assert len(run.lines) > 3
        assert run.result is not None

    def test_figures_order_numerically(self):
        assert ordered_figures() == [
            "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
            "fig10", "fig11", "fig12", "fig13", "fig14"]

    def test_sort_key_handles_unknown_ids(self):
        assert figure_sort_key("fig2") < figure_sort_key("fig10")
        assert figure_sort_key("fig10") < figure_sort_key("weird")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig13" in out

    def test_single_figure_quick(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out

    def test_grid_figure_quick(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig3-capacity-gain" in out

    def test_monte_carlo_figure_with_samples(self, capsys):
        assert main(["fig6", "--quick", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "range=" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["fig99"]) == 2

    def test_list_in_paper_order(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert 0 < out.index("fig2:") < out.index("fig10:")

    def test_samples_scales_fig7_and_fig13(self):
        args = build_parser().parse_args(["all", "--samples", "7"])
        fig7_kwargs = _kwargs_for("fig7", args)
        assert fig7_kwargs["n_ewlan_grids"] == 7
        assert fig7_kwargs["n_residential_rows"] == 21
        assert _kwargs_for("fig13", args)["max_snapshots"] == 7

    def test_samples_note_for_inapplicable_figures(self, capsys):
        assert main(["fig3", "--quick", "--samples", "50"]) == 0
        err = capsys.readouterr().err
        assert "--samples does not apply" in err
        assert "fig3" in err

    def test_samples_no_note_when_applicable(self, capsys):
        assert main(["fig6", "--quick", "--samples", "50"]) == 0
        assert "--samples" not in capsys.readouterr().err

    def test_claims_quick(self, capsys):
        assert main(["claims", "--quick", "--samples", "100"]) == 0
        out = capsys.readouterr().out
        assert "C3_two_receiver_frac_no_gain" in out
