"""Smoke tests: every shipped example must run and print its report.

Examples are documentation that executes; these tests keep them from
rotting.  Each example is run in-process (``runpy``) with small
arguments where the script accepts them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv, capsys) -> str:
    """Execute an example with patched argv; return its stdout."""
    path = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(path)] + [str(a) for a in argv]
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:  # examples may sys.exit(main())
        assert not exc.code, f"{name} exited with {exc.code}"
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Channel capacity" in out
        assert "rides for free" in out
        assert "schedule:" in out

    def test_wlan_upload_scheduling(self, capsys):
        out = run_example("wlan_upload_scheduling.py", [6, 3], capsys)
        assert "blossom (paper Sec. 6)" in out
        assert "all" in out  # every packet decoded

    def test_residential_neighbors(self, capsys):
        out = run_example("residential_neighbors.py", [30, 3], capsys)
        assert "Fig. 5 case mix" in out
        assert "Enterprise contrast" in out

    def test_mesh_chain(self, capsys):
        out = run_example("mesh_chain.py", [], capsys)
        assert "Feasibility frontier" in out
        assert "pipeline overlap" in out

    def test_ksic_groups(self, capsys):
        out = run_example("ksic_groups.py", [], capsys)
        assert "identity holds" in out
        assert "decoded 4/4 packets" in out
        assert "decoded 2/4 packets" in out

    def test_backlog_fairness(self, capsys):
        out = run_example("backlog_fairness.py", [], capsys)
        assert "Jain fairness index" in out
        assert "stability margin" in out

    @pytest.mark.slow
    def test_trace_pipeline(self, capsys, tmp_path):
        out = run_example("trace_pipeline.py", [tmp_path], capsys)
        assert "JSONL round trip" in out
        assert "Fig. 13" in out and "Fig. 14" in out
        assert (tmp_path / "building_trace.jsonl").exists()
