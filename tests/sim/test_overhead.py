"""MAC-overhead model tests."""

import pytest

from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sim.overhead import (
    DOT11G_OVERHEADS,
    NO_OVERHEADS,
    MacOverheads,
    apply_overheads,
)
from repro.techniques.pairing import TechniqueSet


def make_clients(channel, snrs_db):
    n0 = channel.noise_w
    return [UploadClient(f"C{i + 1}", 10 ** (snr / 10) * n0)
            for i, snr in enumerate(snrs_db)]


class TestMacOverheads:
    def test_defaults_positive(self):
        assert DOT11G_OVERHEADS.per_access_s > 0
        assert DOT11G_OVERHEADS.per_packet_s > 0

    def test_no_overheads_is_zero(self):
        assert NO_OVERHEADS.slot_overhead_s(5) == 0.0

    def test_slot_overhead_composition(self):
        oh = MacOverheads(difs_s=10e-6, mean_backoff_s=0.0,
                          phy_preamble_s=0.0, sifs_s=1e-6, ack_s=2e-6)
        assert oh.slot_overhead_s(1) == pytest.approx(13e-6)
        assert oh.slot_overhead_s(2) == pytest.approx(16e-6)

    def test_empty_slot_free(self):
        assert DOT11G_OVERHEADS.slot_overhead_s(0) == 0.0

    def test_rejects_negative_packets(self):
        with pytest.raises(ValueError):
            DOT11G_OVERHEADS.slot_overhead_s(-1)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            MacOverheads(difs_s=-1e-6)


class TestApplyOverheads:
    @pytest.fixture
    def schedule(self, channel):
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        clients = make_clients(channel, [32, 16, 28, 14])
        return scheduler.schedule(clients)

    def test_no_overheads_preserves_gain(self, schedule):
        adjusted = apply_overheads(schedule, NO_OVERHEADS)
        assert adjusted.gain == pytest.approx(schedule.gain)
        assert adjusted.overhead_fraction == 0.0

    def test_overheads_extend_both_sides(self, schedule):
        adjusted = apply_overheads(schedule, DOT11G_OVERHEADS)
        assert adjusted.total_time_s > schedule.total_time_s
        assert adjusted.serial_total_s > schedule.serial_time_s

    def test_serial_pays_one_access_per_packet(self, schedule):
        adjusted = apply_overheads(schedule, DOT11G_OVERHEADS)
        n_packets = sum(len(slot.clients) for slot in schedule.slots)
        assert adjusted.serial_overhead_s == pytest.approx(
            n_packets * DOT11G_OVERHEADS.slot_overhead_s(1))

    def test_pairing_shares_channel_accesses(self, schedule):
        # Paired slots pay fewer per-access costs than serial would.
        adjusted = apply_overheads(schedule, DOT11G_OVERHEADS)
        assert adjusted.overhead_s < adjusted.serial_overhead_s

    def test_fixed_access_costs_favour_sic(self, channel, schedule):
        # With only per-access overhead (no ACKs) pairing strictly
        # improves the gain: half as many accesses.
        access_only = MacOverheads(sifs_s=0.0, ack_s=0.0)
        plain = apply_overheads(schedule, NO_OVERHEADS)
        with_access = apply_overheads(schedule, access_only)
        if any(slot.is_pair for slot in schedule.slots):
            assert with_access.gain > plain.gain

    def test_overhead_fraction_in_unit_interval(self, schedule):
        adjusted = apply_overheads(schedule, DOT11G_OVERHEADS)
        assert 0.0 < adjusted.overhead_fraction < 1.0
