"""Simulation-metrics tests."""

import pytest

from repro.sim.metrics import PacketRecord, SimulationMetrics


def packet(client="a", start=0.0, end=1.0, rate=1e6, bits=1e6,
           decoded=True, concurrent=()):
    return PacketRecord(client=client, start_s=start, end_s=end,
                        rate_bps=rate, bits=bits, decoded=decoded,
                        concurrent_with=tuple(concurrent))


class TestPacketRecord:
    def test_airtime(self):
        assert packet(start=1.0, end=3.5).airtime_s == 2.5


class TestSimulationMetrics:
    def test_empty(self):
        metrics = SimulationMetrics()
        assert metrics.completion_time_s == 0.0
        assert metrics.throughput_bps == 0.0
        assert not metrics.all_decoded

    def test_completion_time_is_last_end(self):
        metrics = SimulationMetrics()
        metrics.record(packet(end=2.0))
        metrics.record(packet(client="b", end=5.0))
        assert metrics.completion_time_s == 5.0

    def test_delivered_bits_excludes_failures(self):
        metrics = SimulationMetrics()
        metrics.record(packet(bits=100.0))
        metrics.record(packet(client="b", bits=50.0, decoded=False))
        assert metrics.delivered_bits == 100.0
        assert metrics.failed_count == 1
        assert not metrics.all_decoded

    def test_throughput(self):
        metrics = SimulationMetrics()
        metrics.record(packet(bits=1000.0, end=2.0))
        assert metrics.throughput_bps == 500.0

    def test_per_client_accumulates(self):
        metrics = SimulationMetrics()
        metrics.record(packet(client="a", start=0, end=1, bits=10))
        metrics.record(packet(client="a", start=1, end=3, bits=20))
        metrics.record(packet(client="b", start=0, end=1, bits=5,
                              decoded=False))
        stats = metrics.per_client()
        assert stats["a"]["airtime_s"] == 3.0
        assert stats["a"]["bits"] == 30.0
        assert stats["a"]["packets"] == 2.0
        assert stats["b"]["failed"] == 1.0
        assert stats["b"]["bits"] == 0.0

    def test_concurrency_fraction(self):
        metrics = SimulationMetrics()
        metrics.record(packet(concurrent=("b",)))
        metrics.record(packet(client="b"))
        assert metrics.concurrency_fraction() == 0.5
