"""Group-schedule simulation tests: k-SIC analytic vs operational."""

import pytest

from repro.scheduling.groups import (
    exhaustive_group_schedule,
    greedy_group_schedule,
)
from repro.scheduling.scheduler import UploadClient
from repro.sic.ksic import SuccessiveReceiver, equal_rate_group_powers
from repro.sim.wlan import SimulationError, UplinkSimulator


def make_clients(rss_list):
    return [UploadClient(f"C{i + 1}", rss) for i, rss in enumerate(rss_list)]


@pytest.fixture
def simulator(channel):
    return UplinkSimulator(channel=channel)


class TestGroupCrossValidation:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_simulated_time_equals_scheduled(self, channel, simulator,
                                             rng, k):
        clients = make_clients(10 ** rng.uniform(-12.5, -8, size=9))
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=k)
        metrics = simulator.run_groups(schedule, clients)
        assert metrics.all_decoded
        assert metrics.completion_time_s == pytest.approx(
            schedule.total_time_s, rel=1e-9)

    def test_exhaustive_schedule_executes(self, channel, simulator, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=6))
        schedule = exhaustive_group_schedule(channel, clients,
                                             max_group_size=3)
        metrics = simulator.run_groups(schedule, clients)
        assert metrics.all_decoded
        assert metrics.completion_time_s == pytest.approx(
            schedule.total_time_s, rel=1e-9)

    def test_ladder_group_all_decode_concurrently(self, channel,
                                                  simulator):
        powers = equal_rate_group_powers(channel, 3, 10.0)
        clients = make_clients(powers)
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        assert len(schedule.slots) == 1 and schedule.slots[0].used_sic
        metrics = simulator.run_groups(schedule, clients)
        assert metrics.all_decoded
        assert metrics.concurrency_fraction() == 1.0

    def test_capped_receiver_fails_deep_groups(self, channel):
        powers = equal_rate_group_powers(channel, 3, 10.0)
        clients = make_clients(powers)
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        capped = SuccessiveReceiver(channel=channel, max_cancellations=1)
        sim = UplinkSimulator(channel=channel, strict=False)
        metrics = sim.run_groups(schedule, clients, receiver=capped)
        assert metrics.failed_count == 1  # the third layer is lost

    def test_strict_mode_raises_on_capped_receiver(self, channel):
        powers = equal_rate_group_powers(channel, 3, 10.0)
        clients = make_clients(powers)
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        capped = SuccessiveReceiver(channel=channel, max_cancellations=1)
        sim = UplinkSimulator(channel=channel, strict=True)
        with pytest.raises(SimulationError):
            sim.run_groups(schedule, clients, receiver=capped)

    def test_unknown_client_rejected(self, channel, simulator):
        clients = make_clients([1e-9, 1e-10])
        schedule = greedy_group_schedule(channel, clients)
        with pytest.raises(ValueError, match="unknown"):
            simulator.run_groups(schedule, clients[:1])

    def test_bits_delivered(self, channel, simulator, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=7))
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        metrics = simulator.run_groups(schedule, clients)
        assert metrics.delivered_bits == pytest.approx(
            simulator.packet_bits * len(clients), rel=1e-9)
