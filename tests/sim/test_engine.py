"""Discrete-event engine tests."""

import pytest

from repro.sim.engine import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("first"))
        engine.schedule_at(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_clock_advances(self):
        engine = EventScheduler()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now_s))
        engine.run()
        assert seen == [5.0]
        assert engine.now_s == 5.0

    def test_schedule_after(self):
        engine = EventScheduler()
        seen = []
        engine.schedule_at(2.0, lambda: engine.schedule_after(
            3.0, lambda: seen.append(engine.now_s)))
        engine.run()
        assert seen == [5.0]

    def test_cannot_schedule_into_past(self):
        engine = EventScheduler()
        engine.schedule_at(5.0, lambda: None)
        engine.step()
        with pytest.raises(ValueError, match="past"):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventScheduler()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_pending_count_ignores_cancelled(self):
        engine = EventScheduler()
        keep = engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_count == 1

    def test_cancel_already_popped_event_keeps_count(self):
        engine = EventScheduler()
        first = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.step() is first
        first.cancel()  # too late: it already ran
        assert engine.pending_count == 1
        assert engine.processed_count == 1

    def test_double_cancel_decrements_once(self):
        engine = EventScheduler()
        engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        drop.cancel()
        assert engine.pending_count == 1
        engine.run()
        assert engine.processed_count == 1
        assert engine.pending_count == 0

    def test_cancel_from_callback(self):
        engine = EventScheduler()
        fired = []
        victim = engine.schedule_at(2.0, lambda: fired.append("victim"))
        engine.schedule_at(1.0, lambda: victim.cancel())
        engine.run()
        assert fired == []
        assert engine.processed_count == 1
        assert engine.pending_count == 0


class TestEdgeCases:
    def test_schedule_at_exactly_now_fires(self):
        engine = EventScheduler()
        engine.schedule_at(3.0, lambda: None)
        engine.step()
        fired = []
        engine.schedule_at(engine.now_s, lambda: fired.append(engine.now_s))
        engine.run()
        assert fired == [3.0]

    def test_counts_invariant_under_interleaved_cancel_and_run(self):
        engine = EventScheduler()
        events = [engine.schedule_at(float(t), lambda: None)
                  for t in range(1, 9)]
        scheduled = len(events)
        cancelled = 0
        for event in events[1::2]:
            event.cancel()
            cancelled += 1
            assert engine.pending_count == \
                scheduled - cancelled - engine.processed_count
            assert engine.step() is not None
            assert engine.pending_count == \
                scheduled - cancelled - engine.processed_count
        engine.run()
        assert engine.pending_count == 0
        assert engine.processed_count == scheduled - cancelled

    def test_pending_count_tracks_pop_and_push(self):
        engine = EventScheduler()
        assert engine.pending_count == 0
        engine.schedule_at(1.0, lambda: engine.schedule_after(
            1.0, lambda: None))
        assert engine.pending_count == 1
        engine.step()  # pops one, callback pushes one
        assert engine.pending_count == 1
        engine.run()
        assert engine.pending_count == 0


class TestRun:
    def test_run_until_stops_clock(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        now = engine.run(until_s=5.0)
        assert fired == [1]
        assert now == 5.0

    def test_run_returns_final_time(self):
        engine = EventScheduler()
        engine.schedule_at(7.0, lambda: None)
        assert engine.run() == 7.0

    def test_event_budget_guards_loops(self):
        engine = EventScheduler()

        def reschedule():
            engine.schedule_after(0.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        with pytest.raises(RuntimeError, match="budget"):
            engine.run(max_events=100)

    def test_processed_count(self):
        engine = EventScheduler()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        engine.run()
        assert engine.processed_count == 3

    def test_step_on_empty_returns_none(self):
        assert EventScheduler().step() is None
