"""Uplink-simulator tests: the analytic layer must agree with the
operational receiver, slot by slot."""

import pytest

from repro.phy.shannon import Channel
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sic.receiver import SicReceiver
from repro.sim.wlan import SimulationError, UplinkSimulator
from repro.techniques.pairing import PairMode, TechniqueSet


def make_clients(rss_list):
    return [UploadClient(f"C{i + 1}", rss) for i, rss in enumerate(rss_list)]


@pytest.fixture
def simulator(channel):
    return UplinkSimulator(channel=channel)


class TestCrossValidation:
    @pytest.mark.parametrize("techniques", [
        TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
        TechniqueSet.MULTIRATE, TechniqueSet.ALL,
    ])
    def test_simulated_time_equals_scheduled(self, channel, simulator, rng,
                                             techniques):
        scheduler = SicScheduler(channel=channel, techniques=techniques)
        for _ in range(5):
            clients = make_clients(10 ** rng.uniform(-12.5, -8, size=7))
            schedule = scheduler.schedule(clients)
            metrics = simulator.run(schedule, clients)
            assert metrics.all_decoded
            assert metrics.completion_time_s == pytest.approx(
                schedule.total_time_s, rel=1e-9)

    def test_every_packet_bits_delivered(self, channel, simulator, rng):
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.ALL)
        clients = make_clients(10 ** rng.uniform(-12, -8, size=6))
        schedule = scheduler.schedule(clients)
        metrics = simulator.run(schedule, clients)
        assert metrics.delivered_bits == pytest.approx(
            simulator.packet_bits * len(clients), rel=1e-9)

    def test_sic_slots_report_concurrency(self, channel, simulator):
        n0 = channel.noise_w
        scheduler = SicScheduler(channel=channel)
        clients = make_clients([1e6 * n0, 1e3 * n0])
        schedule = scheduler.schedule(clients)
        assert schedule.slots[0].mode is PairMode.SIC
        metrics = simulator.run(schedule, clients)
        assert metrics.concurrency_fraction() == 1.0


class TestPlanScheduleGolden:
    """Batched slot planning must equal the frozen per-slot reference."""

    @pytest.mark.parametrize("techniques", [
        TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
        TechniqueSet.MULTIRATE, TechniqueSet.ALL,
    ])
    def test_bit_identical_to_scalar(self, channel, simulator, rng,
                                     techniques):
        scheduler = SicScheduler(channel=channel, techniques=techniques)
        for _ in range(4):
            clients = make_clients(10 ** rng.uniform(-12.5, -8, size=7))
            schedule = scheduler.schedule(clients)
            rss = {c.name: c.rss_w for c in clients}
            assert simulator.plan_schedule(schedule, rss) == \
                simulator.plan_schedule_scalar(schedule, rss)

    def test_all_modes_and_tie_break(self, channel, simulator):
        from repro.scheduling.scheduler import Schedule, ScheduledSlot
        n0 = channel.noise_w
        rss = {"C1": 1e6 * n0, "C2": 1e3 * n0, "C3": 1e3 * n0,
               "C4": 2e5 * n0}
        slots = (
            ScheduledSlot(("C1",), 1.0, PairMode.SERIAL),
            ScheduledSlot(("C1", "C2"), 1.0, PairMode.SERIAL),
            ScheduledSlot(("C1", "C2"), 1.0, PairMode.SIC),
            # Exact power tie: the plan's >= tie-break must pick C2.
            ScheduledSlot(("C2", "C3"), 1.0, PairMode.SIC),
            ScheduledSlot(("C1", "C2"), 1.0, PairMode.SIC_POWER_CONTROL),
            ScheduledSlot(("C1", "C4"), 1.0, PairMode.SIC_MULTIRATE),
        )
        schedule = Schedule(slots=slots, serial_time_s=6.0)
        fast = simulator.plan_schedule(schedule, rss)
        assert fast == simulator.plan_schedule_scalar(schedule, rss)
        tie_plan = fast[3]
        assert tie_plan[0].client == "C2" and tie_plan[0].role == "strong"

    def test_unknown_mode_rejected(self, channel, simulator):
        from repro.scheduling.scheduler import Schedule, ScheduledSlot
        schedule = Schedule(
            slots=(ScheduledSlot(("C1", "C2"), 1.0, "bogus"),),
            serial_time_s=1.0)
        rss = {"C1": 1e-9, "C2": 1e-10}
        with pytest.raises(ValueError, match="unknown slot mode"):
            simulator.plan_schedule(schedule, rss)


class TestImperfectCancellation:
    def test_residue_breaks_tight_schedules(self, channel, rng):
        # A schedule costed for perfect cancellation must fail under a
        # receiver with residue: the weak packet's rate is now
        # infeasible.  (This is the imperfection ablation's mechanism.)
        scheduler = SicScheduler(channel=channel)
        n0 = channel.noise_w
        clients = make_clients([1e6 * n0, 1e3 * n0])
        schedule = scheduler.schedule(clients)
        assert schedule.slots[0].mode is PairMode.SIC
        lossy = UplinkSimulator(
            channel=channel,
            receiver=SicReceiver(channel=channel,
                                 cancellation_efficiency=0.9),
            strict=False)
        metrics = lossy.run(schedule, clients)
        assert metrics.failed_count > 0

    def test_strict_mode_raises(self, channel):
        scheduler = SicScheduler(channel=channel)
        n0 = channel.noise_w
        clients = make_clients([1e6 * n0, 1e3 * n0])
        schedule = scheduler.schedule(clients)
        lossy = UplinkSimulator(
            channel=channel,
            receiver=SicReceiver(channel=channel,
                                 cancellation_efficiency=0.9),
            strict=True)
        with pytest.raises(SimulationError):
            lossy.run(schedule, clients)

    def test_serial_schedules_survive_residue(self, channel, rng):
        # No concurrency, nothing to cancel: imperfection is harmless.
        scheduler = SicScheduler(channel=channel, sic_enabled=False)
        clients = make_clients(10 ** rng.uniform(-12, -8, size=5))
        schedule = scheduler.schedule(clients)
        lossy = UplinkSimulator(
            channel=channel,
            receiver=SicReceiver(channel=channel,
                                 cancellation_efficiency=0.5))
        metrics = lossy.run(schedule, clients)
        assert metrics.all_decoded


class TestValidation:
    def test_unknown_client_rejected(self, channel, simulator):
        scheduler = SicScheduler(channel=channel)
        clients = make_clients([1e-9, 1e-10])
        schedule = scheduler.schedule(clients)
        with pytest.raises(ValueError, match="unknown clients"):
            simulator.run(schedule, clients[:1])

    def test_receiver_channel_mismatch_rejected(self, channel):
        other = Channel(bandwidth_hz=channel.bandwidth_hz * 2,
                        noise_w=channel.noise_w)
        with pytest.raises(ValueError, match="channel"):
            UplinkSimulator(channel=channel,
                            receiver=SicReceiver(channel=other))

    def test_empty_schedule(self, channel, simulator):
        scheduler = SicScheduler(channel=channel)
        metrics = simulator.run(scheduler.schedule([]), [])
        assert metrics.completion_time_s == 0.0
