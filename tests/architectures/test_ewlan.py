"""Enterprise-WLAN architecture tests (paper Section 4.1)."""

import pytest

from repro.architectures.ewlan import (
    evaluate_ewlan_cross_pairs,
    nearest_ap_capture_fraction,
)
from repro.phy.pathloss import LogDistancePathLoss
from repro.sic.scenarios import PairCase


@pytest.fixture(scope="module")
def report():
    return evaluate_ewlan_cross_pairs(n_grids=60, seed=11)


class TestCrossPairs:
    def test_nearest_ap_makes_capture_dominate(self, report):
        # The paper's §4.1 argument: with nearest-AP association,
        # "each client's signal will be stronger at its respective AP
        # ... hence SIC is not needed to receive them".
        assert report.capture_fraction > 0.9

    def test_sic_rarely_feasible(self, report):
        assert report.sic_feasible_fraction < 0.1

    def test_mean_gain_negligible(self, report):
        assert report.mean_gain < 1.02

    def test_case_fractions_sum_to_one(self, report):
        assert sum(report.case_fractions.values()) == pytest.approx(1.0)

    def test_helper_alias(self, report):
        assert nearest_ap_capture_fraction(report) == \
            report.capture_fraction

    def test_deterministic(self):
        a = evaluate_ewlan_cross_pairs(n_grids=10, seed=3)
        b = evaluate_ewlan_cross_pairs(n_grids=10, seed=3)
        assert a == b

    def test_shadowing_erodes_capture(self):
        # With heavy shadowing the nearest AP is no longer always the
        # loudest, so capture drops below the no-shadowing level.
        clean = evaluate_ewlan_cross_pairs(n_grids=40, seed=5)
        shadowed = evaluate_ewlan_cross_pairs(
            n_grids=40, seed=5,
            propagation=LogDistancePathLoss(exponent=3.5,
                                            shadowing_sigma_db=8.0))
        assert shadowed.capture_fraction < clean.capture_fraction

    def test_rejects_bad_grid_count(self):
        with pytest.raises(ValueError):
            evaluate_ewlan_cross_pairs(n_grids=0)
