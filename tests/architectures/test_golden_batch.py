"""Golden parity: batched architecture sweeps vs frozen scalar refs.

The fast paths must reproduce the frozen ``*_scalar`` references bit
for bit — same RNG stream, same floating-point association — for any
seed, chunk size and worker count.  Dataclass equality compares every
field exactly (no tolerances anywhere in this file).
"""

import numpy as np
import pytest

from repro.architectures.ewlan import (
    evaluate_ewlan_cross_pairs,
    evaluate_ewlan_cross_pairs_scalar,
)
from repro.architectures.mesh import (
    sweep_chain_geometries,
    sweep_chain_geometries_scalar,
)
from repro.architectures.residential import (
    evaluate_residential_rows,
    evaluate_residential_rows_scalar,
)
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.shannon import Channel
from repro.sic.scenarios import CASE_ORDER
from repro.util.cache import ResultCache

#: Timing-free runs must not leak results between parametrisations.
NO_CACHE = ResultCache(None)


def assert_reports_identical(fast, scalar):
    assert fast == scalar
    # Dict equality ignores ordering; the batched reports additionally
    # promise deterministic Fig. 5 letter order.
    assert list(fast.case_fractions) == [case for case in CASE_ORDER
                                         if case in fast.case_fractions]


class TestEwlanGolden:
    @pytest.mark.parametrize("seed", [0, 7, 2010, 123456])
    def test_bit_identical_default_model(self, seed):
        fast = evaluate_ewlan_cross_pairs(n_grids=12, seed=seed,
                                          cache=NO_CACHE)
        scalar = evaluate_ewlan_cross_pairs_scalar(n_grids=12, seed=seed)
        assert_reports_identical(fast, scalar)

    def test_bit_identical_under_shadowing(self):
        shadowed = LogDistancePathLoss(exponent=3.5,
                                       shadowing_sigma_db=6.0)
        fast = evaluate_ewlan_cross_pairs(n_grids=10, propagation=shadowed,
                                          seed=3, cache=NO_CACHE)
        scalar = evaluate_ewlan_cross_pairs_scalar(
            n_grids=10, propagation=shadowed, seed=3)
        assert_reports_identical(fast, scalar)

    def test_bit_identical_off_default_geometry(self):
        fast = evaluate_ewlan_cross_pairs(
            n_grids=6, ap_rows=3, ap_cols=2, ap_spacing_m=25.0,
            clients_per_ap=3, seed=11, cache=NO_CACHE)
        scalar = evaluate_ewlan_cross_pairs_scalar(
            n_grids=6, ap_rows=3, ap_cols=2, ap_spacing_m=25.0,
            clients_per_ap=3, seed=11)
        assert_reports_identical(fast, scalar)

    @pytest.mark.parametrize("chunk_size", [1, 3, 7])
    def test_chunking_invariant(self, chunk_size):
        base = evaluate_ewlan_cross_pairs(n_grids=12, seed=5,
                                          cache=NO_CACHE)
        chunked = evaluate_ewlan_cross_pairs(n_grids=12, seed=5,
                                             chunk_size=chunk_size,
                                             cache=NO_CACHE)
        assert chunked == base

    def test_worker_count_invariant(self):
        base = evaluate_ewlan_cross_pairs(n_grids=12, seed=5,
                                          cache=NO_CACHE)
        parallel = evaluate_ewlan_cross_pairs(n_grids=12, seed=5,
                                              n_workers=2, cache=NO_CACHE)
        assert parallel == base

    def test_rows_are_deterministically_ordered(self):
        report = evaluate_ewlan_cross_pairs(n_grids=12, seed=5,
                                            cache=NO_CACHE)
        labels = [label for label, _ in report.rows()]
        case_labels = [lbl for lbl in labels if lbl.startswith("case_")]
        assert case_labels == sorted(case_labels)
        assert labels[:len(case_labels)] == case_labels
        assert labels[-2:] == ["sic_feasible", "mean_gain"]

    def test_validation_matches_scalar(self):
        with pytest.raises(ValueError, match="at least one grid"):
            evaluate_ewlan_cross_pairs(n_grids=0)
        with pytest.raises(ValueError, match="at least one grid"):
            evaluate_ewlan_cross_pairs_scalar(n_grids=0)


class TestResidentialGolden:
    @pytest.mark.parametrize("seed", [1, 42, 2010])
    def test_bit_identical_default_model(self, seed):
        fast = evaluate_residential_rows(n_rows=15, seed=seed,
                                         cache=NO_CACHE)
        scalar = evaluate_residential_rows_scalar(n_rows=15, seed=seed)
        assert_reports_identical(fast, scalar)

    def test_bit_identical_without_shadowing(self):
        clean = LogDistancePathLoss(exponent=3.5)
        fast = evaluate_residential_rows(n_rows=15, propagation=clean,
                                         seed=8, cache=NO_CACHE)
        scalar = evaluate_residential_rows_scalar(n_rows=15,
                                                  propagation=clean,
                                                  seed=8)
        assert_reports_identical(fast, scalar)

    def test_bit_identical_off_default_geometry(self):
        fast = evaluate_residential_rows(
            n_rows=10, n_homes=6, home_width_m=8.0, clients_per_home=3,
            seed=17, cache=NO_CACHE)
        scalar = evaluate_residential_rows_scalar(
            n_rows=10, n_homes=6, home_width_m=8.0, clients_per_home=3,
            seed=17)
        assert_reports_identical(fast, scalar)

    @pytest.mark.parametrize("chunk_size", [1, 5])
    def test_chunking_invariant(self, chunk_size):
        base = evaluate_residential_rows(n_rows=15, seed=9,
                                         cache=NO_CACHE)
        chunked = evaluate_residential_rows(n_rows=15, seed=9,
                                            chunk_size=chunk_size,
                                            cache=NO_CACHE)
        assert chunked == base

    def test_worker_count_invariant(self):
        base = evaluate_residential_rows(n_rows=15, seed=9,
                                         cache=NO_CACHE)
        parallel = evaluate_residential_rows(n_rows=15, seed=9,
                                             n_workers=2, cache=NO_CACHE)
        assert parallel == base

    def test_no_clients_matches_scalar_error(self):
        with pytest.raises(RuntimeError, match="no cross-home pairs"):
            evaluate_residential_rows(n_rows=3, clients_per_home=0,
                                      seed=1)
        with pytest.raises(RuntimeError, match="no cross-home pairs"):
            evaluate_residential_rows_scalar(n_rows=3, clients_per_home=0,
                                             seed=1)


class TestMeshGolden:
    def test_bit_identical_default_grid(self):
        channel = Channel()
        assert sweep_chain_geometries(channel) == \
            sweep_chain_geometries_scalar(channel)

    def test_bit_identical_custom_grid(self):
        channel = Channel()
        long_hops = (15.0, 35.0, 55.0, 75.0, 95.0)
        short_hops = tuple(np.linspace(1.5, 18.0, 7).tolist())
        fast = sweep_chain_geometries(channel, long_hops, short_hops)
        scalar = sweep_chain_geometries_scalar(channel, long_hops,
                                               short_hops)
        assert fast == scalar

    def test_empty_grid(self):
        assert sweep_chain_geometries(Channel(), (), ()) == []

    def test_validation_matches_scalar(self):
        channel = Channel()
        with pytest.raises(ValueError):
            sweep_chain_geometries(channel, (20.0,), (-1.0,))
        with pytest.raises(ValueError):
            sweep_chain_geometries_scalar(channel, (20.0,), (-1.0,))
        # Positive but below the minimum link distance: mesh_chain's
        # range check, replicated by the batched sweep.
        with pytest.raises(ValueError):
            sweep_chain_geometries(channel, (20.0,), (0.5,))
        with pytest.raises(ValueError):
            sweep_chain_geometries_scalar(channel, (20.0,), (0.5,))
