"""Residential architecture tests (paper Section 4.2)."""

import pytest

from repro.architectures.residential import (
    evaluate_residential_rows,
    residential_downlink_pairs,
)
from repro.phy.pathloss import LogDistancePathLoss
from repro.sic.scenarios import PairCase
from repro.topology.generators import residential_row
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def report():
    return evaluate_residential_rows(n_rows=150, seed=11)


class TestPairSampling:
    def test_one_pair_per_adjacent_home(self):
        rng = make_rng(1)
        topology = residential_row(4, 10.0, 2, rng=rng)
        propagation = LogDistancePathLoss(exponent=3.5)
        pairs = list(residential_downlink_pairs(topology, propagation,
                                                rng))
        assert len(pairs) == 3  # 4 homes -> 3 adjacent boundaries

    def test_rss_all_positive(self):
        rng = make_rng(2)
        topology = residential_row(3, 8.0, 2, rng=rng)
        propagation = LogDistancePathLoss(exponent=3.5)
        for rss in residential_downlink_pairs(topology, propagation, rng):
            assert min(rss.s11, rss.s12, rss.s21, rss.s22) > 0.0


class TestReport:
    def test_lock_creates_some_opportunities(self, report):
        # §4.2: "residential wireless LANs offer some opportunities for
        # SIC" — nonzero but a small minority.
        assert 0.0 < report.sic_feasible_fraction < 0.3

    def test_non_capture_cases_exist(self, report):
        non_capture = sum(frac for case, frac
                          in report.case_fractions.items()
                          if case is not PairCase.BOTH_CAPTURE)
        assert non_capture > 0.1

    def test_two_receiver_gains_negligible(self, report):
        # Even feasible pairs yield ~nothing under ideal rates — the
        # Fig. 6 conclusion applies to the residential setting too.
        assert report.gain_summary["frac_gain_over_10pct"] < 0.05

    def test_opportunity_alias(self, report):
        assert report.opportunity_fraction == \
            report.sic_feasible_fraction

    def test_deterministic(self):
        a = evaluate_residential_rows(n_rows=20, seed=9)
        b = evaluate_residential_rows(n_rows=20, seed=9)
        assert a == b

    def test_no_shadowing_fewer_opportunities(self):
        shadowed = evaluate_residential_rows(n_rows=80, seed=13)
        bare = evaluate_residential_rows(
            n_rows=80, seed=13,
            propagation=LogDistancePathLoss(exponent=3.5))
        assert bare.sic_feasible_fraction <= \
            shadowed.sic_feasible_fraction + 0.02

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            evaluate_residential_rows(n_rows=0)
