"""Mesh-chain architecture tests (paper Section 4.3)."""

import pytest

from repro.architectures.mesh import (
    analyse_chain,
    feasibility_frontier,
    sweep_chain_geometries,
)


class TestAnalyseChain:
    def test_long_short_long_enables_sic(self, channel):
        analysis = analyse_chain(channel, long_hop_m=40.0,
                                 short_hop_m=2.0)
        assert analysis.sic_feasible
        assert analysis.gain > 1.0

    def test_equalised_chain_breaks_sic(self, channel):
        analysis = analyse_chain(channel, long_hop_m=30.0,
                                 short_hop_m=30.0)
        assert not analysis.sic_feasible
        assert analysis.gain == pytest.approx(1.0)

    def test_sic_never_hurts(self, channel):
        for short in (2.0, 5.0, 10.0, 40.0):
            analysis = analyse_chain(channel, 40.0, short)
            assert analysis.throughput_sic_bps >= \
                analysis.throughput_serial_bps - 1e-9

    def test_bottleneck_is_a_long_hop(self, channel):
        analysis = analyse_chain(channel, long_hop_m=50.0,
                                 short_hop_m=2.0)
        # Long hops run slower than the short one, capping throughput.
        assert analysis.throughput_sic_bps < analysis.bottleneck_rate_bps

    def test_gain_bounded_by_pipeline_overlap(self, channel):
        # Overlapping two of three hops cannot triple throughput.
        analysis = analyse_chain(channel, 40.0, 2.0)
        assert analysis.gain < 3.0

    def test_rejects_bad_geometry(self, channel):
        with pytest.raises(ValueError):
            analyse_chain(channel, 0.0, 5.0)


class TestSweep:
    def test_covers_grid(self, channel):
        results = sweep_chain_geometries(channel,
                                         long_hops_m=(20.0, 40.0),
                                         short_hops_m=(2.0, 10.0))
        assert len(results) == 4

    def test_feasibility_frontier_monotone(self, channel):
        # Longer long-hops tolerate longer short-hops before the SIC
        # condition at C breaks.
        results = sweep_chain_geometries(
            channel,
            long_hops_m=(20.0, 30.0, 40.0, 60.0),
            short_hops_m=(2.0, 3.0, 5.0, 8.0, 12.0, 20.0))
        frontier = feasibility_frontier(results)
        values = [frontier[long_m] for long_m in (20.0, 30.0, 40.0, 60.0)]
        cleaned = [v for v in values if v is not None]
        assert cleaned == sorted(cleaned)

    def test_frontier_handles_all_infeasible(self, channel):
        results = sweep_chain_geometries(channel,
                                         long_hops_m=(10.0,),
                                         short_hops_m=(10.0,))
        frontier = feasibility_frontier(results)
        assert frontier[10.0] is None
