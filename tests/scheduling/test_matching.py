"""Blossom matching tests: brute-force and networkx oracles.

The matching is the load-bearing substrate of the scheduler, so it gets
the heaviest verification in the suite: exact comparison against an
exhaustive oracle on small random graphs (including hypothesis-driven
cases), against networkx on larger ones, and an LP-duality-style
optimality certificate for the perfect-matching wrapper.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.matching import (
    matching_cost,
    max_weight_matching,
    min_weight_perfect_matching,
)
from repro.scheduling.matching_scalar import (
    matching_cost_scalar,
    max_weight_matching_scalar,
    min_weight_perfect_matching_scalar,
)

networkx = pytest.importorskip("networkx")


def brute_force_max_weight(edges, n, maxcardinality):
    """Exhaustive maximum-weight matching value: (cardinality, weight)."""
    best = None
    for r in range(0, n // 2 + 1):
        for combo in itertools.combinations(range(len(edges)), r):
            used = set()
            weight = 0
            ok = True
            for k in combo:
                i, j, w = edges[k]
                if i in used or j in used:
                    ok = False
                    break
                used.update((i, j))
                weight += w
            if ok:
                key = (r, weight) if maxcardinality else (0, weight)
                if best is None or key > best:
                    best = key
    return best


def matching_value(edges, mate, maxcardinality):
    weight = sum(w for (i, j, w) in edges if mate[i] == j)
    cardinality = sum(1 for v in range(len(mate)) if mate[v] >= 0) // 2
    return (cardinality, weight) if maxcardinality else (0, weight)


class TestMaxWeightBasics:
    def test_empty(self):
        assert max_weight_matching([]) == []

    def test_single_edge(self):
        assert max_weight_matching([(0, 1, 5)]) == [1, 0]

    def test_negative_edge_unused(self):
        assert max_weight_matching([(0, 1, -5)]) == [-1, -1]

    def test_negative_edge_used_for_cardinality(self):
        mate = max_weight_matching([(0, 1, -5)], maxcardinality=True)
        assert mate == [1, 0]

    def test_path_prefers_heavy_middle(self):
        # 0-1 (2), 1-2 (5), 2-3 (2): max weight picks the two ends? No:
        # ends sum to 4 < 5, so the middle edge alone wins weight-wise.
        mate = max_weight_matching([(0, 1, 2), (1, 2, 5), (2, 3, 2)])
        assert mate[1] == 2 and mate[2] == 1

    def test_path_maxcardinality_forced_to_ends(self):
        mate = max_weight_matching([(0, 1, 2), (1, 2, 5), (2, 3, 2)],
                                   maxcardinality=True)
        assert mate == [1, 0, 3, 2]

    def test_triangle_blossom(self):
        # Odd cycle: only one edge can be used.
        mate = max_weight_matching([(0, 1, 6), (1, 2, 5), (0, 2, 4)])
        assert mate[0] == 1 and mate[1] == 0 and mate[2] == -1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            max_weight_matching([(1, 1, 3)])

    def test_rejects_negative_vertex(self):
        with pytest.raises(ValueError):
            max_weight_matching([(-1, 2, 3)])

    def test_known_blossom_case(self):
        # Classic nasty case from the literature: needs a blossom to
        # find the optimum.
        edges = [(1, 2, 9), (1, 3, 9), (2, 3, 10), (2, 4, 8), (3, 5, 8),
                 (4, 5, 10), (5, 6, 6)]
        mate = max_weight_matching(edges)
        assert mate[1:] == [3, 4, 1, 2, 6, 5]

    def test_known_s_blossom_relabel_case(self):
        edges = [(1, 2, 10), (1, 7, 10), (2, 3, 12), (3, 4, 20),
                 (3, 5, 20), (4, 5, 25), (5, 6, 10), (6, 7, 10),
                 (7, 8, 8)]
        mate = max_weight_matching(edges)
        assert mate[1:] == [2, 1, 4, 3, 6, 5, 8, 7]

    def test_known_nested_blossom_case(self):
        # Create nested S-blossom, augment, expand recursively.
        edges = [(1, 2, 40), (1, 3, 40), (2, 3, 60), (2, 4, 55),
                 (3, 5, 55), (4, 5, 50), (1, 8, 15), (5, 7, 30),
                 (7, 6, 10), (8, 10, 10), (4, 9, 30)]
        mate = max_weight_matching(edges)
        assert mate[1:] == [2, 1, 5, 9, 3, 7, 6, 10, 4, 8]


class TestAgainstBruteForce:
    def test_randomised_sweep(self):
        rng = random.Random(0)
        for trial in range(150):
            n = rng.randint(2, 7)
            pairs = list(itertools.combinations(range(n), 2))
            rng.shuffle(pairs)
            pairs = pairs[:rng.randint(1, len(pairs))]
            edges = [(i, j, rng.randint(-5, 20)) for (i, j) in pairs]
            for maxcard in (False, True):
                mate = max_weight_matching(edges, maxcard)
                assert matching_value(edges, mate, maxcard) == \
                    brute_force_max_weight(edges, n, maxcard), \
                    (trial, maxcard, edges, mate)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.integers(-10, 30)),
                    min_size=1, max_size=10),
           st.booleans())
    def test_hypothesis_graphs(self, raw_edges, maxcard):
        edges = {}
        for (a, b, w) in raw_edges:
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            edges[key] = w  # last one wins: unique edge per pair
        edges = [(i, j, w) for (i, j), w in edges.items()]
        if not edges:
            return
        n = max(max(i, j) for (i, j, _) in edges) + 1
        mate = max_weight_matching(edges, maxcard)
        assert matching_value(edges, mate, maxcard) == \
            brute_force_max_weight(edges, n, maxcard)


class TestAgainstNetworkx:
    def test_max_weight_on_random_graphs(self):
        rng = random.Random(1)
        for _ in range(25):
            n = rng.randint(4, 14)
            graph = networkx.gnm_random_graph(
                n, rng.randint(n, n * (n - 1) // 2), seed=rng.randint(0, 9999))
            edges = [(u, v, rng.randint(1, 100))
                     for (u, v) in graph.edges()]
            if not edges:
                continue
            nx_graph = networkx.Graph()
            nx_graph.add_weighted_edges_from(edges)
            ours = max_weight_matching(edges)
            ours_weight = sum(w for (i, j, w) in edges if ours[i] == j)
            theirs = networkx.max_weight_matching(nx_graph)
            weights = {(min(u, v), max(u, v)): w for (u, v, w) in edges}
            theirs_weight = sum(weights[(min(u, v), max(u, v))]
                                for (u, v) in theirs)
            assert ours_weight == theirs_weight

    def test_min_weight_perfect_on_complete_graphs(self):
        rng = random.Random(2)
        for _ in range(15):
            n = rng.choice([4, 6, 8, 10, 12])
            costs = {(i, j): rng.uniform(0.5, 50.0)
                     for i, j in itertools.combinations(range(n), 2)}
            ours = matching_cost(min_weight_perfect_matching(costs, n),
                                 costs)
            nx_graph = networkx.Graph()
            for (i, j), c in costs.items():
                nx_graph.add_edge(i, j, weight=c)
            theirs_edges = networkx.min_weight_matching(nx_graph)
            theirs = sum(costs[(min(u, v), max(u, v))]
                         for (u, v) in theirs_edges)
            assert ours == pytest.approx(theirs, rel=1e-9)


class TestMinWeightPerfect:
    def test_two_vertices(self):
        assert min_weight_perfect_matching({(0, 1): 3.0}, 2) == {(0, 1)}

    def test_empty(self):
        assert min_weight_perfect_matching({}, 0) == set()

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            min_weight_perfect_matching({(0, 1): 1.0}, 3)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            min_weight_perfect_matching({(0, 1): -1.0}, 2)

    def test_bad_pair_rejected(self):
        with pytest.raises(ValueError):
            min_weight_perfect_matching({(1, 0): 1.0}, 2)

    def test_no_perfect_matching_detected(self):
        # A star on 4 vertices has no perfect matching.
        costs = {(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0}
        with pytest.raises(ValueError, match="perfect"):
            min_weight_perfect_matching(costs, 4)

    def test_every_vertex_covered(self):
        rng = random.Random(3)
        n = 10
        costs = {(i, j): rng.uniform(1, 9)
                 for i, j in itertools.combinations(range(n), 2)}
        matching = min_weight_perfect_matching(costs, n)
        covered = sorted(v for pair in matching for v in pair)
        assert covered == list(range(n))

    def test_prefers_cheap_pairs(self):
        costs = {(0, 1): 1.0, (2, 3): 1.0,
                 (0, 2): 100.0, (1, 3): 100.0,
                 (0, 3): 100.0, (1, 2): 100.0}
        assert min_weight_perfect_matching(costs, 4) == {(0, 1), (2, 3)}

    def test_float_ties_handled(self):
        costs = {(0, 1): 0.1 + 0.2, (2, 3): 0.3,
                 (0, 2): 0.3, (1, 3): 0.3,
                 (0, 3): 0.6, (1, 2): 0.6}
        matching = min_weight_perfect_matching(costs, 4)
        assert matching_cost(matching, costs) == pytest.approx(0.6)

    def test_tiny_cost_scale(self):
        # Airtimes are ~1e-4 s; the quantisation grid must cope.
        costs = {(0, 1): 1.1e-4, (2, 3): 0.9e-4,
                 (0, 2): 2.5e-4, (1, 3): 2.6e-4,
                 (0, 3): 2.4e-4, (1, 2): 2.45e-4}
        matching = min_weight_perfect_matching(costs, 4)
        assert matching == {(0, 1), (2, 3)}

    def test_all_zero_costs(self):
        costs = {(i, j): 0.0 for i, j in itertools.combinations(range(4), 2)}
        matching = min_weight_perfect_matching(costs, 4)
        assert len(matching) == 2

    def test_unmatched_vertices_named_in_error(self):
        # A star on 4 vertices: only one edge fits, stranding two
        # leaves.  The error must name the stranded vertices so
        # scheduler bugs are debuggable.
        costs = {(0, 1): 1.0, (0, 2): 2.0, (0, 3): 3.0}
        with pytest.raises(ValueError, match=r"vertices \[2, 3\] left "
                                             r"unmatched"):
            min_weight_perfect_matching(costs, 4)


class TestSmallCompleteShortcut:
    """Complete graphs on 2/4/6 vertices skip the blossom and enumerate
    their perfect matchings; the answer must be indistinguishable from
    the blossom path — including falling back to it on quantised ties
    rather than second-guessing its tie-break."""

    def test_enumeration_counts(self):
        from repro.scheduling.matching import _SMALL_PERFECT_MATCHINGS
        assert {n: len(m) for n, m in _SMALL_PERFECT_MATCHINGS.items()} \
            == {2: 1, 4: 3, 6: 15}

    def test_enumeration_is_perfect_and_distinct(self):
        from repro.scheduling.matching import _SMALL_PERFECT_MATCHINGS
        for n, matchings in _SMALL_PERFECT_MATCHINGS.items():
            assert len({frozenset(m) for m in matchings}) == len(matchings)
            for matching in matchings:
                covered = sorted(v for pair in matching for v in pair)
                assert covered == list(range(n))
                assert all(i < j for (i, j) in matching)

    def test_shortcut_agrees_with_scalar_blossom(self):
        from repro.scheduling.matching import (
            _SMALL_PERFECT_MATCHINGS,
            _small_complete_matching,
        )
        rng = random.Random(17)
        for _ in range(200):
            n = rng.choice([2, 4, 6])
            costs = {(i, j): rng.uniform(1e-5, 5e-4)
                     for i, j in itertools.combinations(range(n), 2)}
            small = _small_complete_matching(
                costs, n, _SMALL_PERFECT_MATCHINGS[n])
            if small is not None:
                assert small == min_weight_perfect_matching_scalar(costs, n)

    def test_tie_defers_to_blossom(self):
        from repro.scheduling.matching import (
            _SMALL_PERFECT_MATCHINGS,
            _small_complete_matching,
        )
        # All-equal costs: every matching totals the same, so the
        # shortcut must decline and let the blossom break the tie.
        costs = {(i, j): 2.5e-4
                 for i, j in itertools.combinations(range(4), 2)}
        assert _small_complete_matching(
            costs, 4, _SMALL_PERFECT_MATCHINGS[4]) is None
        assert min_weight_perfect_matching(costs, 4) == \
            min_weight_perfect_matching_scalar(costs, 4)

    def test_structural_tie_serial_dominates(self):
        # The trace scheduler's common tie: when SIC never wins, every
        # pair cost is the sum of the solos, so ALL matchings tie and
        # the blossom's tie-break is authoritative.
        solos = [1.0e-4, 2.0e-4, 3.0e-4, 4.0e-4]
        costs = {(i, j): solos[i] + solos[j]
                 for i, j in itertools.combinations(range(4), 2)}
        assert min_weight_perfect_matching(costs, 4) == \
            min_weight_perfect_matching_scalar(costs, 4)

    def test_incomplete_graph_skips_shortcut(self):
        # A star on 4 vertices is not complete, so the length gate must
        # route it to the blossom, which reports the stranded vertices.
        costs = {(0, 1): 1.0, (0, 2): 2.0, (0, 3): 3.0}
        with pytest.raises(ValueError, match="perfect"):
            min_weight_perfect_matching(costs, 4)

    def test_validation_matches_blossom_path(self):
        from repro.scheduling.matching import (
            _SMALL_PERFECT_MATCHINGS,
            _small_complete_matching,
        )
        bad_pair = {(1, 0): 1.0}
        with pytest.raises(ValueError, match="bad pair"):
            _small_complete_matching(bad_pair, 2, _SMALL_PERFECT_MATCHINGS[2])
        negative = {(0, 1): -1.0}
        with pytest.raises(ValueError, match="non-negative"):
            _small_complete_matching(negative, 2, _SMALL_PERFECT_MATCHINGS[2])

    def test_small_sizes_end_to_end_match_scalar(self):
        rng = random.Random(23)
        for _ in range(120):
            n = rng.choice([2, 4, 6])
            costs = {(i, j): rng.uniform(1e-5, 5e-4)
                     for i, j in itertools.combinations(range(n), 2)}
            assert min_weight_perfect_matching(costs, n) == \
                min_weight_perfect_matching_scalar(costs, n)


class TestScalarGoldenEquivalence:
    """The array-accelerated blossom must reproduce the frozen scalar
    reference EXACTLY — same mate arrays, same chosen pairs — on every
    graph shape (PR-1 convention).  Any divergence means the numpy dual
    bookkeeping broke the algorithm, not just slowed it down."""

    def random_edges(self, rng, n, density, int_weights):
        edges = []
        for i, j in itertools.combinations(range(n), 2):
            if rng.random() < density:
                w = (rng.randint(-20, 60) if int_weights
                     else rng.uniform(-2.0, 6.0))
                edges.append((i, j, w))
        return edges

    @pytest.mark.parametrize("int_weights", [True, False],
                             ids=["int", "float"])
    @pytest.mark.parametrize("maxcardinality", [False, True])
    def test_random_graphs_identical_mates(self, int_weights,
                                           maxcardinality):
        rng = random.Random(20100406 + int_weights + 2 * maxcardinality)
        for trial in range(150):
            n = rng.randint(2, 13)
            edges = self.random_edges(rng, n, rng.uniform(0.2, 1.0),
                                      int_weights)
            fast = max_weight_matching(edges, maxcardinality=maxcardinality)
            ref = max_weight_matching_scalar(
                edges, maxcardinality=maxcardinality)
            assert fast == ref, f"trial={trial} edges={edges}"

    def test_debug_asserts_hold_on_random_graphs(self):
        rng = random.Random(7)
        for _ in range(25):
            n = rng.randint(2, 10)
            edges = self.random_edges(rng, n, 0.7, int_weights=False)
            fast = max_weight_matching(edges, maxcardinality=True,
                                       debug=True)
            ref = max_weight_matching_scalar(edges, maxcardinality=True)
            assert fast == ref

    def test_known_blossom_cases_identical(self):
        cases = [
            [(1, 2, 9), (1, 3, 8), (2, 3, 10), (3, 4, 7)],
            [(1, 2, 9), (1, 3, 8), (2, 3, 10), (3, 4, 7), (1, 6, 5),
             (4, 5, 6)],
            [(1, 2, 10), (1, 7, 10), (2, 3, 12), (3, 4, 20), (3, 5, 20),
             (4, 5, 25), (5, 6, 10), (6, 7, 10), (7, 8, 8)],
        ]
        for edges in cases:
            for maxcard in (False, True):
                assert max_weight_matching(edges, maxcardinality=maxcard) \
                    == max_weight_matching_scalar(
                        edges, maxcardinality=maxcard)

    def test_min_weight_perfect_identical_on_complete_graphs(self):
        rng = random.Random(11)
        for _ in range(40):
            n = rng.choice([2, 4, 6, 8, 10, 12])
            costs = {(i, j): rng.uniform(0.0, 5.0)
                     for i, j in itertools.combinations(range(n), 2)}
            assert min_weight_perfect_matching(costs, n) == \
                min_weight_perfect_matching_scalar(costs, n)

    def test_min_weight_perfect_identical_with_dummy_vertex(self):
        # The scheduler's odd-backlog shape: a complete graph over the
        # clients plus a dummy vertex joined to everyone by solo costs.
        rng = random.Random(13)
        for _ in range(40):
            n = rng.choice([3, 5, 7, 9, 11])
            costs = {(i, j): rng.uniform(1e-5, 5e-4)
                     for i, j in itertools.combinations(range(n), 2)}
            for i in range(n):
                costs[(i, n)] = rng.uniform(1e-5, 5e-4)
            assert min_weight_perfect_matching(costs, n + 1) == \
                min_weight_perfect_matching_scalar(costs, n + 1)

    def test_huge_weights_take_float_fallback_identically(self):
        # Beyond the int64-safe ceiling both implementations must drop
        # to float arithmetic and still agree.
        big = 2.0 ** 61
        edges = [(0, 1, big), (1, 2, big * 1.5), (2, 3, big),
                 (0, 3, big * 0.5), (0, 2, big * 1.25)]
        for maxcard in (False, True):
            assert max_weight_matching(edges, maxcardinality=maxcard) == \
                max_weight_matching_scalar(edges, maxcardinality=maxcard)

    def test_matching_cost_identical_to_scalar(self):
        # matching_cost accumulates in sorted pair order while the
        # frozen scalar keeps hash order, so use exactly-summable
        # costs (multiples of 2^-4): any order gives the same bits,
        # and a behavioural change in either twin still shows up.
        rng = random.Random(42)
        for _ in range(50):
            n = rng.choice([4, 6, 8, 10])
            costs = {(i, j): rng.randint(1, 512) / 16.0
                     for i, j in itertools.combinations(range(n), 2)}
            matching = min_weight_perfect_matching(costs, n)
            fast = matching_cost(matching, costs)
            ref = matching_cost_scalar(matching, costs)
            assert fast == ref
            # Reversed pairs must resolve through the same (i < j) key
            # normalisation in both twins.
            flipped = {(j, i) for (i, j) in matching}
            assert matching_cost(flipped, costs) == \
                matching_cost_scalar(flipped, costs) == ref
