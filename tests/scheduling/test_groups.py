"""Group-scheduling extension tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.scheduling.groups import (
    GroupSchedule,
    GroupSlot,
    exhaustive_group_schedule,
    greedy_group_schedule,
    group_airtime,
)
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sic.ksic import equal_rate_group_powers

rss_values = st.floats(min_value=1e-13, max_value=1e-6)


def make_clients(rss_list):
    return [UploadClient(f"C{i + 1}", rss) for i, rss in enumerate(rss_list)]


class TestGroupAirtime:
    def test_empty(self, channel):
        assert group_airtime(channel, 12_000.0, []) == (0.0, False)

    def test_single_is_solo(self, channel):
        time, used_sic = group_airtime(channel, 12_000.0, [1e-9])
        assert not used_sic
        assert time == pytest.approx(12_000.0 / channel.rate(1e-9))

    def test_never_worse_than_serial(self, channel, rng):
        for _ in range(20):
            rss = list(10 ** rng.uniform(-12, -8, size=4))
            time, _ = group_airtime(channel, 12_000.0, rss)
            serial = sum(12_000.0 / channel.rate(r) for r in rss)
            assert time <= serial + 1e-12

    def test_equal_rate_ladder_uses_sic(self, channel):
        powers = equal_rate_group_powers(channel, 3, 10.0)
        time, used_sic = group_airtime(channel, 12_000.0, powers)
        assert used_sic


class TestGreedy:
    def test_all_clients_covered_once(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=9))
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        names = [n for slot in schedule.slots for n in slot.clients]
        assert sorted(names) == sorted(c.name for c in clients)

    def test_group_size_respected(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=10))
        for k in (1, 2, 4):
            schedule = greedy_group_schedule(channel, clients,
                                             max_group_size=k)
            assert max(len(s.clients) for s in schedule.slots) <= k

    def test_k1_is_serial(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=5))
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=1)
        assert schedule.gain == pytest.approx(1.0)

    def test_gain_at_least_one(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-13, -7, size=8))
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        assert schedule.gain >= 1.0 - 1e-12

    def test_bigger_groups_never_hurt(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12.5, -8, size=10))
        times = [greedy_group_schedule(channel, clients,
                                       max_group_size=k).total_time_s
                 for k in (1, 2, 3)]
        # Greedy is a heuristic, but k=1 (serial) must never win.
        assert times[1] <= times[0] + 1e-12
        assert times[2] <= times[0] + 1e-12

    def test_duplicate_names_rejected(self, channel):
        clients = [UploadClient("X", 1e-9), UploadClient("X", 1e-10)]
        with pytest.raises(ValueError, match="unique"):
            greedy_group_schedule(channel, clients)

    def test_bad_group_size_rejected(self, channel):
        with pytest.raises(ValueError):
            greedy_group_schedule(channel, make_clients([1e-9]),
                                  max_group_size=0)

    def test_equal_rate_ladder_grouped_together(self, channel):
        powers = equal_rate_group_powers(channel, 3, 10.0)
        clients = make_clients(powers)
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=3)
        assert len(schedule.slots) == 1
        assert schedule.slots[0].used_sic
        assert schedule.gain > 1.5

    def test_str_rendering(self, channel):
        clients = make_clients([1e-9, 1e-11])
        text = str(greedy_group_schedule(channel, clients))
        assert "group schedule" in text


class TestExhaustive:
    def test_refuses_large_instances(self, channel):
        clients = make_clients([1e-9] * 10)
        with pytest.raises(ValueError, match="exhaustive"):
            exhaustive_group_schedule(channel, clients)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(rss_values, min_size=1, max_size=6))
    def test_greedy_never_beats_exhaustive(self, rss_list):
        channel = Channel()
        clients = make_clients(rss_list)
        greedy = greedy_group_schedule(channel, clients,
                                       max_group_size=3)
        optimal = exhaustive_group_schedule(channel, clients,
                                            max_group_size=3)
        assert greedy.total_time_s >= optimal.total_time_s - 1e-12

    def test_k2_exhaustive_matches_blossom(self, channel, rng):
        # Groups capped at 2 with plain SIC costs == the paper's
        # matching problem; exhaustive grouping must tie the blossom
        # scheduler.
        clients = make_clients(10 ** rng.uniform(-12, -8, size=6))
        grouped = exhaustive_group_schedule(channel, clients,
                                            max_group_size=2)
        blossom = SicScheduler(channel=channel).schedule(clients)
        assert grouped.total_time_s == pytest.approx(
            blossom.total_time_s, rel=1e-9)

    def test_k3_at_least_as_good_as_k2(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=7))
        k2 = exhaustive_group_schedule(channel, clients, max_group_size=2)
        k3 = exhaustive_group_schedule(channel, clients, max_group_size=3)
        assert k3.total_time_s <= k2.total_time_s + 1e-12


class TestDataShapes:
    def test_schedule_total_and_gain(self):
        schedule = GroupSchedule(
            slots=(GroupSlot(("a", "b"), 2.0, True),
                   GroupSlot(("c",), 1.0, False)),
            serial_time_s=6.0)
        assert schedule.total_time_s == 3.0
        assert schedule.gain == 2.0
