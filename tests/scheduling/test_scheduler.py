"""SIC-aware scheduler tests (paper Section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.scheduling.baselines import brute_force_schedule
from repro.scheduling.scheduler import (
    Schedule,
    ScheduledSlot,
    SicScheduler,
    UploadClient,
)
from repro.techniques.pairing import PairMode, TechniqueSet

rss_values = st.floats(min_value=1e-13, max_value=1e-6)


def make_clients(rss_list):
    return [UploadClient(f"C{i + 1}", rss) for i, rss in enumerate(rss_list)]


@pytest.fixture
def scheduler(channel):
    return SicScheduler(channel=channel, techniques=TechniqueSet.ALL)


class TestUploadClient:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            UploadClient("", 1e-9)

    def test_rejects_bad_rss(self):
        with pytest.raises(ValueError):
            UploadClient("c", 0.0)


class TestScheduleBasics:
    def test_empty_backlog(self, scheduler):
        schedule = scheduler.schedule([])
        assert schedule.slots == ()
        assert schedule.total_time_s == 0.0
        assert schedule.gain == 1.0

    def test_single_client_goes_solo(self, scheduler):
        clients = make_clients([1e-9])
        schedule = scheduler.schedule(clients)
        assert len(schedule.slots) == 1
        assert schedule.slots[0].clients == ("C1",)
        assert schedule.slots[0].mode is PairMode.SERIAL
        assert schedule.gain == 1.0

    def test_duplicate_names_rejected(self, scheduler):
        clients = [UploadClient("X", 1e-9), UploadClient("X", 1e-10)]
        with pytest.raises(ValueError, match="unique"):
            scheduler.schedule(clients)

    def test_every_client_scheduled_once(self, scheduler, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=9))
        schedule = scheduler.schedule(clients)
        assert sorted(schedule.client_names) == sorted(
            c.name for c in clients)

    def test_odd_count_has_exactly_one_solo(self, scheduler, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=7))
        schedule = scheduler.schedule(clients)
        solos = [s for s in schedule.slots if not s.is_pair]
        assert len(solos) == 1

    def test_even_count_all_pairs(self, scheduler, rng):
        # Pair costs never exceed serial, so a perfect matching on an
        # even count never leaves anyone solo.
        clients = make_clients(10 ** rng.uniform(-12, -8, size=8))
        schedule = scheduler.schedule(clients)
        assert all(s.is_pair for s in schedule.slots)

    def test_gain_at_least_one(self, scheduler, rng):
        for _ in range(10):
            clients = make_clients(10 ** rng.uniform(-13, -7, size=6))
            assert scheduler.schedule(clients).gain >= 1.0 - 1e-12

    def test_str_rendering(self, scheduler):
        schedule = scheduler.schedule(make_clients([1e-9, 1e-11]))
        text = str(schedule)
        assert "gain" in text and "C1" in text


class TestOptimality:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(rss_values, min_size=2, max_size=6))
    def test_matches_brute_force(self, rss_list):
        scheduler = SicScheduler(channel=Channel(),
                                 techniques=TechniqueSet.ALL)
        clients = make_clients(rss_list)
        optimal = scheduler.schedule(clients)
        brute = brute_force_schedule(scheduler, clients)
        assert optimal.total_time_s == pytest.approx(
            brute.total_time_s, rel=1e-9)

    def test_no_sic_scheduler_is_serial(self, channel, rng):
        scheduler = SicScheduler(channel=channel, sic_enabled=False)
        clients = make_clients(10 ** rng.uniform(-12, -8, size=6))
        schedule = scheduler.schedule(clients)
        assert schedule.total_time_s == pytest.approx(
            scheduler.serial_time(clients))
        assert schedule.gain == pytest.approx(1.0)

    def test_techniques_never_hurt_schedule(self, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=8))
        plain = SicScheduler(channel=channel).schedule(clients)
        full = SicScheduler(channel=channel,
                            techniques=TechniqueSet.ALL).schedule(clients)
        assert full.total_time_s <= plain.total_time_s + 1e-12


class TestCostGraph:
    def test_even_count_no_dummy(self, scheduler):
        clients = make_clients([1e-9, 1e-10, 1e-11, 1e-12])
        costs, dummy = scheduler.build_cost_graph(clients)
        assert dummy is None
        assert len(costs) == 6

    def test_odd_count_dummy_edges(self, scheduler):
        clients = make_clients([1e-9, 1e-10, 1e-11])
        costs, dummy = scheduler.build_cost_graph(clients)
        assert dummy == 3
        # 3 pair edges + 3 dummy edges.
        assert len(costs) == 6
        for i, client in enumerate(clients):
            assert costs[(i, dummy)] == pytest.approx(
                scheduler.solo_cost(client))

    def test_pair_cost_symmetric_in_clients(self, scheduler):
        a, b = UploadClient("a", 1e-9), UploadClient("b", 1e-11)
        assert scheduler.pair_cost(a, b).airtime_s == pytest.approx(
            scheduler.pair_cost(b, a).airtime_s)


class TestFastPathGoldenEquivalence:
    """The vectorised pipeline must reproduce the frozen scalar pipeline
    exactly (PR-1 convention): same cost graphs, same schedules, bit for
    bit — not approximately."""

    def random_backlog(self, rng, n, channel):
        snrs_db = rng.uniform(3.0, 45.0, size=n)
        return make_clients([
            float(10.0 ** (snr / 10.0)) * channel.noise_w
            for snr in snrs_db])

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 15, 16, 33])
    def test_cost_graph_bit_identical(self, scheduler, channel, rng, n):
        clients = self.random_backlog(rng, n, channel)
        fast_costs, fast_dummy = scheduler.build_cost_graph(clients)
        ref_costs, ref_dummy = scheduler.build_cost_graph_scalar(clients)
        assert fast_dummy == ref_dummy
        assert fast_costs == ref_costs  # exact float equality

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13, 21, 34])
    def test_schedule_bit_identical(self, scheduler, channel, rng, n):
        clients = self.random_backlog(rng, n, channel)
        fast = scheduler.schedule(clients)
        ref = scheduler.schedule_scalar(clients)
        assert fast.to_dict() == ref.to_dict()

    def test_schedule_bit_identical_many_seeds(self, scheduler, channel):
        import numpy as np
        for seed in range(10):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(2, 20))
            clients = self.random_backlog(rng, n, channel)
            fast = scheduler.schedule(clients)
            ref = scheduler.schedule_scalar(clients)
            assert fast.to_dict() == ref.to_dict(), f"seed={seed} n={n}"

    def test_no_sic_and_reduced_techniques_agree(self, channel, rng):
        for techniques in (TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
                           TechniqueSet.MULTIRATE):
            for sic_enabled in (True, False):
                sched = SicScheduler(channel=channel, techniques=techniques,
                                     sic_enabled=sic_enabled)
                clients = self.random_backlog(rng, 9, channel)
                assert sched.schedule(clients).to_dict() == \
                    sched.schedule_scalar(clients).to_dict()

    def test_degenerate_backlogs_agree(self, scheduler):
        for clients in ([], make_clients([1e-9]),
                        make_clients([1e-9, 1e-9]),
                        make_clients([1e-9] * 5)):
            assert scheduler.schedule(clients).to_dict() == \
                scheduler.schedule_scalar(clients).to_dict()

    def test_phase_timer_covers_all_three_phases(self, scheduler):
        from repro.util.timing import PhaseTimer
        timer = PhaseTimer()
        scheduler.schedule(make_clients([1e-9, 1e-10, 1e-11, 1e-12]),
                           timer=timer)
        assert list(timer.phases) == ["cost_build", "matching", "assembly"]
        assert all(t >= 0.0 for t in timer.phases.values())
        assert timer.count("matching") == 1

    def test_timer_is_optional(self, scheduler):
        clients = make_clients([1e-9, 1e-10])
        assert scheduler.schedule(clients) == \
            scheduler.schedule(clients, timer=None)


class TestPrecomputedCosts:
    """``precompute_costs`` batches the technique-independent arrays;
    every consumer (``schedule``, ``schedule_gain``, ``build_cost_graph``)
    must produce the exact same floats with and without it."""

    def random_backlog(self, rng, n, channel):
        snrs_db = rng.uniform(3.0, 45.0, size=n)
        return make_clients([
            float(10.0 ** (snr / 10.0)) * channel.noise_w
            for snr in snrs_db])

    def test_fields_match_scalar_costs(self, scheduler, channel, rng):
        clients = self.random_backlog(rng, 9, channel)
        pre = scheduler.precompute_costs(clients)
        assert pre.names == tuple(c.name for c in clients)
        assert pre.rss_w.tolist() == [c.rss_w for c in clients]
        for i, client in enumerate(clients):
            assert pre.solo_airtime_s[i] == scheduler.solo_cost(client)
        assert pre.serial_time_s == scheduler.serial_time(clients)

    def test_cost_graph_identical_with_precompute(self, scheduler, channel,
                                                  rng):
        for n in (2, 3, 7, 12):
            clients = self.random_backlog(rng, n, channel)
            pre = scheduler.precompute_costs(clients)
            assert scheduler.build_cost_graph(clients, precomputed=pre) == \
                scheduler.build_cost_graph(clients)

    def test_schedule_identical_with_precompute(self, scheduler, channel,
                                                rng):
        for n in (2, 5, 8, 13):
            clients = self.random_backlog(rng, n, channel)
            pre = scheduler.precompute_costs(clients)
            assert scheduler.schedule(clients, precomputed=pre).to_dict() \
                == scheduler.schedule(clients).to_dict()

    def test_schedule_gain_equals_full_schedule(self, channel, rng):
        for techniques in (TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
                           TechniqueSet.MULTIRATE, TechniqueSet.ALL):
            sched = SicScheduler(channel=channel, techniques=techniques)
            for n in (1, 2, 3, 5, 8, 13):
                clients = self.random_backlog(rng, n, channel)
                # Exact float equality, not approx: the gain path must
                # accumulate the same floats in the same order.
                assert sched.schedule_gain(clients) == \
                    sched.schedule(clients).gain

    def test_schedule_gain_with_precompute_and_cost_graph(self, scheduler,
                                                          channel, rng):
        for n in (2, 4, 7, 11):
            clients = self.random_backlog(rng, n, channel)
            pre = scheduler.precompute_costs(clients)
            graph = scheduler.build_cost_graph(clients, precomputed=pre)
            ref = scheduler.schedule(clients).gain
            assert scheduler.schedule_gain(clients, precomputed=pre) == ref
            assert scheduler.schedule_gain(clients, precomputed=pre,
                                           cost_graph=graph) == ref

    def test_precompute_shared_across_technique_sets(self, channel, rng):
        # The arrays depend only on (channel, packet_bits), so ONE
        # precompute must serve all three Fig. 13 technique sets.
        clients = self.random_backlog(rng, 8, channel)
        pre = SicScheduler(channel=channel).precompute_costs(clients)
        for techniques in (TechniqueSet.NONE, TechniqueSet.POWER_CONTROL,
                           TechniqueSet.MULTIRATE):
            sched = SicScheduler(channel=channel, techniques=techniques)
            assert sched.schedule(clients, precomputed=pre).to_dict() == \
                sched.schedule(clients).to_dict()

    def test_degenerate_backlogs(self, scheduler):
        assert scheduler.schedule_gain([]) == 1.0
        assert scheduler.schedule_gain(make_clients([1e-9])) == 1.0

    def test_mismatched_precompute_rejected(self, scheduler, channel, rng):
        clients = self.random_backlog(rng, 4, channel)
        other = self.random_backlog(rng, 5, channel)
        pre = scheduler.precompute_costs(other)
        with pytest.raises(ValueError, match="precomputed"):
            scheduler.schedule(clients, precomputed=pre)
        with pytest.raises(ValueError, match="precomputed"):
            scheduler.schedule_gain(clients, precomputed=pre)

    def test_duplicate_names_rejected_by_gain_path(self, scheduler):
        clients = [UploadClient("X", 1e-9), UploadClient("X", 1e-10)]
        with pytest.raises(ValueError, match="unique"):
            scheduler.schedule_gain(clients)


class TestPairingToSchedule:
    def test_explicit_pairing(self, scheduler):
        clients = make_clients([1e-9, 1e-10, 1e-11])
        schedule = scheduler.pairing_to_schedule(clients, [(0, 2)], [1])
        assert len(schedule.slots) == 2
        assert schedule.slots[0].clients == ("C1", "C3")

    def test_incomplete_cover_rejected(self, scheduler):
        clients = make_clients([1e-9, 1e-10, 1e-11])
        with pytest.raises(ValueError, match="exactly once"):
            scheduler.pairing_to_schedule(clients, [(0, 1)], [])

    def test_double_cover_rejected(self, scheduler):
        clients = make_clients([1e-9, 1e-10])
        with pytest.raises(ValueError, match="exactly once"):
            scheduler.pairing_to_schedule(clients, [(0, 1)], [0])


class TestScheduledSlot:
    def test_is_pair(self):
        pair = ScheduledSlot(("a", "b"), 1.0, PairMode.SIC)
        solo = ScheduledSlot(("a",), 1.0, PairMode.SERIAL)
        assert pair.is_pair and not solo.is_pair

    def test_schedule_total(self):
        schedule = Schedule(
            slots=(ScheduledSlot(("a",), 1.5, PairMode.SERIAL),
                   ScheduledSlot(("b", "c"), 2.5, PairMode.SIC)),
            serial_time_s=8.0)
        assert schedule.total_time_s == 4.0
        assert schedule.gain == 2.0
