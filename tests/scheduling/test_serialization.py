"""Schedule JSON-serialisation tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.scheduling.scheduler import Schedule, SicScheduler, UploadClient
from repro.techniques.pairing import TechniqueSet

rss_values = st.floats(min_value=1e-12, max_value=1e-7)


class TestScheduleSerialization:
    def make_schedule(self, rss_list):
        scheduler = SicScheduler(channel=Channel(),
                                 techniques=TechniqueSet.ALL)
        clients = [UploadClient(f"C{i}", rss)
                   for i, rss in enumerate(rss_list)]
        return scheduler.schedule(clients)

    def test_round_trip(self):
        schedule = self.make_schedule([1e-9, 1e-11, 3e-10])
        back = Schedule.from_dict(schedule.to_dict())
        assert back == schedule

    def test_json_compatible(self):
        schedule = self.make_schedule([1e-9, 1e-11])
        payload = json.dumps(schedule.to_dict())
        back = Schedule.from_dict(json.loads(payload))
        assert back.total_time_s == pytest.approx(schedule.total_time_s)
        assert back.gain == pytest.approx(schedule.gain)

    def test_dict_contains_derived_fields(self):
        schedule = self.make_schedule([1e-9, 1e-11])
        data = schedule.to_dict()
        assert data["total_time_s"] == pytest.approx(
            schedule.total_time_s)
        assert data["gain"] == pytest.approx(schedule.gain)
        assert all("mode" in slot for slot in data["slots"])

    def test_empty_schedule(self):
        schedule = self.make_schedule([])
        assert Schedule.from_dict(schedule.to_dict()) == schedule

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            Schedule.from_dict({"slots": [{"clients": ["a"]}]})
        with pytest.raises(ValueError, match="malformed"):
            Schedule.from_dict({})

    def test_unknown_mode_rejected(self):
        data = {"serial_time_s": 1.0,
                "slots": [{"clients": ["a"], "duration_s": 1.0,
                           "mode": "teleport"}]}
        with pytest.raises(ValueError):
            Schedule.from_dict(data)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(rss_values, min_size=1, max_size=6))
    def test_round_trip_property(self, rss_list):
        schedule = self.make_schedule(rss_list)
        assert Schedule.from_dict(schedule.to_dict()) == schedule
