"""Baseline-policy tests."""

import pytest

from repro.scheduling.baselines import (
    _pairings,
    brute_force_schedule,
    greedy_schedule,
    random_schedule,
    serial_schedule,
)
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.techniques.pairing import TechniqueSet


def make_clients(rss_list):
    return [UploadClient(f"C{i + 1}", rss) for i, rss in enumerate(rss_list)]


@pytest.fixture
def scheduler(channel):
    return SicScheduler(channel=channel, techniques=TechniqueSet.ALL)


@pytest.fixture
def clients(channel, rng):
    return make_clients(10 ** rng.uniform(-12, -8, size=6))


class TestPairingsEnumeration:
    def test_two_elements(self):
        options = list(_pairings([0, 1]))
        assert ([], [0, 1]) in [(p, s) for p, s in options]
        assert ([(0, 1)], []) in [(p, s) for p, s in options]
        assert len(options) == 2

    def test_counts_follow_involution_numbers(self):
        # Number of partial matchings on n labelled vertices:
        # 1, 1, 2, 4, 10, 26, 76 (telephone numbers).
        for n, expected in [(0, 1), (1, 1), (2, 2), (3, 4), (4, 10),
                            (5, 26), (6, 76)]:
            assert len(list(_pairings(list(range(n))))) == expected

    def test_each_partition_covers_all(self):
        for pairs, solo in _pairings([0, 1, 2, 3]):
            flat = sorted([v for p in pairs for v in p] + solo)
            assert flat == [0, 1, 2, 3]


class TestSerial:
    def test_all_slots_solo(self, scheduler, clients):
        schedule = serial_schedule(scheduler, clients)
        assert all(not s.is_pair for s in schedule.slots)
        assert schedule.gain == pytest.approx(1.0)


class TestGreedy:
    def test_never_worse_than_serial(self, scheduler, clients):
        greedy = greedy_schedule(scheduler, clients)
        serial = serial_schedule(scheduler, clients)
        assert greedy.total_time_s <= serial.total_time_s + 1e-12

    def test_never_better_than_blossom(self, scheduler, clients):
        greedy = greedy_schedule(scheduler, clients)
        optimal = scheduler.schedule(clients)
        assert optimal.total_time_s <= greedy.total_time_s + 1e-12

    def test_stops_pairing_when_no_saving(self, channel):
        # Two equal very strong clients: SIC pairing without techniques
        # saves nothing, so greedy leaves both solo.
        scheduler = SicScheduler(channel=channel,
                                 techniques=TechniqueSet.NONE)
        n0 = channel.noise_w
        clients = make_clients([1e6 * n0, 1e6 * n0])
        schedule = greedy_schedule(scheduler, clients)
        assert all(not s.is_pair for s in schedule.slots)


class TestRandom:
    def test_deterministic_with_seed(self, scheduler, clients):
        a = random_schedule(scheduler, clients, rng=5)
        b = random_schedule(scheduler, clients, rng=5)
        assert a.total_time_s == b.total_time_s

    def test_covers_everyone(self, scheduler, clients):
        schedule = random_schedule(scheduler, clients, rng=1)
        assert sorted(schedule.client_names) == sorted(
            c.name for c in clients)

    def test_odd_count(self, scheduler, channel, rng):
        clients = make_clients(10 ** rng.uniform(-12, -8, size=5))
        schedule = random_schedule(scheduler, clients, rng=2)
        solos = [s for s in schedule.slots if not s.is_pair]
        assert len(solos) == 1


class TestBruteForce:
    def test_refuses_large_instances(self, scheduler):
        clients = make_clients([1e-9] * 13)
        with pytest.raises(ValueError, match="brute force"):
            brute_force_schedule(scheduler, clients)

    def test_beats_or_ties_everything(self, scheduler, clients):
        brute = brute_force_schedule(scheduler, clients)
        for other in (serial_schedule(scheduler, clients),
                      greedy_schedule(scheduler, clients),
                      random_schedule(scheduler, clients, rng=0)):
            assert brute.total_time_s <= other.total_time_s + 1e-12
