"""Online (arrival-driven) scheduling tests."""

import pytest

from repro.scheduling.online import (
    ArrivalClient,
    compare_policies_online,
    simulate_online,
)
from repro.scheduling.scheduler import SicScheduler
from repro.techniques.pairing import TechniqueSet


@pytest.fixture
def scheduler(channel):
    return SicScheduler(channel=channel, techniques=TechniqueSet.ALL)


def make_clients(channel, spec):
    """spec: list of (snr_db, arrival_rate_hz)."""
    n0 = channel.noise_w
    return [ArrivalClient(f"C{i + 1}", 10 ** (snr / 10) * n0, rate)
            for i, (snr, rate) in enumerate(spec)]


class TestArrivalClient:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ArrivalClient("c", 1e-9, 0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ArrivalClient("", 1e-9, 1.0)


class TestSimulateOnline:
    def test_unknown_policy_rejected(self, scheduler, channel):
        clients = make_clients(channel, [(30, 100.0)])
        with pytest.raises(ValueError, match="policy"):
            simulate_online(scheduler, clients, 1.0, policy="magic")

    def test_duplicate_names_rejected(self, scheduler):
        clients = [ArrivalClient("X", 1e-9, 1.0),
                   ArrivalClient("X", 1e-10, 1.0)]
        with pytest.raises(ValueError, match="unique"):
            simulate_online(scheduler, clients, 1.0)

    def test_every_arrival_served(self, scheduler, channel):
        clients = make_clients(channel, [(30, 2000.0), (18, 2000.0)])
        metrics = simulate_online(scheduler, clients, 0.2,
                                  policy="sic_pairing", seed=5)
        assert metrics.leftover_packets == 0
        assert metrics.served_packets == len(metrics.delays_s)
        assert metrics.served_packets > 0

    def test_deterministic_with_seed(self, scheduler, channel):
        clients = make_clients(channel, [(30, 1000.0), (18, 1000.0)])
        a = simulate_online(scheduler, clients, 0.2, seed=9)
        b = simulate_online(scheduler, clients, 0.2, seed=9)
        assert a.delays_s == b.delays_s

    def test_delays_positive(self, scheduler, channel):
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        metrics = simulate_online(scheduler, clients, 0.1, seed=2)
        assert all(delay > 0.0 for delay in metrics.delays_s)

    def test_utilisation_bounded(self, scheduler, channel):
        clients = make_clients(channel, [(30, 5000.0), (18, 5000.0)])
        metrics = simulate_online(scheduler, clients, 0.2, seed=3)
        assert 0.0 < metrics.utilisation <= 1.0

    def test_light_load_mostly_idle(self, scheduler, channel):
        clients = make_clients(channel, [(30, 20.0)])
        metrics = simulate_online(scheduler, clients, 1.0, seed=4)
        assert metrics.utilisation < 0.1

    def test_fifo_serves_in_arrival_order(self, scheduler, channel):
        # Single client: FIFO delays must be non-decreasing during a
        # busy period and every packet served.
        clients = make_clients(channel, [(12, 8000.0)])
        metrics = simulate_online(scheduler, clients, 0.05,
                                  policy="fifo", seed=6)
        assert metrics.served_packets == len(metrics.delays_s)
        assert metrics.leftover_packets == 0


class TestPolicyComparison:
    def test_same_sample_paths(self, scheduler, channel):
        clients = make_clients(channel, [(32, 3000.0), (16, 3000.0),
                                         (26, 3000.0), (13, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=11)
        assert out["fifo"].served_packets == \
            out["sic_pairing"].served_packets

    def test_sic_pairing_cuts_delay_under_load(self, scheduler, channel):
        # A loaded system with pairable SNR gaps: batching + SIC drains
        # the queue faster, so mean sojourn time drops.
        clients = make_clients(channel, [(32, 4000.0), (16, 4000.0),
                                         (28, 4000.0), (13, 4000.0)])
        out = compare_policies_online(scheduler, clients, 0.3, seed=13)
        assert out["sic_pairing"].mean_delay_s < out["fifo"].mean_delay_s

    def test_sic_pairing_cuts_busy_time(self, scheduler, channel):
        clients = make_clients(channel, [(32, 4000.0), (16, 4000.0),
                                         (28, 4000.0), (13, 4000.0)])
        out = compare_policies_online(scheduler, clients, 0.3, seed=17)
        assert out["sic_pairing"].busy_time_s <= \
            out["fifo"].busy_time_s + 1e-9

    def test_p95_reported(self, scheduler, channel):
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=19)
        for metrics in out.values():
            assert metrics.p95_delay_s >= metrics.mean_delay_s * 0.5

    def test_replay_deterministic_across_calls(self, scheduler, channel):
        # Regression for the unseeded default_rng() that previously
        # backed the replay: the same seed must reproduce the entire
        # comparison, delay for delay, across independent calls.
        clients = make_clients(channel, [(32, 3000.0), (16, 3000.0),
                                         (26, 3000.0), (13, 3000.0)])
        first = compare_policies_online(scheduler, clients, 0.2, seed=23)
        second = compare_policies_online(scheduler, clients, 0.2, seed=23)
        for policy in ("fifo", "sic_pairing"):
            assert first[policy].delays_s == second[policy].delays_s
            assert first[policy].busy_time_s == second[policy].busy_time_s

    def test_single_run_matches_comparison_sample_path(self, scheduler,
                                                       channel):
        # The comparison must drive each policy with the same stream a
        # direct simulate_online call sees for that seed.
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=29)
        solo = simulate_online(scheduler, clients, 0.2,
                               policy="sic_pairing", seed=29)
        assert out["sic_pairing"].delays_s == solo.delays_s
