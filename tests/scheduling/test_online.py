"""Online (arrival-driven) scheduling tests."""

import numpy as np
import pytest

from repro.scheduling.online import (
    ArrivalClient,
    PairCostCache,
    _arrival_times,
    _arrival_times_scalar,
    compare_policies_online,
    simulate_online,
)
from repro.scheduling.scheduler import SicScheduler
from repro.techniques.pairing import TechniqueSet


@pytest.fixture
def scheduler(channel):
    return SicScheduler(channel=channel, techniques=TechniqueSet.ALL)


def make_clients(channel, spec):
    """spec: list of (snr_db, arrival_rate_hz)."""
    n0 = channel.noise_w
    return [ArrivalClient(f"C{i + 1}", 10 ** (snr / 10) * n0, rate)
            for i, (snr, rate) in enumerate(spec)]


class TestArrivalClient:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ArrivalClient("c", 1e-9, 0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ArrivalClient("", 1e-9, 1.0)


class TestSimulateOnline:
    def test_unknown_policy_rejected(self, scheduler, channel):
        clients = make_clients(channel, [(30, 100.0)])
        with pytest.raises(ValueError, match="policy"):
            simulate_online(scheduler, clients, 1.0, policy="magic")

    def test_duplicate_names_rejected(self, scheduler):
        clients = [ArrivalClient("X", 1e-9, 1.0),
                   ArrivalClient("X", 1e-10, 1.0)]
        with pytest.raises(ValueError, match="unique"):
            simulate_online(scheduler, clients, 1.0)

    def test_every_arrival_served(self, scheduler, channel):
        clients = make_clients(channel, [(30, 2000.0), (18, 2000.0)])
        metrics = simulate_online(scheduler, clients, 0.2,
                                  policy="sic_pairing", seed=5)
        assert metrics.leftover_packets == 0
        assert metrics.served_packets == len(metrics.delays_s)
        assert metrics.served_packets > 0

    def test_deterministic_with_seed(self, scheduler, channel):
        clients = make_clients(channel, [(30, 1000.0), (18, 1000.0)])
        a = simulate_online(scheduler, clients, 0.2, seed=9)
        b = simulate_online(scheduler, clients, 0.2, seed=9)
        assert a.delays_s == b.delays_s

    def test_delays_positive(self, scheduler, channel):
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        metrics = simulate_online(scheduler, clients, 0.1, seed=2)
        assert all(delay > 0.0 for delay in metrics.delays_s)

    def test_utilisation_bounded(self, scheduler, channel):
        clients = make_clients(channel, [(30, 5000.0), (18, 5000.0)])
        metrics = simulate_online(scheduler, clients, 0.2, seed=3)
        assert 0.0 < metrics.utilisation <= 1.0

    def test_light_load_mostly_idle(self, scheduler, channel):
        clients = make_clients(channel, [(30, 20.0)])
        metrics = simulate_online(scheduler, clients, 1.0, seed=4)
        assert metrics.utilisation < 0.1

    def test_fifo_serves_in_arrival_order(self, scheduler, channel):
        # Single client: FIFO delays must be non-decreasing during a
        # busy period and every packet served.
        clients = make_clients(channel, [(12, 8000.0)])
        metrics = simulate_online(scheduler, clients, 0.05,
                                  policy="fifo", seed=6)
        assert metrics.served_packets == len(metrics.delays_s)
        assert metrics.leftover_packets == 0


class TestPolicyComparison:
    def test_same_sample_paths(self, scheduler, channel):
        clients = make_clients(channel, [(32, 3000.0), (16, 3000.0),
                                         (26, 3000.0), (13, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=11)
        assert out["fifo"].served_packets == \
            out["sic_pairing"].served_packets

    def test_sic_pairing_cuts_delay_under_load(self, scheduler, channel):
        # A loaded system with pairable SNR gaps: batching + SIC drains
        # the queue faster, so mean sojourn time drops.
        clients = make_clients(channel, [(32, 4000.0), (16, 4000.0),
                                         (28, 4000.0), (13, 4000.0)])
        out = compare_policies_online(scheduler, clients, 0.3, seed=13)
        assert out["sic_pairing"].mean_delay_s < out["fifo"].mean_delay_s

    def test_sic_pairing_cuts_busy_time(self, scheduler, channel):
        clients = make_clients(channel, [(32, 4000.0), (16, 4000.0),
                                         (28, 4000.0), (13, 4000.0)])
        out = compare_policies_online(scheduler, clients, 0.3, seed=17)
        assert out["sic_pairing"].busy_time_s <= \
            out["fifo"].busy_time_s + 1e-9

    def test_p95_reported(self, scheduler, channel):
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=19)
        for metrics in out.values():
            assert metrics.p95_delay_s >= metrics.mean_delay_s * 0.5

    def test_replay_deterministic_across_calls(self, scheduler, channel):
        # Regression for the unseeded default_rng() that previously
        # backed the replay: the same seed must reproduce the entire
        # comparison, delay for delay, across independent calls.
        clients = make_clients(channel, [(32, 3000.0), (16, 3000.0),
                                         (26, 3000.0), (13, 3000.0)])
        first = compare_policies_online(scheduler, clients, 0.2, seed=23)
        second = compare_policies_online(scheduler, clients, 0.2, seed=23)
        for policy in ("fifo", "sic_pairing"):
            assert first[policy].delays_s == second[policy].delays_s
            assert first[policy].busy_time_s == second[policy].busy_time_s

    def test_single_run_matches_comparison_sample_path(self, scheduler,
                                                       channel):
        # The comparison must drive each policy with the same stream a
        # direct simulate_online call sees for that seed.
        clients = make_clients(channel, [(30, 3000.0), (18, 3000.0)])
        out = compare_policies_online(scheduler, clients, 0.2, seed=29)
        solo = simulate_online(scheduler, clients, 0.2,
                               policy="sic_pairing", seed=29)
        assert out["sic_pairing"].delays_s == solo.delays_s


class TestVectorisedArrivals:
    """The block-drawn arrival generator must replay the frozen scalar
    generator draw for draw (PR-1 convention): same events AND the same
    generator state afterwards, so everything downstream of the stream
    is untouched by the optimisation."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 2010])
    def test_events_identical_across_seeds(self, channel, seed):
        clients = make_clients(channel, [(30, 3000.0), (18, 150.0),
                                         (24, 40.0), (12, 5000.0)])
        scalar = _arrival_times_scalar(clients, 0.25,
                                       np.random.default_rng(seed))
        fast = _arrival_times(clients, 0.25, np.random.default_rng(seed))
        assert fast == scalar  # exact floats, exact order

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_generator_state_identical_afterwards(self, channel, seed):
        # The next draw after generating arrivals must match too —
        # otherwise later users of the same rng silently diverge.
        clients = make_clients(channel, [(30, 800.0), (18, 2500.0)])
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        _arrival_times_scalar(clients, 0.3, rng_a)
        _arrival_times(clients, 0.3, rng_b)
        assert rng_a.standard_normal() == rng_b.standard_normal()

    def test_low_rate_client_needs_multiple_blocks(self, channel):
        # A rate so low the first block rarely crosses the horizon
        # exercises the block-continuation path.
        clients = make_clients(channel, [(25, 0.8)])
        for seed in range(6):
            scalar = _arrival_times_scalar(clients, 40.0,
                                           np.random.default_rng(seed))
            fast = _arrival_times(clients, 40.0,
                                  np.random.default_rng(seed))
            assert fast == scalar

    def test_no_arrivals_within_horizon(self, channel):
        clients = make_clients(channel, [(25, 0.01)])
        rng = np.random.default_rng(5)
        assert _arrival_times(clients, 0.1, rng) == []

    def test_events_sorted_and_within_horizon(self, channel):
        clients = make_clients(channel, [(30, 1000.0), (18, 1000.0)])
        events = _arrival_times(clients, 0.2, np.random.default_rng(1))
        assert events == sorted(events)
        assert all(0.0 < t <= 0.2 for t, _ in events)


class TestPairCostCache:
    def load(self, channel):
        return make_clients(channel, [(32, 3000.0), (16, 3000.0),
                                      (26, 3000.0), (13, 3000.0)])

    @pytest.mark.parametrize("policy", ["fifo", "sic_pairing"])
    def test_cached_run_bit_identical(self, scheduler, channel, policy):
        clients = self.load(channel)
        cached = simulate_online(scheduler, clients, 0.25, policy=policy,
                                 seed=17)
        uncached = simulate_online(scheduler, clients, 0.25, policy=policy,
                                   seed=17, use_cache=False)
        assert cached.delays_s == uncached.delays_s  # exact floats
        assert cached.served_packets == uncached.served_packets
        assert cached.busy_time_s == uncached.busy_time_s
        assert cached.leftover_packets == uncached.leftover_packets

    def test_steady_state_batches_mostly_hit(self, scheduler, channel):
        cache = PairCostCache(scheduler)
        simulate_online(scheduler, self.load(channel), 0.25,
                        policy="sic_pairing", seed=17, cache=cache)
        assert cache.hits + cache.misses > 0
        # Under sustained load the backlogged set repeats, so most
        # batches must skip the blossom matching entirely.
        assert cache.hits > cache.misses

    def test_explicit_cache_shared_across_runs(self, scheduler, channel):
        clients = self.load(channel)
        cache = PairCostCache(scheduler)
        first = simulate_online(scheduler, clients, 0.2,
                                policy="sic_pairing", seed=3, cache=cache)
        misses_after_first = cache.misses
        second = simulate_online(scheduler, clients, 0.2,
                                 policy="sic_pairing", seed=3, cache=cache)
        assert second.delays_s == first.delays_s
        # The replayed run re-sees the same batch sets: no new misses.
        assert cache.misses == misses_after_first

    def test_schedule_memo_returns_identical_schedule(self, scheduler):
        from repro.scheduling.scheduler import UploadClient
        cache = PairCostCache(scheduler)
        batch = [UploadClient("a", 1e-9), UploadClient("b", 1e-10)]
        first = cache.schedule(batch)
        second = cache.schedule(list(reversed(batch)))
        assert cache.misses == 1 and cache.hits == 1
        assert second is first  # frozen dataclass, safe to share

    def test_solo_and_pair_memos_match_scheduler(self, scheduler):
        from repro.scheduling.scheduler import UploadClient
        cache = PairCostCache(scheduler)
        a, b = UploadClient("a", 1e-9), UploadClient("b", 1e-10)
        assert cache.solo_cost(a) == scheduler.solo_cost(a)
        assert cache.pair_cost(a, b) == scheduler.pair_cost(a, b)
        # The symmetric key makes the swapped lookup a hit.
        assert cache.pair_cost(b, a) is cache.pair_cost(a, b)
