"""Round-based backlog scheduler tests."""

import pytest

from repro.scheduling.backlog import (
    BacklogClient,
    BacklogResult,
    drain_backlog,
)
from repro.scheduling.scheduler import SicScheduler
from repro.techniques.pairing import TechniqueSet


@pytest.fixture
def scheduler(channel):
    return SicScheduler(channel=channel, techniques=TechniqueSet.ALL)


def make_backlog(channel, spec):
    """spec: list of (snr_db, backlog)."""
    n0 = channel.noise_w
    return [BacklogClient(f"C{i + 1}", 10 ** (snr / 10) * n0, queue)
            for i, (snr, queue) in enumerate(spec)]


class TestBacklogClient:
    def test_rejects_negative_backlog(self):
        with pytest.raises(ValueError):
            BacklogClient("c", 1e-9, -1)

    def test_zero_backlog_allowed(self):
        assert BacklogClient("c", 1e-9, 0).backlog == 0

    def test_as_upload_client(self):
        client = BacklogClient("c", 1e-9, 3)
        upload = client.as_upload_client()
        assert upload.name == "c" and upload.rss_w == 1e-9


class TestDrainBacklog:
    def test_empty(self, scheduler):
        result = drain_backlog(scheduler, [])
        assert result.n_rounds == 0
        assert result.total_time_s == 0.0
        assert result.gain == 1.0

    def test_all_zero_backlogs(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 0), (20, 0)])
        result = drain_backlog(scheduler, clients)
        assert result.n_rounds == 0

    def test_round_count_is_max_backlog(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 3), (20, 1), (15, 2)])
        result = drain_backlog(scheduler, clients)
        assert result.n_rounds == 3

    def test_packet_conservation(self, scheduler, channel):
        clients = make_backlog(channel, [(32, 2), (25, 3), (14, 1)])
        result = drain_backlog(scheduler, clients)
        scheduled = sum(len(slot.clients) for schedule in result.rounds
                        for slot in schedule.slots)
        assert scheduled == sum(c.backlog for c in clients)

    def test_every_client_gets_finish_time(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 2), (20, 1), (12, 4)])
        result = drain_backlog(scheduler, clients)
        assert set(result.finish_times_s) == {"C1", "C2", "C3"}

    def test_finish_times_within_total(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 2), (20, 3)])
        result = drain_backlog(scheduler, clients)
        for finish in result.finish_times_s.values():
            assert 0.0 < finish <= result.total_time_s + 1e-12

    def test_never_slower_than_serial(self, scheduler, channel):
        clients = make_backlog(channel, [(35, 4), (28, 2), (18, 3),
                                         (10, 1)])
        result = drain_backlog(scheduler, clients)
        assert result.total_time_s <= result.serial_time_s + 1e-12
        assert result.gain >= 1.0 - 1e-12

    def test_pairing_gains_survive_backlogs(self, scheduler, channel):
        # Clients with SNR gaps near the sweet spot keep pairing well
        # across rounds.
        clients = make_backlog(channel, [(32, 3), (16, 3), (28, 3),
                                         (14, 3)])
        result = drain_backlog(scheduler, clients)
        assert result.gain > 1.2

    def test_uneven_backlogs_still_drain(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 5), (20, 1)])
        result = drain_backlog(scheduler, clients)
        # After C2 drains, C1 transmits solo for the remaining rounds.
        assert result.n_rounds == 5
        last_round = result.rounds[-1]
        assert last_round.client_names == ("C1",)

    def test_duplicate_names_rejected(self, scheduler):
        clients = [BacklogClient("X", 1e-9, 1), BacklogClient("X", 1e-10, 1)]
        with pytest.raises(ValueError, match="unique"):
            drain_backlog(scheduler, clients)

    def test_fairness_index_bounds(self, scheduler, channel):
        clients = make_backlog(channel, [(30, 2), (25, 2), (20, 2)])
        result = drain_backlog(scheduler, clients)
        index = result.fairness_index()
        assert 1.0 / 3.0 <= index <= 1.0

    def test_equal_backlogs_fairer_than_skewed(self, scheduler, channel):
        equal = drain_backlog(scheduler, make_backlog(
            channel, [(30, 2), (25, 2), (20, 2)]))
        skewed = drain_backlog(scheduler, make_backlog(
            channel, [(30, 6), (25, 1), (20, 1)]))
        assert equal.fairness_index() >= skewed.fairness_index()

    def test_empty_result_fairness(self):
        result = BacklogResult(rounds=(), serial_time_s=0.0)
        assert result.fairness_index() == 1.0
