"""Node-type tests."""

import pytest

from repro.topology.geometry import Point
from repro.topology.nodes import (
    DEFAULT_TX_POWER_W,
    AccessPoint,
    Client,
    Link,
    Node,
    Radio,
)


class TestNode:
    def test_default_power_is_20_dbm(self):
        assert DEFAULT_TX_POWER_W == pytest.approx(0.1)

    def test_distance(self):
        a = Node("a", Point(0, 0))
        b = Node("b", Point(3, 4))
        assert a.distance_to(b) == 5.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node("", Point(0, 0))

    def test_bad_power_rejected(self):
        with pytest.raises(ValueError):
            Node("a", Point(0, 0), max_tx_power_w=0.0)

    def test_subtypes(self):
        assert isinstance(AccessPoint("ap", Point(0, 0)), Node)
        assert isinstance(Radio("r", Point(0, 0)), Node)


class TestClient:
    def test_association_default_empty(self):
        assert Client("c", Point(0, 0)).associated_ap == ""

    def test_association(self):
        c = Client("c", Point(0, 0), associated_ap="AP1")
        assert c.associated_ap == "AP1"


class TestLink:
    def test_length(self):
        link = Link(Node("a", Point(0, 0)), Node("b", Point(0, 2)))
        assert link.length_m == 2.0

    def test_self_link_rejected(self):
        node = Node("a", Point(0, 0))
        other_same_name = Node("a", Point(1, 1))
        with pytest.raises(ValueError):
            Link(node, other_same_name)

    def test_str(self):
        link = Link(Node("a", Point(0, 0)), Node("b", Point(1, 0)),
                    label="uplink")
        assert str(link) == "a->b [uplink]"

    def test_str_without_label(self):
        link = Link(Node("a", Point(0, 0)), Node("b", Point(1, 0)))
        assert str(link) == "a->b"
