"""Scenario-generator tests."""

import pytest

from repro.topology.generators import (
    MIN_LINK_DISTANCE_M,
    ewlan_grid,
    mesh_chain,
    random_pair_topology,
    random_uplink_clients,
    residential_row,
)


class TestRandomPairTopology:
    def test_transmitter_separation(self, rng):
        topo = random_pair_topology(20.0, rng)
        assert topo.t1.distance_to(topo.t2) == pytest.approx(20.0)

    def test_receivers_within_range(self, rng):
        for _ in range(100):
            topo = random_pair_topology(15.0, rng)
            assert topo.t1.distance_to(topo.r1) <= 15.0 + 1e-9
            assert topo.t2.distance_to(topo.r2) <= 15.0 + 1e-9

    def test_receivers_not_in_near_field(self, rng):
        for _ in range(100):
            topo = random_pair_topology(15.0, rng)
            assert topo.t1.distance_to(topo.r1) >= MIN_LINK_DISTANCE_M - 1e-9
            assert topo.t2.distance_to(topo.r2) >= MIN_LINK_DISTANCE_M - 1e-9

    def test_custom_separation(self, rng):
        topo = random_pair_topology(10.0, rng, separation_m=30.0)
        assert topo.t1.distance_to(topo.t2) == pytest.approx(30.0)

    def test_node_names(self, rng):
        topo = random_pair_topology(10.0, rng)
        assert [n.name for n in topo.nodes] == ["T1", "R1", "T2", "R2"]

    def test_deterministic(self):
        a = random_pair_topology(10.0, 3)
        b = random_pair_topology(10.0, 3)
        assert a == b

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            random_pair_topology(0.0)


class TestRandomUplinkClients:
    def test_counts_and_names(self, rng):
        topo = random_uplink_clients(5, 30.0, rng)
        assert len(topo.clients) == 5
        assert [c.name for c in topo.clients] == [f"C{i}" for i in range(1, 6)]

    def test_all_within_cell(self, rng):
        topo = random_uplink_clients(20, 25.0, rng)
        assert all(c.distance_to(topo.ap) <= 25.0 + 1e-9
                   for c in topo.clients)

    def test_association(self, rng):
        topo = random_uplink_clients(3, 10.0, rng, ap_name="MYAP")
        assert all(c.associated_ap == "MYAP" for c in topo.clients)

    def test_rejects_zero_clients(self, rng):
        with pytest.raises(ValueError):
            random_uplink_clients(0, 10.0, rng)


class TestEwlanGrid:
    def test_ap_count(self, rng):
        topo = ewlan_grid(2, 3, 30.0, clients_per_ap=2, rng=rng)
        assert len(topo.aps) == 6
        assert len(topo.clients) == 12

    def test_clients_associate_to_nearest_ap(self, rng):
        topo = ewlan_grid(2, 2, 40.0, clients_per_ap=5, rng=rng)
        for client in topo.clients:
            own = next(ap for ap in topo.aps
                       if ap.name == client.associated_ap)
            own_d = client.position.distance_to(own.position)
            for ap in topo.aps:
                assert own_d <= client.position.distance_to(
                    ap.position) + 1e-9

    def test_clients_of(self, rng):
        topo = ewlan_grid(1, 2, 30.0, clients_per_ap=3, rng=rng)
        total = sum(len(topo.clients_of(ap.name)) for ap in topo.aps)
        assert total == len(topo.clients)

    def test_rejects_bad_grid(self, rng):
        with pytest.raises(ValueError):
            ewlan_grid(0, 2, 30.0, 1, rng)


class TestResidentialRow:
    def test_one_ap_per_home(self, rng):
        topo = residential_row(4, 12.0, clients_per_home=2, rng=rng)
        assert len(topo.aps) == 4
        assert len(topo.clients) == 8

    def test_clients_locked_to_home_ap(self, rng):
        # Unlike EWLAN, residential clients may be closer to a
        # neighbour's AP but must stay on their own.
        topo = residential_row(3, 10.0, clients_per_home=4, rng=rng)
        for h in range(3):
            home_clients = topo.clients_of(f"AP{h + 1}")
            assert len(home_clients) == 4
            for c in home_clients:
                assert c.name.startswith(f"H{h + 1}")

    def test_clients_inside_own_home_footprint(self, rng):
        width = 11.0
        topo = residential_row(3, width, clients_per_home=5, rng=rng)
        for h in range(3):
            for c in topo.clients_of(f"AP{h + 1}"):
                assert h * width <= c.position.x <= (h + 1) * width


class TestMeshChain:
    def test_long_short_long(self):
        chain = mesh_chain([40.0, 10.0, 40.0])
        names = [n.name for n in chain.nodes]
        assert names == ["A", "B", "C", "D"]
        hops = chain.hops()
        assert len(hops) == 3
        assert hops[0][0].distance_to(hops[0][1]) == pytest.approx(40.0)
        assert hops[1][0].distance_to(hops[1][1]) == pytest.approx(10.0)

    def test_positions_accumulate(self):
        chain = mesh_chain([5.0, 5.0])
        assert chain.nodes[-1].position.x == pytest.approx(10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mesh_chain([])

    def test_rejects_short_hop(self):
        with pytest.raises(ValueError):
            mesh_chain([0.1])


class TestBatchedGenerators:
    """Batched samplers must reproduce the scalar draw sequence."""

    def test_pair_batch_matches_scalar_draws(self):
        import numpy as np
        from repro.topology.generators import random_pair_topologies

        batch = random_pair_topologies(50, 20.0,
                                       np.random.default_rng(123))
        scalar_rng = np.random.default_rng(123)
        for k in range(50):
            topo = random_pair_topology(20.0, scalar_rng)
            assert batch.r1_x[k] == pytest.approx(topo.r1.position.x,
                                                  rel=1e-12)
            assert batch.r1_y[k] == pytest.approx(topo.r1.position.y,
                                                  rel=1e-12)
            assert batch.r2_x[k] == pytest.approx(topo.r2.position.x,
                                                  rel=1e-12)
            assert batch.r2_y[k] == pytest.approx(topo.r2.position.y,
                                                  rel=1e-12)

    def test_pair_batch_distances_and_materialisation(self):
        import numpy as np
        from repro.topology.generators import random_pair_topologies

        batch = random_pair_topologies(40, 15.0,
                                       np.random.default_rng(5))
        d11, d12, d21, d22 = batch.link_distances()
        assert len(batch) == 40
        for k in (0, 17, 39):
            topo = batch.topology(k)
            assert d11[k] == pytest.approx(topo.t1.distance_to(topo.r1))
            assert d12[k] == pytest.approx(topo.t2.distance_to(topo.r1))
            assert d21[k] == pytest.approx(topo.t1.distance_to(topo.r2))
            assert d22[k] == pytest.approx(topo.t2.distance_to(topo.r2))
        assert np.all(d11 >= MIN_LINK_DISTANCE_M - 1e-9)
        assert np.all(d11 <= 15.0 + 1e-9)
        assert np.all(d22 >= MIN_LINK_DISTANCE_M - 1e-9)
        assert np.all(d22 <= 15.0 + 1e-9)

    def test_uplink_batch_matches_scalar_draws(self):
        import numpy as np
        from repro.topology.generators import random_uplink_client_batch

        batch = random_uplink_client_batch(30, 3, 25.0,
                                           np.random.default_rng(77))
        scalar_rng = np.random.default_rng(77)
        for k in range(30):
            topo = random_uplink_clients(3, 25.0, scalar_rng)
            for i, client in enumerate(topo.clients):
                assert batch.x[k, i] == pytest.approx(client.position.x,
                                                      rel=1e-12)
                assert batch.y[k, i] == pytest.approx(client.position.y,
                                                      rel=1e-12)

    def test_uplink_batch_distances_within_cell(self):
        import numpy as np
        from repro.topology.generators import random_uplink_client_batch

        batch = random_uplink_client_batch(100, 2, 20.0,
                                           np.random.default_rng(1))
        distances = batch.ap_distances()
        assert distances.shape == (100, 2)
        assert np.all(distances >= MIN_LINK_DISTANCE_M - 1e-9)
        assert np.all(distances <= 20.0 + 1e-9)

    def test_batch_validation(self):
        import numpy as np
        from repro.topology.generators import (
            random_pair_topologies,
            random_uplink_client_batch,
        )

        with pytest.raises(ValueError):
            random_pair_topologies(0, 20.0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            random_uplink_client_batch(10, 0, 20.0,
                                       np.random.default_rng(1))
        with pytest.raises(ValueError):
            random_uplink_client_batch(10, 2, 20.0,
                                       np.random.default_rng(1),
                                       min_distance_m=25.0)
