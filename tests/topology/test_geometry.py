"""Geometry tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.geometry import (
    Point,
    centroid,
    distance,
    grid_points,
    random_point_in_disk,
    random_points_in_rect,
)

coords = st.floats(min_value=-1e4, max_value=1e4)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_as_array(self):
        arr = Point(1.5, -2.0).as_array()
        assert list(arr) == [1.5, -2.0]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0

    @given(coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, o = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.distance_to(b) <= a.distance_to(o) + o.distance_to(b) + 1e-9


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(2, 3)]) == Point(2, 3)

    def test_square(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])


class TestRandomPointInDisk:
    def test_inside_radius(self, rng):
        center = Point(5, 5)
        for _ in range(200):
            p = random_point_in_disk(center, 10.0, rng)
            assert center.distance_to(p) <= 10.0 + 1e-9

    def test_respects_min_radius(self, rng):
        center = Point(0, 0)
        for _ in range(200):
            p = random_point_in_disk(center, 10.0, rng, min_radius_m=2.0)
            assert center.distance_to(p) >= 2.0 - 1e-9

    def test_deterministic_with_seed(self):
        a = random_point_in_disk(Point(0, 0), 5.0, 7)
        b = random_point_in_disk(Point(0, 0), 5.0, 7)
        assert a == b

    def test_rejects_bad_annulus(self):
        with pytest.raises(ValueError):
            random_point_in_disk(Point(0, 0), 5.0, min_radius_m=5.0)

    def test_roughly_uniform_over_area(self):
        # Half the points should land beyond r/sqrt(2) (equal areas).
        rng = np.random.default_rng(0)
        n = 4000
        beyond = sum(
            Point(0, 0).distance_to(
                random_point_in_disk(Point(0, 0), 1.0, rng))
            > 1.0 / math.sqrt(2.0)
            for _ in range(n))
        assert abs(beyond / n - 0.5) < 0.03


class TestRandomPointsInRect:
    def test_count_and_bounds(self, rng):
        pts = random_points_in_rect(50, 10.0, 4.0, rng)
        assert len(pts) == 50
        assert all(0 <= p.x <= 10 and 0 <= p.y <= 4 for p in pts)

    def test_zero_count(self, rng):
        assert random_points_in_rect(0, 1.0, 1.0, rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            random_points_in_rect(-1, 1.0, 1.0, rng)


class TestGridPoints:
    def test_count(self):
        assert len(grid_points(2, 3, 5.0)) == 6

    def test_spacing(self):
        pts = grid_points(1, 2, 7.0)
        assert distance(pts[0], pts[1]) == 7.0

    def test_origin_offset(self):
        pts = grid_points(1, 1, 1.0, origin=Point(3, 4))
        assert pts == [Point(3, 4)]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            grid_points(0, 3, 1.0)
