"""Two-pair scenario taxonomy tests (paper Section 3.2, Fig. 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.scenarios import (
    PairCase,
    PairRss,
    classify_pair_case,
    evaluate_pair_scenario,
)

L = 12_000.0
power = st.floats(min_value=1e-13, max_value=1e-6)


def rss_case_a():
    return PairRss(s11=1e-9, s12=1e-11, s21=1e-11, s22=1e-9)


def rss_case_b(channel=None):
    # R1 captures T1; at R2, T1's signal dominates T2's.
    return PairRss(s11=1e-9, s12=1e-10, s21=5e-9, s22=1e-10)


def rss_case_d():
    # Each receiver is dominated by the *other* transmitter.
    return PairRss(s11=1e-11, s12=1e-8, s21=1e-8, s22=1e-11)


class TestClassification:
    def test_case_a(self):
        assert classify_pair_case(rss_case_a()) is PairCase.BOTH_CAPTURE

    def test_case_b(self):
        assert classify_pair_case(rss_case_b()) is PairCase.SIC_AT_R2

    def test_case_c_is_mirror_of_b(self):
        b = rss_case_b()
        c = PairRss(s11=b.s22, s12=b.s21, s21=b.s12, s22=b.s11)
        assert classify_pair_case(c) is PairCase.SIC_AT_R1

    def test_case_d(self):
        assert classify_pair_case(rss_case_d()) is PairCase.SIC_AT_BOTH

    def test_rejects_nonpositive_rss(self):
        with pytest.raises(ValueError):
            PairRss(s11=0.0, s12=1.0, s21=1.0, s22=1.0)


class TestCaseA:
    def test_no_sic_gain(self, channel):
        scenario = evaluate_pair_scenario(channel, L, rss_case_a())
        assert scenario.case is PairCase.BOTH_CAPTURE
        assert not scenario.sic_feasible
        assert scenario.gain == 1.0

    def test_serial_time_is_clean_sum(self, channel):
        scenario = evaluate_pair_scenario(channel, L, rss_case_a())
        expected = L / channel.rate(1e-9) + L / channel.rate(1e-9)
        assert scenario.z_serial_s == pytest.approx(expected)


class TestCaseB:
    def test_feasibility_condition(self, channel):
        # Feasible iff S21/(S22+N0) > S11/(S12+N0).
        rss = rss_case_b()
        scenario = evaluate_pair_scenario(channel, L, rss)
        n0 = channel.noise_w
        expected = rss.s21 / (rss.s22 + n0) > rss.s11 / (rss.s12 + n0)
        assert scenario.sic_feasible == expected

    def test_z_sic_is_eq7(self, channel):
        rss = rss_case_b()
        scenario = evaluate_pair_scenario(channel, L, rss)
        t1 = L / channel.rate(rss.s11, rss.s12)
        t2 = L / channel.rate(rss.s22)
        assert scenario.z_sic_s == pytest.approx(max(t1, t2))

    def test_infeasible_when_interferer_far(self, channel):
        # T1 weak at R2: R2 cannot decode it at T1's chosen rate.
        rss = PairRss(s11=1e-9, s12=1e-10, s21=1.1e-10, s22=1e-10)
        scenario = evaluate_pair_scenario(channel, L, rss)
        assert scenario.case is PairCase.SIC_AT_R2
        assert not scenario.sic_feasible
        assert scenario.gain == 1.0


class TestCaseCMirrors:
    def test_case_c_equals_mirrored_case_b(self, channel):
        b = rss_case_b()
        c = PairRss(s11=b.s22, s12=b.s21, s21=b.s12, s22=b.s11)
        scenario_b = evaluate_pair_scenario(channel, L, b)
        scenario_c = evaluate_pair_scenario(channel, L, c)
        assert scenario_c.case is PairCase.SIC_AT_R1
        assert scenario_c.sic_feasible == scenario_b.sic_feasible
        assert scenario_c.z_sic_s == pytest.approx(scenario_b.z_sic_s)
        assert scenario_c.z_serial_s == pytest.approx(scenario_b.z_serial_s)


class TestCaseD:
    def test_both_conditions_required(self, channel):
        rss = rss_case_d()
        scenario = evaluate_pair_scenario(channel, L, rss)
        n0 = channel.noise_w
        feasible_r2 = rss.s21 / (rss.s22 + n0) > rss.s11 / n0
        feasible_r1 = rss.s12 / (rss.s11 + n0) > rss.s22 / n0
        assert scenario.sic_feasible == (feasible_r1 and feasible_r2)

    def test_z_sic_is_eq9(self, channel):
        rss = rss_case_d()
        scenario = evaluate_pair_scenario(channel, L, rss)
        t1 = L / channel.rate(rss.s11)
        t2 = L / channel.rate(rss.s22)
        assert scenario.z_sic_s == pytest.approx(max(t1, t2))

    def test_feasible_case_d_always_gains(self, channel):
        # Eq. 9's max is strictly below Eq. 8's sum.
        rss = rss_case_d()
        scenario = evaluate_pair_scenario(channel, L, rss)
        if scenario.sic_feasible:
            assert scenario.gain > 1.0


class TestGainProperties:
    @given(power, power, power, power)
    def test_gain_never_below_one(self, s11, s12, s21, s22):
        channel = Channel()
        scenario = evaluate_pair_scenario(
            channel, L, PairRss(s11, s12, s21, s22))
        assert scenario.gain >= 1.0

    @given(power, power, power, power)
    def test_gain_bounded_by_two(self, s11, s12, s21, s22):
        # Z+SIC >= max individual airtime >= Z-SIC / 2.
        channel = Channel()
        scenario = evaluate_pair_scenario(
            channel, L, PairRss(s11, s12, s21, s22))
        assert scenario.gain <= 2.0 + 1e-9

    @given(power, power, power, power)
    def test_symmetry_under_pair_swap(self, s11, s12, s21, s22):
        channel = Channel()
        original = evaluate_pair_scenario(
            channel, L, PairRss(s11, s12, s21, s22))
        swapped = evaluate_pair_scenario(
            channel, L, PairRss(s22, s21, s12, s11))
        assert original.gain == pytest.approx(swapped.gain, rel=1e-9)
