"""Discrete-rate scenario tests (paper Section 7, Fig. 14b)."""

import math

import pytest

from repro.sic.discrete import (
    DiscretePairRates,
    DiscretePairScenario,
    discrete_packing_gain,
    evaluate_discrete_pair,
)
from repro.sic.scenarios import PairCase, PairRss

L = 12_000.0


def case_b_rss():
    return PairRss(s11=1e-9, s12=1e-10, s21=5e-9, s22=1e-10)


def mbps(x):
    return x * 1e6


class TestEvaluateDiscretePair:
    def test_case_a_no_gain(self):
        rss = PairRss(s11=1e-9, s12=1e-11, s21=1e-11, s22=1e-9)
        rates = DiscretePairRates(mbps(54), mbps(54), mbps(24), mbps(6),
                                  mbps(24), mbps(6))
        scenario = evaluate_discrete_pair(L, rss, rates)
        assert scenario.case is PairCase.BOTH_CAPTURE
        assert scenario.gain == 1.0

    def test_case_b_feasible_when_rates_allow(self):
        # T1 picks 12 Mbps under interference at R1; R2 can decode T1
        # at up to 18 Mbps, so SIC is feasible.
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=mbps(12), interfered_21=mbps(18),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert scenario.case is PairCase.SIC_AT_R2
        assert scenario.sic_feasible

    def test_case_b_equal_bins_feasible(self):
        # Discrete slack: equality of rate bins suffices — the
        # continuous analysis would call this infeasible.
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=mbps(12), interfered_21=mbps(12),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert scenario.sic_feasible

    def test_case_b_infeasible_when_undecodable(self):
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=mbps(24), interfered_21=mbps(12),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert not scenario.sic_feasible
        assert scenario.gain == 1.0

    def test_dead_link_infeasible(self):
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=0.0, interfered_21=mbps(12),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert not scenario.sic_feasible

    def test_times_use_measured_rates(self):
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=mbps(12), interfered_21=mbps(18),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert scenario.z_serial_s == pytest.approx(
            L / mbps(54) + L / mbps(24))
        assert scenario.z_sic_s == pytest.approx(
            max(L / mbps(12), L / mbps(24)))

    def test_case_c_mirrors_b(self):
        rss_b = case_b_rss()
        rss_c = PairRss(s11=rss_b.s22, s12=rss_b.s21,
                        s21=rss_b.s12, s22=rss_b.s11)
        rates_b = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(24),
            interfered_11=mbps(12), interfered_21=mbps(18),
            interfered_22=mbps(6), interfered_12=mbps(6))
        rates_c = DiscretePairRates(
            clean_1=mbps(24), clean_2=mbps(54),
            interfered_11=mbps(6), interfered_21=mbps(6),
            interfered_22=mbps(12), interfered_12=mbps(18))
        scenario_b = evaluate_discrete_pair(L, rss_b, rates_b)
        scenario_c = evaluate_discrete_pair(L, rss_c, rates_c)
        assert scenario_c.case is PairCase.SIC_AT_R1
        assert scenario_c.sic_feasible == scenario_b.sic_feasible
        assert scenario_c.gain == pytest.approx(scenario_b.gain)

    def test_case_d_requires_both(self):
        rss = PairRss(s11=1e-11, s12=1e-8, s21=1e-8, s22=1e-11)
        rates_ok = DiscretePairRates(
            clean_1=mbps(6), clean_2=mbps(6),
            interfered_11=mbps(6), interfered_21=mbps(9),
            interfered_22=mbps(6), interfered_12=mbps(9))
        assert evaluate_discrete_pair(L, rss, rates_ok).sic_feasible
        rates_bad = DiscretePairRates(
            clean_1=mbps(6), clean_2=mbps(6),
            interfered_11=mbps(6), interfered_21=mbps(9),
            interfered_22=mbps(6), interfered_12=0.0)
        assert not evaluate_discrete_pair(L, rss, rates_bad).sic_feasible

    def test_gain_clipped_at_one(self):
        # Feasible but SIC slower than serial: gain reported as 1.
        rates = DiscretePairRates(
            clean_1=mbps(54), clean_2=mbps(54),
            interfered_11=mbps(6), interfered_21=mbps(6),
            interfered_22=mbps(6), interfered_12=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert scenario.sic_feasible
        assert scenario.gain == 1.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            DiscretePairRates(-1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class TestDiscretePacking:
    def make(self, **kwargs):
        defaults = dict(clean_1=mbps(54), clean_2=mbps(24),
                        interfered_11=mbps(12), interfered_21=mbps(18),
                        interfered_22=mbps(6), interfered_12=mbps(6))
        defaults.update(kwargs)
        return DiscretePairRates(**defaults)

    def test_packing_at_least_plain_gain(self):
        rates = self.make()
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert discrete_packing_gain(L, scenario, rates) >= scenario.gain

    def test_packing_rescues_strictly_infeasible_scenario(self):
        # interfered_11 > interfered_21 makes plain SIC infeasible, but
        # T1 can drop to interfered_21 and let T2 pack packets.
        rates = self.make(interfered_11=mbps(24), interfered_21=mbps(12))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert not scenario.sic_feasible
        gain = discrete_packing_gain(L, scenario, rates)
        assert gain > 1.0

    def test_packing_never_below_one(self):
        rates = self.make(interfered_11=mbps(6), interfered_21=mbps(6))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert discrete_packing_gain(L, scenario, rates) >= 1.0

    def test_no_packing_in_case_a(self):
        rss = PairRss(s11=1e-9, s12=1e-11, s21=1e-11, s22=1e-9)
        rates = self.make()
        scenario = evaluate_discrete_pair(L, rss, rates)
        assert discrete_packing_gain(L, scenario, rates) == scenario.gain

    def test_dead_links_fall_back(self):
        rates = self.make(interfered_21=0.0)
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        assert discrete_packing_gain(L, scenario, rates) == scenario.gain

    def test_free_concurrency_reaches_high_gain(self):
        # Discrete slack absorbs the interference entirely: both links
        # keep their clean rates, so packing k packets approaches the
        # serial time of the same mix over the slow packet alone.
        rates = self.make(clean_1=mbps(6), clean_2=mbps(54),
                          interfered_11=mbps(6), interfered_21=mbps(6),
                          interfered_22=mbps(54))
        scenario = evaluate_discrete_pair(L, case_b_rss(), rates)
        gain = discrete_packing_gain(L, scenario, rates)
        # slow 6 Mbps packet shelters 8 packets at 54 Mbps.
        expected = (L / mbps(6) + 8 * L / mbps(54)) / (L / mbps(6))
        assert gain == pytest.approx(expected)
