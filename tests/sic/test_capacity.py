"""Capacity tests (paper Eqs. 3-4, Figs. 2-3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.capacity import (
    capacity_gain,
    capacity_with_sic,
    capacity_with_sic_closed_form,
    capacity_without_sic,
    rate_region_corners,
)

power = st.floats(min_value=1e-14, max_value=1e-4)


class TestEq3:
    def test_max_of_individuals(self, channel):
        c = capacity_without_sic(channel, 1e-9, 1e-12)
        assert c == pytest.approx(channel.rate(1e-9))

    def test_symmetric(self, channel):
        assert capacity_without_sic(channel, 1e-9, 1e-12) == \
            capacity_without_sic(channel, 1e-12, 1e-9)


class TestEq4:
    def test_telescoping_identity(self, channel):
        # B log2(1+S1/(S2+N0)) + B log2(1+S2/N0) == B log2(1+(S1+S2)/N0)
        for s1, s2 in [(1e-9, 1e-10), (5e-11, 5e-11), (1e-8, 1e-13)]:
            assert capacity_with_sic(channel, s1, s2) == pytest.approx(
                capacity_with_sic_closed_form(channel, s1, s2), rel=1e-12)

    @given(power, power)
    def test_telescoping_identity_property(self, s1, s2):
        channel = Channel()
        assert capacity_with_sic(channel, s1, s2) == pytest.approx(
            capacity_with_sic_closed_form(channel, s1, s2), rel=1e-9)

    @given(power, power)
    def test_sic_beats_either_individual(self, s1, s2):
        channel = Channel()
        c_sic = capacity_with_sic(channel, s1, s2)
        assert c_sic > channel.rate(s1)
        assert c_sic > channel.rate(s2)

    def test_argument_order_irrelevant(self, channel):
        assert capacity_with_sic(channel, 1e-9, 1e-11) == pytest.approx(
            capacity_with_sic(channel, 1e-11, 1e-9))

    def test_broadcasts(self, channel):
        out = capacity_with_sic(channel, np.array([1e-9, 1e-10]), 1e-11)
        assert out.shape == (2,)


class TestGain:
    @given(power, power)
    def test_gain_at_least_one(self, s1, s2):
        assert capacity_gain(Channel(), s1, s2) >= 1.0

    def test_equal_small_rss_gains_most(self, channel):
        n0 = channel.noise_w
        similar_small = capacity_gain(channel, 2 * n0, 2 * n0)
        similar_large = capacity_gain(channel, 1e5 * n0, 1e5 * n0)
        dissimilar = capacity_gain(channel, 1e5 * n0, 2 * n0)
        assert similar_small > similar_large
        assert similar_small > dissimilar

    def test_gain_bounded_by_two(self, channel):
        # With two signals the sum rate is at most double the best
        # individual rate (equality only as SNR -> 0 with equal RSS).
        n0 = channel.noise_w
        grid = np.asarray(capacity_gain(
            channel,
            np.logspace(-1, 5, 30)[None, :] * n0,
            np.logspace(-1, 5, 30)[:, None] * n0))
        assert grid.max() <= 2.0 + 1e-9


class TestRateRegion:
    def test_corner_rates(self, channel):
        corners = rate_region_corners(channel, 1e-9, 1e-10)
        r1_int, r2_clean = corners["1-first"]
        r1_clean, r2_int = corners["2-first"]
        assert r1_int == pytest.approx(channel.rate(1e-9, 1e-10))
        assert r2_clean == pytest.approx(channel.rate(1e-10))
        assert r1_clean == pytest.approx(channel.rate(1e-9))
        assert r2_int == pytest.approx(channel.rate(1e-10, 1e-9))

    def test_corners_have_equal_sum(self, channel):
        # Both decode orders achieve the same sum capacity.
        corners = rate_region_corners(channel, 1e-9, 1e-10)
        sum1 = sum(corners["1-first"])
        sum2 = sum(corners["2-first"])
        assert sum1 == pytest.approx(sum2, rel=1e-12)
        assert sum1 == pytest.approx(
            capacity_with_sic(channel, 1e-9, 1e-10), rel=1e-12)
