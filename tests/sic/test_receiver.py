"""SIC receiver model tests (paper Section 2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.receiver import SicReceiver, Transmission

power = st.floats(min_value=1e-13, max_value=1e-5)


@pytest.fixture
def receiver(channel):
    return SicReceiver(channel=channel)


class TestRateLimits:
    def test_eq1_matches_channel(self, receiver, channel):
        assert receiver.strong_rate_limit(1e-9, 1e-10) == pytest.approx(
            channel.rate(1e-9, 1e-10))

    def test_eq2_perfect_cancellation(self, receiver, channel):
        assert receiver.weak_rate_limit(1e-9, 1e-10) == pytest.approx(
            channel.rate(1e-10, 0.0))

    def test_imperfect_cancellation_residue(self, channel):
        rx = SicReceiver(channel=channel, cancellation_efficiency=0.99)
        residue = rx.residual_power_w(1e-9)
        assert residue == pytest.approx(1e-11)
        assert rx.weak_rate_limit(1e-9, 1e-10) == pytest.approx(
            channel.rate(1e-10, residue))

    def test_imperfection_lowers_weak_limit(self, channel):
        perfect = SicReceiver(channel=channel)
        imperfect = SicReceiver(channel=channel,
                                cancellation_efficiency=0.9)
        assert imperfect.weak_rate_limit(1e-9, 1e-10) < \
            perfect.weak_rate_limit(1e-9, 1e-10)

    def test_bad_efficiency_rejected(self, channel):
        with pytest.raises(ValueError):
            SicReceiver(channel=channel, cancellation_efficiency=1.5)

    def test_feasible_rate_pair_order(self, receiver):
        rate_a, rate_b = receiver.feasible_rate_pair(1e-9, 1e-10)
        assert rate_a == receiver.strong_rate_limit(1e-9, 1e-10)
        assert rate_b == receiver.weak_rate_limit(1e-9, 1e-10)
        # Reversed argument order returns the same limits swapped.
        rate_b2, rate_a2 = receiver.feasible_rate_pair(1e-10, 1e-9)
        assert (rate_a2, rate_b2) == (rate_a, rate_b)

    @given(power, power)
    def test_weak_can_outrate_strong(self, a, b):
        # The paper's "interesting" observation: the stronger signal's
        # feasible rate may be LOWER than the weaker one's.
        rx = SicReceiver(channel=Channel(bandwidth_hz=1e6, noise_w=1e-13))
        strong, weak = max(a, b), min(a, b)
        limit_strong = rx.strong_rate_limit(strong, weak)
        limit_weak = rx.weak_rate_limit(strong, weak)
        # Not an inequality that always holds; just check both positive
        # and that similar powers produce the inversion.
        assert limit_strong > 0 and limit_weak > 0
        if weak > 0.5 * strong and strong / rx.channel.noise_w > 10:
            assert limit_strong < limit_weak


class TestDecoding:
    def test_single_clean_decode(self, receiver, channel):
        limit = channel.rate(1e-10)
        assert receiver.decode_single(Transmission(1e-10, limit * 0.99))
        assert not receiver.decode_single(Transmission(1e-10, limit * 1.01))

    def test_single_with_interference(self, receiver, channel):
        limit = channel.rate(1e-10, 1e-11)
        tx = Transmission(1e-10, limit * 0.99)
        assert receiver.decode_single(tx, interference_w=1e-11)

    def test_collision_both_at_limits_decode(self, receiver):
        strong_limit = receiver.strong_rate_limit(1e-9, 1e-10)
        weak_limit = receiver.weak_rate_limit(1e-9, 1e-10)
        outcome = receiver.resolve_collision(
            Transmission(1e-9, strong_limit, "s"),
            Transmission(1e-10, weak_limit, "w"))
        assert outcome.collision_resolved
        assert outcome.strong.label == "s"
        assert outcome.weak.label == "w"

    def test_strong_too_fast_kills_both(self, receiver):
        # "If T1 transmits at a rate higher than r1, it can not be
        # decoded ... consequently it can not decode T2's signal either"
        strong_limit = receiver.strong_rate_limit(1e-9, 1e-10)
        outcome = receiver.resolve_collision(
            Transmission(1e-9, strong_limit * 1.01, "s"),
            Transmission(1e-10, 1e3, "w"))
        assert not outcome.decoded_strong
        assert not outcome.decoded_weak

    def test_weak_too_fast_only_strong_decodes(self, receiver):
        strong_limit = receiver.strong_rate_limit(1e-9, 1e-10)
        weak_limit = receiver.weak_rate_limit(1e-9, 1e-10)
        outcome = receiver.resolve_collision(
            Transmission(1e-9, strong_limit, "s"),
            Transmission(1e-10, weak_limit * 1.01, "w"))
        assert outcome.decoded_strong
        assert not outcome.decoded_weak
        assert outcome.decoded_count == 1

    def test_sic_disabled_never_decodes_weak(self, channel):
        rx = SicReceiver(channel=channel, sic_enabled=False)
        strong_limit = rx.strong_rate_limit(1e-9, 1e-10)
        outcome = rx.resolve_collision(
            Transmission(1e-9, strong_limit, "s"),
            Transmission(1e-10, 1.0, "w"))
        assert outcome.decoded_strong
        assert not outcome.decoded_weak

    def test_argument_order_irrelevant(self, receiver):
        strong_limit = receiver.strong_rate_limit(1e-9, 1e-10)
        weak_limit = receiver.weak_rate_limit(1e-9, 1e-10)
        a = Transmission(1e-9, strong_limit, "s")
        b = Transmission(1e-10, weak_limit, "w")
        assert receiver.resolve_collision(a, b).collision_resolved
        assert receiver.resolve_collision(b, a).collision_resolved

    def test_can_resolve_both_helper(self, receiver):
        strong_limit = receiver.strong_rate_limit(1e-9, 1e-10)
        weak_limit = receiver.weak_rate_limit(1e-9, 1e-10)
        assert receiver.can_resolve_both(1e-9, strong_limit,
                                         1e-10, weak_limit)
        assert not receiver.can_resolve_both(1e-9, strong_limit * 2,
                                             1e-10, weak_limit)

    def test_equal_powers_low_rate_resolves(self, receiver):
        # At exactly equal powers the Eq. 1 SINR is ~1 (rate ~ B), so
        # slow enough transmissions still decode.
        rate = receiver.strong_rate_limit(1e-10, 1e-10)
        outcome = receiver.resolve_collision(
            Transmission(1e-10, rate, "a"),
            Transmission(1e-10, rate, "b"))
        assert outcome.decoded_strong

    @given(power, power)
    def test_outcome_labels_track_power(self, a, b):
        rx = SicReceiver(channel=Channel())
        outcome = rx.resolve_collision(Transmission(a, 1.0, "a"),
                                       Transmission(b, 1.0, "b"))
        assert outcome.strong.power_w >= outcome.weak.power_w


class TestTransmission:
    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            Transmission(0.0, 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Transmission(1.0, 0.0)
