"""Airtime/completion-time tests (paper Eqs. 5, 6, 10; Figs. 4 and 8)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.airtime import (
    download_gain_two_aps_one_client,
    optimal_weak_power_ratio,
    sic_gain_same_receiver,
    z_serial_download,
    z_serial_same_receiver,
    z_sic_same_receiver,
)

power = st.floats(min_value=1e-13, max_value=1e-5)
L = 12_000.0


class TestEq5Serial:
    def test_sum_of_clean_airtimes(self, channel):
        z = z_serial_same_receiver(channel, L, 1e-9, 1e-10)
        expected = L / channel.rate(1e-9) + L / channel.rate(1e-10)
        assert z == pytest.approx(expected)

    def test_symmetric(self, channel):
        assert z_serial_same_receiver(channel, L, 1e-9, 1e-10) == \
            pytest.approx(z_serial_same_receiver(channel, L, 1e-10, 1e-9))

    def test_rejects_bad_packet(self, channel):
        with pytest.raises(ValueError):
            z_serial_same_receiver(channel, 0.0, 1e-9, 1e-10)


class TestEq6Sic:
    def test_max_of_two_terms(self, channel):
        z = z_sic_same_receiver(channel, L, 1e-9, 1e-10)
        t_strong = L / channel.rate(1e-9, 1e-10)
        t_weak = L / channel.rate(1e-10)
        assert z == pytest.approx(max(t_strong, t_weak))

    def test_auto_ordering(self, channel):
        assert z_sic_same_receiver(channel, L, 1e-10, 1e-9) == \
            pytest.approx(z_sic_same_receiver(channel, L, 1e-9, 1e-10))

    @given(power, power)
    def test_equal_rate_point_minimises_z(self, s_strong_raw, _unused):
        # At the closed-form equal-rate weak RSS, Z+SIC is minimal over
        # the weak RSS for a fixed strong RSS.
        channel = Channel()
        strong = max(s_strong_raw, 10 * channel.noise_w)
        opt = optimal_weak_power_ratio(channel, strong)
        z_opt = z_sic_same_receiver(channel, L, strong, opt)
        for factor in (0.5, 0.9, 1.1, 2.0):
            weak = min(opt * factor, strong)
            assert z_opt <= z_sic_same_receiver(channel, L, strong, weak) \
                + 1e-12


class TestOptimalWeakRss:
    def test_equalises_rates(self, channel):
        strong = 1e-9
        weak = optimal_weak_power_ratio(channel, strong)
        r_strong = channel.rate(strong, weak)
        r_weak = channel.rate(weak)
        assert r_strong == pytest.approx(r_weak, rel=1e-9)

    def test_square_rule_in_snr(self, channel):
        # "S1 is roughly the square of S2" (twice in dB): for strong
        # SNR x^2, the optimal weak SNR is close to x (high SNR limit).
        n0 = channel.noise_w
        strong_snr = 1e6
        weak = optimal_weak_power_ratio(channel, strong_snr * n0)
        weak_snr = weak / n0
        assert weak_snr == pytest.approx(math.sqrt(strong_snr), rel=0.01)

    def test_rejects_nonpositive(self, channel):
        with pytest.raises(ValueError):
            optimal_weak_power_ratio(channel, 0.0)


class TestFig4Gain:
    def test_gain_at_equal_rate_point_is_peak(self, channel):
        n0 = channel.noise_w
        strong = 1e4 * n0
        opt = optimal_weak_power_ratio(channel, strong)
        g_opt = sic_gain_same_receiver(channel, L, strong, opt)
        g_near = sic_gain_same_receiver(channel, L, strong, opt * 3)
        g_far = sic_gain_same_receiver(channel, L, strong, opt / 3)
        assert g_opt > g_near
        assert g_opt > g_far

    def test_gain_below_two(self, channel):
        n0 = channel.noise_w
        s = np.logspace(0, 5, 25) * n0
        g = sic_gain_same_receiver(channel, L, s[None, :], s[:, None])
        assert np.max(g) <= 2.0

    def test_equal_rss_can_lose(self, channel):
        # Two equal, strong signals: SIC's interference-limited rate is
        # ~B while serial rates are high, so Z+SIC > Z-SIC (gain < 1).
        n0 = channel.noise_w
        g = sic_gain_same_receiver(channel, L, 1e6 * n0, 1e6 * n0)
        assert g < 1.0


class TestEq10Download:
    def test_stronger_ap_sends_both(self, channel):
        z = z_serial_download(channel, L, 1e-9, 1e-11)
        assert z == pytest.approx(2 * L / channel.rate(1e-9))

    def test_symmetric(self, channel):
        assert z_serial_download(channel, L, 1e-9, 1e-11) == \
            pytest.approx(z_serial_download(channel, L, 1e-11, 1e-9))

    def test_download_baseline_beats_upload_baseline(self, channel):
        # Sending both packets via the stronger AP is never slower than
        # one packet from each transmitter serially.
        assert z_serial_download(channel, L, 1e-9, 1e-11) <= \
            z_serial_same_receiver(channel, L, 1e-9, 1e-11)


class TestFig8Gain:
    @given(power, power)
    def test_download_gain_below_upload_gain(self, s1, s2):
        channel = Channel()
        down = download_gain_two_aps_one_client(channel, L, s1, s2)
        up = sic_gain_same_receiver(channel, L, s1, s2)
        assert down <= up + 1e-12

    def test_overall_gains_limited(self, channel):
        # "very little benefit from SIC" — max well under the Fig. 4 peak.
        n0 = channel.noise_w
        s = np.logspace(0, 5, 40) * n0
        g = download_gain_two_aps_one_client(channel, L,
                                             s[None, :], s[:, None])
        assert np.max(g) < 1.5
