"""k-signal successive cancellation tests (the paper's extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel, shannon_rate
from repro.sic.ksic import (
    SuccessiveReceiver,
    capacity_with_ksic,
    equal_rate_group_powers,
    ksic_uplink_gain,
    successive_rate_limits,
    z_ksic_uplink,
    z_serial_uplink,
)
from repro.sic.receiver import SicReceiver, Transmission

L = 12_000.0
power_lists = st.lists(st.floats(min_value=1e-13, max_value=1e-5),
                       min_size=1, max_size=6)


class TestRateLimits:
    def test_empty(self, channel):
        assert successive_rate_limits(channel, []) == []

    def test_single_signal_is_clean(self, channel):
        (rate,) = successive_rate_limits(channel, [1e-9])
        assert rate == pytest.approx(channel.rate(1e-9))

    def test_two_signals_match_pair_receiver(self, channel):
        # k = 2 must reduce exactly to the paper's two-signal model.
        receiver = SicReceiver(channel=channel)
        rates = successive_rate_limits(channel, [1e-9, 1e-11])
        assert rates[0] == pytest.approx(
            receiver.strong_rate_limit(1e-9, 1e-11))
        assert rates[1] == pytest.approx(
            receiver.weak_rate_limit(1e-9, 1e-11))

    def test_input_order_preserved(self, channel):
        rates_fwd = successive_rate_limits(channel, [1e-11, 1e-9])
        rates_rev = successive_rate_limits(channel, [1e-9, 1e-11])
        assert rates_fwd[0] == pytest.approx(rates_rev[1])
        assert rates_fwd[1] == pytest.approx(rates_rev[0])

    @settings(max_examples=60, deadline=None)
    @given(power_lists)
    def test_telescoping_identity(self, powers):
        # sum of successive rates == capacity of a single transmitter
        # at the summed power (the k-user Eq. 4 identity).
        channel = Channel()
        total = capacity_with_ksic(channel, powers)
        closed = shannon_rate(channel.bandwidth_hz, sum(powers), 0.0,
                              channel.noise_w)
        assert total == pytest.approx(closed, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(power_lists)
    def test_imperfection_only_hurts(self, powers):
        channel = Channel()
        perfect = capacity_with_ksic(channel, powers, 1.0)
        lossy = capacity_with_ksic(channel, powers, 0.9)
        assert lossy <= perfect + 1e-6

    def test_rejects_nonpositive_power(self, channel):
        with pytest.raises(ValueError):
            successive_rate_limits(channel, [1e-9, 0.0])


class TestUplinkTimes:
    def test_empty_group(self, channel):
        assert z_ksic_uplink(channel, L, []) == 0.0

    def test_two_signals_match_eq6(self, channel):
        from repro.sic.airtime import z_sic_same_receiver
        assert z_ksic_uplink(channel, L, [1e-9, 1e-11]) == pytest.approx(
            z_sic_same_receiver(channel, L, 1e-9, 1e-11))

    def test_serial_is_sum(self, channel):
        z = z_serial_uplink(channel, L, [1e-9, 1e-10])
        assert z == pytest.approx(L / channel.rate(1e-9)
                                  + L / channel.rate(1e-10))

    @settings(max_examples=40, deadline=None)
    @given(power_lists)
    def test_gain_bounds(self, powers):
        channel = Channel()
        gain = ksic_uplink_gain(channel, L, powers)
        assert 1.0 <= gain <= len(powers) + 1e-9


class TestEqualRateLadder:
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_all_rates_equal(self, channel, count):
        powers = equal_rate_group_powers(channel, count, 10.0)
        rates = successive_rate_limits(channel, powers)
        for rate in rates[1:]:
            assert rate == pytest.approx(rates[0], rel=1e-9)

    def test_strongest_first(self, channel):
        powers = equal_rate_group_powers(channel, 4, 5.0)
        assert powers == sorted(powers, reverse=True)

    def test_k2_matches_pair_closed_form(self, channel):
        from repro.techniques.power_control import equal_rate_weak_rss
        strong, weak = equal_rate_group_powers(channel, 2, 10.0)
        assert weak == pytest.approx(10.0 * channel.noise_w)
        # The pair closed form inverts: given this strong RSS, the
        # equal-rate weak RSS is our weak level.
        assert equal_rate_weak_rss(channel, strong) == pytest.approx(
            weak, rel=1e-9)

    def test_gain_approaches_k(self, channel):
        # At low SNR the ladder's group gain approaches the group size.
        powers = equal_rate_group_powers(channel, 3, 0.05)
        gain = ksic_uplink_gain(channel, L, powers)
        assert gain > 2.5

    def test_rejects_bad_count(self, channel):
        with pytest.raises(ValueError):
            equal_rate_group_powers(channel, 0, 1.0)


class TestSuccessiveReceiver:
    def make_group(self, channel, count=3):
        powers = equal_rate_group_powers(channel, count, 10.0)
        rates = successive_rate_limits(channel, powers)
        return [Transmission(p, r, f"t{i}")
                for i, (p, r) in enumerate(zip(powers, rates))]

    def test_decodes_full_ladder(self, channel):
        receiver = SuccessiveReceiver(channel=channel)
        outcome = receiver.resolve(self.make_group(channel))
        assert outcome.all_decoded
        assert outcome.decode_order == ("t0", "t1", "t2")

    def test_empty(self, channel):
        outcome = SuccessiveReceiver(channel=channel).resolve([])
        assert outcome.decoded == ()
        assert not outcome.all_decoded

    def test_cancellation_cap(self, channel):
        receiver = SuccessiveReceiver(channel=channel, max_cancellations=1)
        outcome = receiver.resolve(self.make_group(channel, 3))
        assert outcome.decoded_count == 2  # the paper's receiver

    def test_zero_cancellations_is_capture_only(self, channel):
        receiver = SuccessiveReceiver(channel=channel, max_cancellations=0)
        outcome = receiver.resolve(self.make_group(channel, 3))
        assert outcome.decoded_count == 1

    def test_chain_aborts_at_first_failure(self, channel):
        group = self.make_group(channel, 3)
        # Overdrive the middle (second-strongest) signal's rate.
        broken = [group[0],
                  Transmission(group[1].power_w, group[1].rate_bps * 1.2,
                               "t1"),
                  group[2]]
        outcome = SuccessiveReceiver(channel=channel).resolve(broken)
        assert outcome.decoded == (True, False, False)

    def test_imperfect_residue_breaks_deep_layers(self, channel):
        group = self.make_group(channel, 3)
        lossy = SuccessiveReceiver(channel=channel,
                                   cancellation_efficiency=0.9)
        outcome = lossy.resolve(group)
        assert not outcome.all_decoded

    def test_rejects_negative_cap(self, channel):
        with pytest.raises(ValueError):
            SuccessiveReceiver(channel=channel, max_cancellations=-1)
