"""Property tests: the batched scenario classifier vs the scalar one.

``evaluate_pair_scenarios_batch`` must agree with
``evaluate_pair_scenario`` on every element — case letter, feasibility,
both completion times, and the clipped gain — for arbitrary positive
RSS quadruples spanning the whole SNR range the sweeps produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.scenarios import (
    CASE_ORDER,
    PairRss,
    classify_pair_case,
    classify_pair_cases_batch,
    evaluate_pair_scenario,
    evaluate_pair_scenarios_batch,
)

rss = st.floats(min_value=1e-16, max_value=1e-4)
L = 12_000.0


@pytest.fixture(scope="module")
def channel():
    return Channel()


class TestClassifierAgreement:
    @settings(max_examples=200, deadline=None)
    @given(rss, rss, rss, rss)
    def test_case_codes_match_scalar(self, s11, s12, s21, s22):
        code = classify_pair_cases_batch(np.asarray([s11]), np.asarray([s12]),
                                         np.asarray([s21]), np.asarray([s22]))
        assert CASE_ORDER[int(code[0])] is classify_pair_case(
            PairRss(s11, s12, s21, s22))

    def test_code_order_is_fig5_letter_order(self):
        assert [case.value for case in CASE_ORDER] == ["a", "b", "c", "d"]


class TestEvaluationAgreement:
    @settings(max_examples=200, deadline=None)
    @given(rss, rss, rss, rss)
    def test_elementwise_match(self, channel, s11, s12, s21, s22):
        scalar = evaluate_pair_scenario(channel, L,
                                        PairRss(s11, s12, s21, s22))
        batch = evaluate_pair_scenarios_batch(
            channel, L, np.asarray([s11]), np.asarray([s12]),
            np.asarray([s21]), np.asarray([s22]))
        element = batch.scenario(0)
        assert element.case is scalar.case
        assert element.sic_feasible == scalar.sic_feasible
        assert element.z_serial_s == pytest.approx(scalar.z_serial_s,
                                                   rel=1e-12)
        assert element.z_sic_s == pytest.approx(scalar.z_sic_s, rel=1e-12)
        assert batch.gains[0] == pytest.approx(scalar.gain, rel=1e-12)

    def test_whole_array_agreement(self, channel):
        generator = np.random.default_rng(99)
        # Log-uniform RSS over 12 decades: hits every case and both
        # feasibility outcomes.
        s = 10.0 ** generator.uniform(-16, -4, size=(4, 4000))
        batch = evaluate_pair_scenarios_batch(channel, L, *s)
        for k in range(0, 4000, 97):
            scalar = evaluate_pair_scenario(
                channel, L, PairRss(*(float(s[i, k]) for i in range(4))))
            assert batch.scenario(k).case is scalar.case
            assert bool(batch.sic_feasible[k]) == scalar.sic_feasible
            assert batch.gains[k] == pytest.approx(scalar.gain, rel=1e-12)

    def test_case_fractions_sum_to_one(self, channel):
        generator = np.random.default_rng(7)
        s = 10.0 ** generator.uniform(-14, -5, size=(4, 1000))
        fractions = evaluate_pair_scenarios_batch(channel, L,
                                                  *s).case_fractions()
        assert sum(fractions[c] for c in "abcd") == pytest.approx(1.0)
        assert 0.0 <= fractions["feasible"] <= 1.0

    def test_rejects_nonpositive_rss(self, channel):
        good = np.asarray([1e-9])
        with pytest.raises(ValueError):
            evaluate_pair_scenarios_batch(channel, L, np.asarray([0.0]),
                                          good, good, good)

    def test_gains_clipped_at_one(self, channel):
        generator = np.random.default_rng(11)
        s = 10.0 ** generator.uniform(-14, -5, size=(4, 1000))
        assert np.all(evaluate_pair_scenarios_batch(channel, L,
                                                    *s).gains >= 1.0)
