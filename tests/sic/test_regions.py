"""Two-user rate-region tests (Fig. 2's pentagon vs TDMA triangle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.shannon import Channel
from repro.sic.capacity import capacity_with_sic, rate_region_corners
from repro.sic.regions import TwoUserRegion, two_user_region

power = st.floats(min_value=1e-13, max_value=1e-5)


@pytest.fixture
def region(channel):
    return two_user_region(channel, 1e-9, 1e-10)


class TestConstruction:
    def test_capacities_match_channel(self, channel, region):
        assert region.c1 == pytest.approx(channel.rate(1e-9))
        assert region.c2 == pytest.approx(channel.rate(1e-10))
        assert region.c_sum == pytest.approx(channel.rate(1.1e-9))

    def test_sum_capacity_equals_eq4(self, channel, region):
        assert region.c_sum == pytest.approx(
            capacity_with_sic(channel, 1e-9, 1e-10), rel=1e-12)

    def test_inconsistent_region_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            TwoUserRegion(c1=10.0, c2=10.0, c_sum=25.0)
        with pytest.raises(ValueError, match="inconsistent"):
            TwoUserRegion(c1=10.0, c2=10.0, c_sum=9.0)


class TestGeometry:
    def test_pentagon_has_five_vertices(self, region):
        assert len(region.pentagon_vertices()) == 5

    def test_corners_match_decode_orders(self, channel, region):
        corners = rate_region_corners(channel, 1e-9, 1e-10)
        vertices = region.pentagon_vertices()
        corner_a = vertices[2]   # transmitter 2 decoded first
        corner_b = vertices[3]   # transmitter 1 decoded first
        assert corner_b[0] == pytest.approx(corners["1-first"][0], rel=1e-9)
        assert corner_b[1] == pytest.approx(corners["1-first"][1], rel=1e-9)
        assert corner_a[0] == pytest.approx(corners["2-first"][0], rel=1e-9)
        assert corner_a[1] == pytest.approx(corners["2-first"][1], rel=1e-9)

    def test_corners_on_sum_rate_face(self, region):
        vertices = region.pentagon_vertices()
        for corner in (vertices[2], vertices[3]):
            assert sum(corner) == pytest.approx(region.c_sum, rel=1e-12)

    def test_dominant_face_interpolates_corners(self, region):
        face = region.dominant_face(n_points=5)
        assert len(face) == 5
        for point in face:
            assert sum(point) == pytest.approx(region.c_sum, rel=1e-9)

    def test_dominant_face_needs_two_points(self, region):
        with pytest.raises(ValueError):
            region.dominant_face(n_points=1)


class TestMembership:
    def test_corners_achievable(self, region):
        for (r1, r2) in region.pentagon_vertices():
            assert region.contains(r1, r2)

    def test_beyond_sum_rate_rejected(self, region):
        assert not region.contains(region.c1, region.c2)

    def test_tdma_midpoint(self, region):
        assert region.tdma_contains(region.c1 / 2, region.c2 / 2)
        assert not region.tdma_contains(region.c1 * 0.7, region.c2 * 0.7)

    @settings(max_examples=60, deadline=None)
    @given(power, power, st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_sic_region_contains_tdma_region(self, s1, s2, alpha, beta):
        region = two_user_region(Channel(), s1, s2)
        # Any TDMA point (time share alpha of C1 with beta-scaling).
        r1 = alpha * region.c1 * beta
        r2 = (1.0 - alpha) * region.c2 * beta
        assert region.tdma_contains(r1, r2)
        assert region.contains(r1, r2)

    def test_rejects_negative_rates(self, region):
        with pytest.raises(ValueError):
            region.contains(-1.0, 0.0)


class TestAreas:
    @settings(max_examples=60, deadline=None)
    @given(power, power)
    def test_area_advantage_at_least_one(self, s1, s2):
        region = two_user_region(Channel(), s1, s2)
        assert region.area_advantage >= 1.0 - 1e-9

    def test_advantage_larger_at_low_snr(self, channel):
        n0 = channel.noise_w
        low = two_user_region(channel, 2 * n0, 2 * n0)
        high = two_user_region(channel, 1e5 * n0, 1e5 * n0)
        assert low.area_advantage > high.area_advantage

    def test_triangle_area_formula(self, region):
        assert region.tdma_area == pytest.approx(
            region.c1 * region.c2 / 2.0, rel=1e-12)


class TestEqualRates:
    def test_sic_symmetric_rate_beats_tdma(self, region):
        assert region.max_equal_rate() >= region.tdma_max_equal_rate()

    @settings(max_examples=40, deadline=None)
    @given(power, power)
    def test_symmetric_points_achievable(self, s1, s2):
        region = two_user_region(Channel(), s1, s2)
        r = region.max_equal_rate()
        assert region.contains(r, r)
        r_tdma = region.tdma_max_equal_rate()
        assert region.tdma_contains(r_tdma, r_tdma)
