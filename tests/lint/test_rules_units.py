"""RPR0xx — unit-discipline rules."""

from pathlib import Path

from repro.lint import lint_paths

from tests.lint.conftest import FIXTURES, expected_markers, lint_found

SRC_UNITS = Path(__file__).parents[2] / "src" / "repro" / "util" / "units.py"


class TestBadUnitsFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "bad_units.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_all_three_codes(self):
        codes = {code for code, _ in expected_markers(FIXTURES / "bad_units.py")}
        assert codes == {"RPR001", "RPR002", "RPR003"}


class TestCleanUnitsFixture:
    def test_no_violations(self):
        assert lint_found(FIXTURES / "clean_units.py") == set()


class TestUnitsModuleExemption:
    def test_units_module_may_spell_out_db_math(self):
        # The one module allowed to hand-roll conversions is util/units.py
        # itself — linting it alone must stay clean.
        result = lint_paths([SRC_UNITS])
        assert [v.format_text() for v in result.violations] == []


class TestSuffixMismatchResolution:
    def test_mismatch_needs_known_signature(self, tmp_path):
        # Callee not defined in the linted file set: no signature, no flag.
        target = tmp_path / "unknown_callee.py"
        target.write_text("def caller(snr_db):\n    return external(snr_db)\n")
        assert lint_found(target) == set()

    def test_ambiguous_signatures_are_skipped(self, tmp_path):
        target = tmp_path / "ambiguous.py"
        target.write_text(
            "def f(power_w):\n"
            "    return power_w\n"
            "def g(snr_db):\n"
            "    return f(snr_db)\n"
        )
        other = tmp_path / "other.py"
        other.write_text("def f(level_db, extra):\n    return level_db\n")
        # Linted together, f() has two conflicting signatures -> skip.
        from repro.lint import lint_paths as run

        result = run([target, other])
        assert [v for v in result.violations if v.code == "RPR003"] == []
        # Linted alone, the mismatch is resolvable and fires.
        assert ("RPR003", 4) in lint_found(target)
