"""Boundary-validation fixture (RPR201).

The ``sic`` package directory makes this file count as boundary code.
"""

from repro.util.validation import check_positive


def unchecked_rate(bandwidth_hz: float, snr: float):  # expect: RPR201
    return bandwidth_hz * snr


def checked_rate(bandwidth_hz: float, snr: float):
    check_positive("bandwidth_hz", bandwidth_hz)
    check_positive("snr", snr)
    return bandwidth_hz * snr


def delegating_rate(bandwidth_hz: float):
    # Validation by delegation: checked_rate reaches the checker.
    return checked_rate(bandwidth_hz, 1.0)


def _private_helper(scale: float):
    return scale * 2.0


def no_float_contract(name: str, count: int):
    return name * count
