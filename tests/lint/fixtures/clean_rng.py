"""Seed-disciplined stochastic code the linter must accept (RPR1xx clean)."""

from repro.util.rng import make_rng, spawn_rngs


def draw(n, seed=None):
    rng = make_rng(seed)
    return rng.normal(size=n)


def draw_through_generator(n, rng):
    return rng.uniform(size=n)


def closure_inherits_seed(seed):
    rng = make_rng(seed)

    def inner():
        return rng.random()

    return inner()


def fan_out(count, trace_seed):
    return spawn_rngs(trace_seed, count)


class Sampler:
    def __init__(self, seed=None):
        self._rng = make_rng(seed)

    def sample(self, n):
        # Instance rngs were injected through a seeded constructor.
        return self._rng.random(n)
