"""Determinism-hygiene fixture (RPR3xx): wall clock + OS entropy in ``sim``."""

import os
import time
from time import time as wall_clock


def stamp_results(values):
    return {"generated_at": time.time(), "values": values}  # expect: RPR301


def stamp_results_bare(values):
    return {"generated_at": wall_clock(), "values": values}  # expect: RPR301


def entropy_seed():
    return int.from_bytes(os.urandom(8), "little")  # expect: RPR302


def measure(fn):
    # perf_counter is fine: it measures, it never feeds results.
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
