"""Durability-hygiene fixture (RPR306): raw writes to durable paths."""

import json
import os
from pathlib import Path


def save_report(path, payload):
    path.write_text(json.dumps(payload))  # expect: RPR306


def save_blob(path, blob):
    path.write_bytes(blob)  # expect: RPR306


def append_log(path, line):
    with open(path, "a", encoding="utf-8") as fh:  # expect: RPR306
        fh.write(line + "\n")


def stream_records(path, records):
    with path.open("w", encoding="utf-8") as fh:  # expect: RPR306
        for record in records:
            fh.write(json.dumps(record) + "\n")


def exclusive_create(path):
    with open(path, mode="x") as fh:  # expect: RPR306
        fh.write("once")


def update_in_place(path):
    with open(path, "r+") as fh:  # expect: RPR306
        fh.write("patch")


def read_config(path):
    # Fine: reads are not durability hazards.
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def read_default_mode(path):
    # Fine: open() defaults to read mode.
    with path.open() as fh:
        return fh.readline()


def atomic_writer(path, text):
    # Fine with the pragma: the tmp half of an atomic publish.
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_text(text)  # repro-lint: disable=RPR306
    os.replace(tmp_path, path)


def dynamic_mode(path, mode):
    # Fine: an unknowable mode is not flagged (no guessing).
    with open(path, mode) as fh:
        return fh


def unrelated_write_text(widget):
    # Flagged: the rule is name-based and cannot see types; a widget
    # method that happens to be called write_text needs the pragma.
    widget.write_text("label")  # expect: RPR306


def default_destination():
    return Path("out.json")
