"""Parity-discipline fixture: RPR401 / RPR403 / RPR405.

Lint with ``select=["RPR4"]``: the pairs here are shaped like the real
generators — the ``*_scalar`` twin is the frozen reference, the fast
path drifts in exactly the ways the parity rules must catch.  RPR402
(manifest) and RPR404 (test tree) need runner context and have their
own tests.
"""

from typing import Dict, List, Set, Tuple


def resample_scalar(trace, width, rng):
    out = []
    for point in trace:
        out.append(point * width + float(rng.normal()))
    return out


def resample(trace, scale, rng, workers):  # expect: RPR401
    total = []
    for point in trace:
        total.append(point * scale + float(rng.normal()))  # expect: RPR403
    return total


def blend_scalar(a, b, gamma=0.5):
    return a * gamma + b * (1.0 - gamma)


def blend(a, b, gamma=0.25):  # expect: RPR401
    return a * gamma + b * (1.0 - gamma)


def shift_scalar(xs, offset):
    return [x + offset for x in xs]


def shift(xs, offset, chunk=8):
    # Appended parameter with a default: frozen call sites still replay,
    # so this pair is NOT a signature drift.
    del chunk
    return [x + offset for x in xs]


def collect(pairs: Set[Tuple[int, int]],
            costs: Dict[Tuple[int, int], float]) -> List[float]:
    out: List[float] = []
    for pair in pairs:  # expect: RPR405
        out.append(costs[pair])
    unordered = [costs[p] for p in pairs]  # expect: RPR405
    for pair in sorted(pairs):
        out.append(costs[pair])
    return out + unordered
