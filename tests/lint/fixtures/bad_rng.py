"""Deliberate RNG-determinism violations (RPR1xx fixture)."""

import random  # expect: RPR102

import numpy as np

from repro.util.rng import make_rng


def draw_legacy(n):
    np.random.seed(7)  # expect: RPR101
    return np.random.uniform(size=n)  # expect: RPR101


def draw_unseeded():
    rng = np.random.default_rng()  # expect: RPR103 RPR104
    return rng.random()


def draw_without_seed_param(n):
    rng = make_rng(123)  # expect: RPR104
    return rng.normal(size=n)


def shuffle_stdlib(items):
    return random.shuffle(items)
