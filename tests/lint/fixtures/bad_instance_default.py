"""Instance-default fixture (RPR305): shared constructor-call defaults."""

from dataclasses import dataclass

DEFAULT_TABLE = ("a", "b")


@dataclass(frozen=True)
class TraceConfig:
    width_m: float = 80.0


class ErrorModel:
    pass


class Generator:
    def __init__(self, config: TraceConfig = TraceConfig(),  # expect: RPR305
                 error_model=ErrorModel()):  # expect: RPR305
        self.config = config
        self.error_model = error_model


def run(settings=TraceConfig(width_m=40.0)):  # expect: RPR305
    return settings


def run_keyword_only(*, model=ErrorModel()):  # expect: RPR305
    return model


def run_nested(configs=(TraceConfig(),)):  # expect: RPR305
    return configs


make = lambda cfg=TraceConfig(): cfg  # noqa: E731  # expect: RPR305


def run_fixed(config=None, table=DEFAULT_TABLE):
    # Fine: None default constructed inside; module constant is no call.
    return config if config is not None else TraceConfig(), table


def run_factory(items=list()):
    # Fine (for this rule): lowercase factory calls read as deliberate;
    # CamelCase constructors are the trap this rule hunts.
    return items


def run_acronym(flags=FLAGS()):
    # Fine: ALL-CAPS call targets are constants-by-convention, not
    # class constructors.
    return flags


def FLAGS():
    return 0
