"""Unit-disciplined code the linter must accept (RPR0xx clean fixture)."""

from repro.util.units import db_to_linear, linear_to_db


def takes_watts(power_w):
    return power_w * 2.0


def forward_same_units(signal_w, snr_db):
    # Same-unit forwarding is fine; base-2 exponentials are not dB math.
    return takes_watts(signal_w) + 2.0 ** (snr_db / 2.0)


def convert_at_boundary(snr_db):
    return db_to_linear(snr_db)


def report_in_db(gain_linear):
    return linear_to_db(gain_linear)
