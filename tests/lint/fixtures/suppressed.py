"""Inline-suppression fixture: pragmas silence, markers still fire."""

import math


def to_linear_allowed(snr_db):
    return 10.0 ** (snr_db / 10.0)  # repro-lint: disable=RPR001


def to_db_allowed(ratio):
    return 10.0 * math.log10(ratio)  # repro-lint: disable=all


def wrong_code_suppressed(snr_db):
    return 10.0 ** (snr_db / 10.0)  # repro-lint: disable=RPR002  # expect: RPR001


def still_flagged(snr_db):
    return 10.0 ** (snr_db / 10.0)  # expect: RPR001
