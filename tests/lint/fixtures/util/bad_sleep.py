"""Retry-path hygiene fixture (RPR303): bare sleeps in backoff loops."""

import time
from time import sleep as pause


def fetch_with_retries(fetch, attempts=3):
    for attempt in range(attempts):
        try:
            return fetch()
        except OSError:
            time.sleep(2.0 ** attempt)  # expect: RPR303
    return None


def backoff_bare(delay_s):
    pause(delay_s)  # expect: RPR303


def backoff_injected(delay_s, sleep):
    # Fine: the wait goes through an injected callable, so tests can
    # record the delay instead of serving it.
    sleep(delay_s)
