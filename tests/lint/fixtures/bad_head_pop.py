"""Queue-hygiene fixture (RPR304): quadratic head pops inside loops."""

from collections import deque


def drain(events):
    served = []
    while events:
        served.append(events.pop(0))  # expect: RPR304
    return served


def round_robin(queues):
    out = []
    for queue in queues:
        if queue:
            out.append(queue.pop(0))  # expect: RPR304
    return out


def drain_nested(batches):
    out = []
    for batch in batches:
        while batch:
            out.append(batch.pop(0))  # expect: RPR304
    return out


def drain_fast(events):
    # Fine: deque head pops are O(1).
    queue = deque(events)
    served = []
    while queue:
        served.append(queue.popleft())
    return served


def drain_lifo(stack):
    # Fine: tail pops are O(1) on a plain list.
    while stack:
        stack.pop()


def head_pop_once(events):
    # Fine: a one-off head pop outside any loop is O(n) exactly once.
    return events.pop(0)
