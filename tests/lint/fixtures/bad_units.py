"""Deliberate unit-discipline violations (RPR0xx fixture).

Never imported — the linter only parses this file.  ``# expect: CODE``
markers name the violation the test suite asserts on that exact line.
"""

import math

import numpy as np


def to_linear(snr_db):
    return 10.0 ** (snr_db / 10.0)  # expect: RPR001


def dbm_to_watts_inline(power_dbm):
    return np.power(10.0, (power_dbm - 30.0) / 10.0)  # expect: RPR001


def to_db(ratio):
    return 10.0 * math.log10(ratio)  # expect: RPR002


def negated_db(ratio):
    return -10.0 * np.log10(ratio)  # expect: RPR002


def takes_watts(power_w):
    return power_w * 2.0


def takes_db(level_db):
    return level_db + 3.0


def confused_caller(snr_db, power_w):
    a = takes_watts(snr_db)  # expect: RPR003
    b = takes_db(level_db=power_w)  # expect: RPR003
    return a, b
