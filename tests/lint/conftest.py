"""Shared helpers for the lint test suite.

Fixture modules under ``fixtures/`` carry ``# expect: CODE [CODE ...]``
markers on the exact lines where violations must fire; tests compare the
linter's ``(code, line)`` set against the parsed markers, so the
assertions pin codes *and* locations without hand-maintained numbers.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9 ]+?)\s*$")


def expected_markers(path):
    """Set of (code, line) pairs declared by ``# expect:`` markers."""
    out = set()
    for lineno, text in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(text)
        if match:
            for code in match.group(1).split():
                out.add((code, lineno))
    return out


def lint_found(path, **kwargs):
    """Lint one fixture; return its (code, line) set, asserting no errors."""
    result = lint_paths([path], **kwargs)
    assert not result.errors, [e.format_text() for e in result.errors]
    return {(v.code, v.line) for v in result.violations}


@pytest.fixture
def fixtures_dir():
    return FIXTURES
