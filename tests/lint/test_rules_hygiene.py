"""RPR3xx — determinism-hygiene rules."""

from tests.lint.conftest import FIXTURES, expected_markers, lint_found


class TestHygieneFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "sim" / "bad_clock.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_both_codes(self):
        codes = {
            code
            for code, _ in expected_markers(FIXTURES / "sim" / "bad_clock.py")
        }
        assert codes == {"RPR301", "RPR302"}


class TestSleepFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "util" / "bad_sleep.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_the_code(self):
        codes = {
            code
            for code, _ in expected_markers(FIXTURES / "util" / "bad_sleep.py")
        }
        assert codes == {"RPR303"}

    def test_injected_sleep_hook_not_flagged(self):
        # The fixture's backoff_injected() waits through an injected
        # callable; no violation may land on those lines.
        path = FIXTURES / "util" / "bad_sleep.py"
        hook_lines = {
            lineno
            for lineno, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if "sleep(delay_s)" in text and "pause" not in text
        }
        assert hook_lines
        assert not {
            line for _, line in lint_found(path) if line in hook_lines
        }


class TestHeadPopFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "bad_head_pop.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_the_code(self):
        codes = {
            code
            for code, _ in expected_markers(FIXTURES / "bad_head_pop.py")
        }
        assert codes == {"RPR304"}

    def test_popleft_and_tail_pop_not_flagged(self):
        # The fixture's drain_fast()/drain_lifo() loops pop O(1); no
        # violation may land on those lines.
        path = FIXTURES / "bad_head_pop.py"
        ok_lines = {
            lineno
            for lineno, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if "popleft()" in text or "stack.pop()" in text
        }
        assert ok_lines
        assert not {
            line for _, line in lint_found(path) if line in ok_lines
        }

    def test_head_pop_outside_loop_not_flagged(self, tmp_path):
        target = tmp_path / "tool.py"
        target.write_text(
            "def take_first(events):\n"
            "    return events.pop(0)\n"
        )
        assert lint_found(target) == set()

    def test_fires_in_any_package(self, tmp_path):
        # Unlike RPR301-303, RPR304 has no package gate: quadratic
        # drains are a defect wherever they appear.
        target = tmp_path / "tool.py"
        target.write_text(
            "def drain(q):\n"
            "    while q:\n"
            "        q.pop(0)\n"
        )
        assert lint_found(target) == {("RPR304", 3)}


class TestInstanceDefaultFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "bad_instance_default.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_the_code(self):
        codes = {
            code
            for code, _ in expected_markers(
                FIXTURES / "bad_instance_default.py")
        }
        assert codes == {"RPR305"}

    def test_constant_and_none_defaults_not_flagged(self):
        # run_fixed()/run_factory()/run_acronym() defaults are fine; no
        # violation may land on those lines.
        path = FIXTURES / "bad_instance_default.py"
        ok_lines = {
            lineno
            for lineno, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if "def run_fixed" in text or "def run_factory" in text
            or "def run_acronym" in text
        }
        assert ok_lines
        assert not {
            line for _, line in lint_found(path) if line in ok_lines
        }

    def test_fires_in_any_package(self, tmp_path):
        # Like RPR304, no package gate: a shared default instance is a
        # defect wherever it appears.
        target = tmp_path / "tool.py"
        target.write_text(
            "class Config:\n"
            "    pass\n"
            "def build(config=Config()):\n"
            "    return config\n"
        )
        assert lint_found(target) == {("RPR305", 3)}

    def test_dotted_constructor_flagged(self, tmp_path):
        target = tmp_path / "tool.py"
        target.write_text(
            "import repro.traces.synthetic as synth\n"
            "def build(config=synth.UploadTraceConfig()):\n"
            "    return config\n"
        )
        assert lint_found(target) == {("RPR305", 2)}

    def test_call_argument_inside_default_flagged(self, tmp_path):
        # The constructor hides inside a non-call default expression.
        target = tmp_path / "tool.py"
        target.write_text(
            "class Config:\n"
            "    pass\n"
            "def build(configs=[Config()]):\n"
            "    return configs\n"
        )
        assert lint_found(target) == {("RPR305", 3)}


class TestNonAtomicWriteFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "bad_nonatomic_write.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_the_code(self):
        codes = {
            code
            for code, _ in expected_markers(
                FIXTURES / "bad_nonatomic_write.py")
        }
        assert codes == {"RPR306"}

    def test_reads_and_pragma_sites_not_flagged(self):
        # read_config()/read_default_mode()/atomic_writer()/
        # dynamic_mode() must stay clean: reads, unknowable modes, and
        # the pragma-carrying tmp write of an atomic publish.
        path = FIXTURES / "bad_nonatomic_write.py"
        ok_lines = {
            lineno
            for lineno, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if '"r"' in text or "path.open()" in text
            or "disable=RPR306" in text or "open(path, mode)" in text
        }
        assert ok_lines
        assert not {
            line for _, line in lint_found(path) if line in ok_lines
        }

    def test_fires_in_any_package(self, tmp_path):
        # Like RPR304/305, no package gate: a torn-on-crash write is a
        # defect wherever it appears.
        target = tmp_path / "tool.py"
        target.write_text(
            "def save(path, text):\n"
            "    path.write_text(text)\n"
        )
        assert lint_found(target) == {("RPR306", 2)}

    def test_keyword_write_mode_flagged(self, tmp_path):
        target = tmp_path / "tool.py"
        target.write_text(
            "def save(path):\n"
            "    return open(path, mode='wb')\n"
        )
        assert lint_found(target) == {("RPR306", 2)}


class TestScopeOfRule:
    def test_wall_clock_fine_outside_result_pipelines(self, tmp_path):
        target = tmp_path / "tool.py"
        target.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert lint_found(target) == set()

    def test_bare_sleep_fine_outside_retry_packages(self, tmp_path):
        target = tmp_path / "tool.py"
        target.write_text(
            "import time\n"
            "def nap():\n"
            "    time.sleep(1.0)\n"
        )
        assert lint_found(target) == set()

    def test_perf_counter_allowed_in_sim(self):
        # The fixture's measure() helper uses perf_counter; no violation
        # may land on those lines.
        path = FIXTURES / "sim" / "bad_clock.py"
        perf_lines = {
            lineno
            for lineno, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if "perf_counter" in text
        }
        assert perf_lines
        assert not {
            line for _, line in lint_found(path) if line in perf_lines
        }
