"""Inline ``# repro-lint: disable=...`` pragmas."""

from repro.lint.context import parse_suppressions

from tests.lint.conftest import FIXTURES, expected_markers, lint_found


class TestSuppressedFixture:
    def test_only_marked_lines_fire(self):
        # Two pragma'd conversions stay silent; the wrong-code pragma and
        # the bare violation still fire.
        path = FIXTURES / "suppressed.py"
        found = lint_found(path)
        assert found == expected_markers(path)
        assert len(found) == 2
        assert {code for code, _ in found} == {"RPR001"}


class TestPragmaParsing:
    def test_single_code(self):
        got = parse_suppressions("x = 1  # repro-lint: disable=RPR001\n")
        assert got == {1: frozenset({"RPR001"})}

    def test_multiple_codes_and_whitespace(self):
        got = parse_suppressions(
            "y = 2  # repro-lint: disable=RPR001, RPR103\n"
        )
        assert got == {1: frozenset({"RPR001", "RPR103"})}

    def test_disable_all(self):
        got = parse_suppressions("z = 3  # repro-lint: disable=all\n")
        assert got == {1: frozenset({"all"})}

    def test_plain_comments_are_not_pragmas(self):
        assert parse_suppressions("a = 4  # mentions RPR001 only\n") == {}
