"""RPR4xx — frozen-reference / fast-path parity rules.

Three layers: the drift fixture pins RPR401/403/405 codes and lines,
the index tests pin pair discovery on synthetic trees *and* on the real
``src/repro`` tree (every shipped pair must be found), and the manifest
tests pin the freeze / check / re-freeze lifecycle of RPR402 plus the
golden-test requirement of RPR404.
"""

import ast
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.index import (
    ProjectIndex,
    discover_parity_pairs,
    frozen_digest,
    parity_def_of,
)
from repro.lint.manifest import ManifestError, load_manifest, save_manifest
from repro.lint.runner import collect_frozen_digests, parse_contexts

from tests.lint.conftest import FIXTURES, expected_markers, lint_found

SRC = Path(__file__).parents[2] / "src" / "repro"
MANIFEST = SRC / "lint" / "frozen_manifest.json"

#: Every frozen reference shipped in ``src/repro`` — the acceptance
#: criterion: the parity index must discover each of these pairs.
SHIPPED_SCALAR_KEYS = {
    "repro.architectures.ewlan::evaluate_ewlan_cross_pairs_scalar",
    "repro.architectures.mesh::sweep_chain_geometries_scalar",
    "repro.architectures.residential::evaluate_residential_rows_scalar",
    "repro.experiments.fig13::compute_scalar",
    "repro.experiments.fig14::compute_scalar",
    "repro.experiments.fig7::compute_scalar",
    "repro.experiments.montecarlo::one_receiver_technique_gains_scalar",
    "repro.experiments.montecarlo::two_receiver_scenarios_scalar",
    "repro.experiments.montecarlo::two_receiver_technique_gains_scalar",
    "repro.scheduling.matching_scalar::matching_cost_scalar",
    "repro.scheduling.matching_scalar::max_weight_matching_scalar",
    "repro.scheduling.matching_scalar::min_weight_perfect_matching_scalar",
    "repro.scheduling.online::_arrival_times_scalar",
    "repro.scheduling.scheduler::SicScheduler.build_cost_graph_scalar",
    "repro.scheduling.scheduler::SicScheduler.schedule_scalar",
    "repro.sim.wlan::UplinkSimulator.plan_schedule_scalar",
    "repro.traces.downlink::DownlinkTraceGenerator.generate_scalar",
    "repro.traces.synthetic::UploadTraceGenerator.generate_scalar",
}

#: A minimal fast/frozen pair used by the manifest lifecycle tests.
PAIR_SOURCE = '''\
def gain_scalar(x, n):
    """Frozen reference."""
    total = 0.0
    for k in range(n):
        total += x * k
    return total


def gain(x, n):
    return x * n * (n - 1) / 2.0
'''


def _build_index(paths, **kwargs):
    contexts, errors = parse_contexts(paths)
    assert not errors, [e.format_text() for e in errors]
    return ProjectIndex.build(
        ((ctx.module, ctx.tree) for ctx in contexts), **kwargs
    )


class TestParityDriftFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "parity_drift.py"
        assert lint_found(path, select=["RPR4"]) == expected_markers(path)

    def test_markers_cover_the_self_contained_codes(self):
        codes = {
            code
            for code, _ in expected_markers(FIXTURES / "parity_drift.py")
        }
        assert codes == {"RPR401", "RPR403", "RPR405"}

    def test_sorted_iteration_never_flags(self, tmp_path):
        target = tmp_path / "sorted_ok.py"
        target.write_text(
            "def tally(pairs: set, costs):\n"
            "    total = 0.0\n"
            "    for pair in sorted(pairs):\n"
            "        total += costs[pair]\n"
            "    return total\n"
        )
        assert lint_found(target, select=["RPR405"]) == set()


class TestParityPairDiscovery:
    def test_same_module_method_pairs(self):
        tree = ast.parse(
            "class Gen:\n"
            "    def generate(self, seed):\n"
            "        return 1\n"
            "    def generate_scalar(self, seed):\n"
            "        return 1\n"
        )
        defs = [
            parity_def_of(node, "mod", "Gen")
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        ]
        pairs = discover_parity_pairs(defs)
        assert len(pairs) == 1
        assert pairs[0].fast.qualname == "Gen.generate"
        assert pairs[0].scalar.qualname == "Gen.generate_scalar"

    def test_cross_module_top_level_pair(self):
        fast = parity_def_of(
            ast.parse("def solve(a):\n    return a\n").body[0], "pkg.solve", ""
        )
        scalar = parity_def_of(
            ast.parse("def solve_scalar(a):\n    return a\n").body[0],
            "pkg.solve_ref",
            "",
        )
        pairs = discover_parity_pairs([fast, scalar])
        assert len(pairs) == 1
        assert pairs[0].fast.module == "pkg.solve"
        assert pairs[0].scalar.module == "pkg.solve_ref"

    def test_ambiguous_cross_module_pair_is_dropped(self):
        # Two candidate fast paths in different modules: matching either
        # would be a guess, so the scalar def pairs with neither.
        defs = [
            parity_def_of(
                ast.parse("def solve(a):\n    return a\n").body[0], "m1", ""
            ),
            parity_def_of(
                ast.parse("def solve(a):\n    return a\n").body[0], "m2", ""
            ),
            parity_def_of(
                ast.parse("def solve_scalar(a):\n    return a\n").body[0],
                "m3",
                "",
            ),
        ]
        assert discover_parity_pairs(defs) == ()

    def test_real_tree_discovers_every_shipped_pair(self):
        index = _build_index([SRC])
        scalar_keys = {pair.scalar.key for pair in index.parity_pairs}
        assert scalar_keys == SHIPPED_SCALAR_KEYS


class TestFrozenDigest:
    def _digest_of(self, source):
        return frozen_digest(ast.parse(source).body[0])

    def test_comments_whitespace_docstrings_do_not_move_the_digest(self):
        base = self._digest_of(
            "def f_scalar(x):\n    return x + 1\n"
        )
        cosmetic = self._digest_of(
            "def f_scalar(x):\n"
            '    """Docstring added later."""\n'
            "    # a comment\n"
            "    return x + 1\n"
        )
        assert base == cosmetic

    def test_any_code_token_moves_the_digest(self):
        base = self._digest_of("def f_scalar(x):\n    return x + 1\n")
        for mutated in (
            "def f_scalar(x):\n    return x + 2\n",
            "def f_scalar(x):\n    return x - 1\n",
            "def f_scalar(y):\n    return y + 1\n",
        ):
            assert self._digest_of(mutated) != base


class TestFrozenManifest:
    def _freeze(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(PAIR_SOURCE)
        manifest = tmp_path / "frozen.json"
        save_manifest(manifest, collect_frozen_digests([mod]))
        return mod, manifest

    def test_round_trip_is_clean_on_untouched_tree(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert result.clean

    def test_cosmetic_edit_stays_clean(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        mod.write_text(
            PAIR_SOURCE.replace(
                '"""Frozen reference."""',
                '"""Frozen reference (reworded docstring)."""\n'
                "    # clarifying comment",
            )
        )
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert result.clean

    def test_one_token_mutation_names_function_and_digests(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        mod.write_text(PAIR_SOURCE.replace("total += x * k", "total += x + k"))
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert [v.code for v in result.violations] == ["RPR402"]
        message = result.violations[0].message
        assert "gain_scalar" in message and "drifted" in message
        old = load_manifest(manifest)["mod::gain_scalar"]
        assert old[:12] in message  # the manifest digest is quoted

    def test_unregistered_scalar_is_flagged(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        mod.write_text(
            PAIR_SOURCE + "\n\ndef extra_scalar(v):\n    return v\n"
        )
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert [v.code for v in result.violations] == ["RPR402"]
        assert "extra_scalar" in result.violations[0].message
        assert "--update-frozen" in result.violations[0].message

    def test_stale_manifest_entry_is_flagged_at_the_manifest(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        mod.write_text("def gain(x, n):\n    return x * n\n")
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert [v.code for v in result.violations] == ["RPR402"]
        assert result.violations[0].path == str(manifest)
        assert "mod::gain_scalar" in result.violations[0].message

    def test_stale_entries_need_check_frozen(self, tmp_path):
        # Without --check-frozen the reverse reconciliation stays off:
        # partial-tree lints must not fail on out-of-tree references.
        mod, manifest = self._freeze(tmp_path)
        mod.write_text("def gain(x, n):\n    return x * n\n")
        result = lint_paths([mod], select=["RPR402"], manifest=manifest)
        assert result.clean

    def test_missing_manifest_fails_closed_under_check_frozen(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(PAIR_SOURCE)
        result = lint_paths(
            [mod],
            select=["RPR402"],
            manifest=tmp_path / "absent.json",
            check_frozen=True,
        )
        assert result.exit_code() == 2
        assert "--update-frozen" in result.errors[0].message

    def test_deliberate_refreeze_recovers(self, tmp_path):
        mod, manifest = self._freeze(tmp_path)
        mod.write_text(PAIR_SOURCE.replace("total += x * k", "total += x + k"))
        save_manifest(manifest, collect_frozen_digests([mod]))
        result = lint_paths(
            [mod], select=["RPR402"], manifest=manifest, check_frozen=True
        )
        assert result.clean

    def test_malformed_manifest_raises(self, tmp_path):
        manifest = tmp_path / "frozen.json"
        manifest.write_text('{"version": 99, "frozen": {}}')
        with pytest.raises(ManifestError):
            load_manifest(manifest)

    def test_committed_manifest_matches_the_shipped_tree(self):
        assert load_manifest(MANIFEST) == collect_frozen_digests([SRC])


class TestMissingGoldenTest:
    def _tree(self, tmp_path, test_body):
        mod = tmp_path / "mod.py"
        mod.write_text(PAIR_SOURCE)
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_mod.py").write_text(test_body)
        return mod, tests

    def test_unreferenced_frozen_twin_is_flagged(self, tmp_path):
        mod, tests = self._tree(
            tmp_path, "def test_nothing():\n    assert True\n"
        )
        result = lint_paths([mod], select=["RPR404"], tests_dir=tests)
        assert [v.code for v in result.violations] == ["RPR404"]
        assert "gain_scalar" in result.violations[0].message

    def test_golden_test_reference_satisfies(self, tmp_path):
        mod, tests = self._tree(
            tmp_path,
            "from mod import gain, gain_scalar\n"
            "\n"
            "def test_golden():\n"
            "    assert gain(2.0, 5) == gain_scalar(2.0, 5)\n",
        )
        result = lint_paths([mod], select=["RPR404"], tests_dir=tests)
        assert result.clean

    def test_rule_stays_dark_without_a_test_tree(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(PAIR_SOURCE)
        result = lint_paths([mod], select=["RPR404"])
        assert result.clean
