"""The ``repro-lint`` command-line interface."""

import json

import pytest

from repro.lint.cli import main

from tests.lint.conftest import FIXTURES


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean_units.py")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        assert main([str(FIXTURES / "bad_units.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR003" in out

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def incomplete(:\n")
        assert main([str(broken)]) == 2
        assert "RPR000" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "no_such_file.py")])
        assert excinfo.value.code == 2

    def test_unknown_select_code_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "bad_units.py"), "--select", "RPR999"])
        assert excinfo.value.code == 2


class TestOutputFormats:
    def test_text_lines_carry_location_and_code(self, capsys):
        main([str(FIXTURES / "bad_rng.py")])
        lines = capsys.readouterr().out.splitlines()
        flagged = [line for line in lines if "RPR103" in line]
        assert flagged and "bad_rng.py:16:" in flagged[0]

    def test_json_payload_round_trips(self, capsys):
        code = main([str(FIXTURES / "bad_units.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        codes = {v["code"] for v in payload["violations"]}
        assert codes == {"RPR001", "RPR002", "RPR003"}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}


class TestRuleSelection:
    def test_select_narrows_to_one_family(self, capsys):
        assert main(
            [str(FIXTURES / "bad_units.py"), "--select", "RPR001", "-q"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR002" not in out and "RPR003" not in out

    def test_ignore_drops_codes(self, capsys):
        assert main(
            [
                str(FIXTURES / "bad_units.py"),
                "--ignore",
                "RPR001,RPR002,RPR003",
            ]
        ) == 0

    def test_list_rules_names_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
            "RPR201",
            "RPR301",
            "RPR302",
            "RPR305",
        ):
            assert code in out
