"""The ``repro-lint`` command-line interface."""

import json

import pytest

from repro.lint.cli import main

from tests.lint.conftest import FIXTURES


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean_units.py")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        assert main([str(FIXTURES / "bad_units.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR003" in out

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def incomplete(:\n")
        assert main([str(broken)]) == 2
        assert "RPR000" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "no_such_file.py")])
        assert excinfo.value.code == 2

    def test_unknown_select_code_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "bad_units.py"), "--select", "RPR999"])
        assert excinfo.value.code == 2

    def test_unknown_ignore_code_exits_two(self, capsys):
        # A typo in --ignore must not silently un-suppress nothing.
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "bad_units.py"), "--ignore", "RPR999"])
        assert excinfo.value.code == 2

    def test_select_missing_the_present_codes_exits_zero(self, capsys):
        # bad_units.py violates RPR0xx only; selecting RPR1xx finds none.
        assert main(
            [str(FIXTURES / "bad_units.py"), "--select", "RPR101", "-q"]
        ) == 0

    def test_ignoring_some_of_mixed_violations_still_exits_one(self, capsys):
        assert main(
            [str(FIXTURES / "bad_units.py"), "--ignore", "RPR001,RPR002"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "RPR001" not in out and "RPR002" not in out


class TestOutputFormats:
    def test_text_lines_carry_location_and_code(self, capsys):
        main([str(FIXTURES / "bad_rng.py")])
        lines = capsys.readouterr().out.splitlines()
        flagged = [line for line in lines if "RPR103" in line]
        assert flagged and "bad_rng.py:16:" in flagged[0]

    def test_json_payload_round_trips(self, capsys):
        code = main([str(FIXTURES / "bad_units.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        codes = {v["code"] for v in payload["violations"]}
        assert codes == {"RPR001", "RPR002", "RPR003"}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}


class TestSarifOutput:
    def test_sarif_payload_is_valid_code_scanning_input(self, capsys):
        code = main([str(FIXTURES / "bad_units.py"), "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"RPR001", "RPR402", "RPR405"} <= rule_ids
        results = run["results"]
        assert results and all(r["level"] == "warning" for r in results)
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad_units.py")
        assert location["region"]["startLine"] >= 1

    def test_output_writes_artifact_and_keeps_text_log(self, tmp_path, capsys):
        artifact = tmp_path / "lint.sarif"
        code = main(
            [
                str(FIXTURES / "bad_units.py"),
                "--format",
                "sarif",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert payload["version"] == "2.1.0"
        # CI logs stay readable: violations and summary still on stdout.
        out = capsys.readouterr().out
        assert "RPR001" in out and "violations" in out

    def test_quiet_output_run_emits_no_summary(self, tmp_path, capsys):
        artifact = tmp_path / "lint.sarif"
        main(
            [
                str(FIXTURES / "clean_units.py"),
                "--format",
                "sarif",
                "--output",
                str(artifact),
                "-q",
            ]
        )
        assert "violations" not in capsys.readouterr().out


PAIR_SOURCE = (
    "def gain_scalar(x, n):\n"
    "    total = 0.0\n"
    "    for k in range(n):\n"
    "        total += x * k\n"
    "    return total\n"
    "\n"
    "\n"
    "def gain(x, n):\n"
    "    return x * n * (n - 1) / 2.0\n"
)


class TestFrozenFlow:
    def _module(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(PAIR_SOURCE)
        return mod, tmp_path / "frozen.json"

    def test_update_then_check_round_trips(self, tmp_path, capsys):
        mod, manifest = self._module(tmp_path)
        assert main(
            [str(mod), "--update-frozen", "--manifest", str(manifest)]
        ) == 0
        assert "froze 1 reference" in capsys.readouterr().out
        assert main(
            [
                str(mod),
                "--manifest",
                str(manifest),
                "--check-frozen",
                "--select",
                "RPR402",
                "-q",
            ]
        ) == 0

    def test_mutated_frozen_reference_fails_check(self, tmp_path, capsys):
        mod, manifest = self._module(tmp_path)
        main([str(mod), "--update-frozen", "--manifest", str(manifest)])
        capsys.readouterr()
        mod.write_text(PAIR_SOURCE.replace("x * k", "x + k"))
        assert main(
            [
                str(mod),
                "--manifest",
                str(manifest),
                "--check-frozen",
                "--select",
                "RPR402",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR402" in out and "gain_scalar" in out

    def test_check_without_manifest_exits_two(self, tmp_path, capsys):
        mod, manifest = self._module(tmp_path)
        assert main(
            [
                str(mod),
                "--manifest",
                str(manifest),
                "--check-frozen",
                "--select",
                "RPR402",
            ]
        ) == 2
        assert "--update-frozen" in capsys.readouterr().out

    def test_update_frozen_refuses_unparsable_tree(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main(
            [
                str(broken),
                "--update-frozen",
                "--manifest",
                str(tmp_path / "frozen.json"),
            ]
        ) == 2
        assert not (tmp_path / "frozen.json").exists()


class TestRuleSelection:
    def test_select_narrows_to_one_family(self, capsys):
        assert main(
            [str(FIXTURES / "bad_units.py"), "--select", "RPR001", "-q"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR002" not in out and "RPR003" not in out

    def test_ignore_drops_codes(self, capsys):
        assert main(
            [
                str(FIXTURES / "bad_units.py"),
                "--ignore",
                "RPR001,RPR002,RPR003",
            ]
        ) == 0

    def test_family_prefix_selects_the_whole_family(self, capsys):
        assert main(
            [str(FIXTURES / "bad_rng.py"), "--select", "RPR1", "-q"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR10" in out
        assert "RPR0" not in out and "RPR3" not in out

    def test_list_rules_names_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
            "RPR201",
            "RPR301",
            "RPR302",
            "RPR305",
            "RPR401",
            "RPR402",
            "RPR403",
            "RPR404",
            "RPR405",
        ):
            assert code in out
