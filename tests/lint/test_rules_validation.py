"""RPR201 — boundary-validation rule."""

from tests.lint.conftest import FIXTURES, expected_markers, lint_found


class TestBoundaryFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "sic" / "bad_boundary.py"
        assert lint_found(path) == expected_markers(path)

    def test_single_unchecked_function_flagged(self):
        markers = expected_markers(FIXTURES / "sic" / "bad_boundary.py")
        assert {code for code, _ in markers} == {"RPR201"}
        assert len(markers) == 1


class TestScopeOfRule:
    def test_rule_only_binds_boundary_packages(self, tmp_path):
        # Identical code outside phy/sic/topology is not boundary code.
        target = tmp_path / "elsewhere.py"
        target.write_text(
            "def unchecked_rate(bandwidth_hz: float):\n"
            "    return bandwidth_hz\n"
        )
        assert lint_found(target) == set()

    def test_unannotated_params_are_not_bound(self, tmp_path):
        # The float contract is annotation-driven.
        pkg = tmp_path / "phy"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        target = pkg / "loose.py"
        target.write_text(
            "def unannotated(bandwidth_hz):\n"
            "    return bandwidth_hz\n"
        )
        assert lint_found(target) == set()

    def test_transitive_delegation_accepted(self, tmp_path):
        pkg = tmp_path / "topology"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        target = pkg / "chain.py"
        target.write_text(
            "from repro.util.validation import check_positive\n"
            "def deep(x: float):\n"
            "    return mid(x)\n"
            "def mid(x: float):\n"
            "    return base(x)\n"
            "def base(x: float):\n"
            "    return check_positive('x', x)\n"
        )
        assert lint_found(target) == set()
