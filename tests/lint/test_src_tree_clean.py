"""The acceptance gate: ``repro-lint`` must pass on the shipped tree.

This is the same check CI's lint job runs; keeping it in the test suite
means a convention regression fails ``pytest`` locally before it ever
reaches CI.
"""

from pathlib import Path

from repro.lint import lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_tree_is_convention_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50
    assert [v.format_text() for v in result.violations] == []
    assert [e.format_text() for e in result.errors] == []
