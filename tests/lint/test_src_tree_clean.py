"""The acceptance gate: ``repro-lint`` must pass on the shipped tree.

This is the same check CI's lint job runs — the full rule set, armed
with the committed frozen manifest (RPR402, both directions) and the
test tree (RPR404) — so a convention regression fails ``pytest``
locally before it ever reaches CI.
"""

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.manifest import DEFAULT_MANIFEST_PATH

SRC = Path(__file__).parents[2] / "src" / "repro"
TESTS = Path(__file__).parents[1]


def test_src_tree_is_convention_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50
    assert [v.format_text() for v in result.violations] == []
    assert [e.format_text() for e in result.errors] == []


def test_src_tree_passes_the_full_frozen_gate():
    result = lint_paths(
        [SRC],
        manifest=DEFAULT_MANIFEST_PATH,
        check_frozen=True,
        tests_dir=TESTS,
    )
    assert [v.format_text() for v in result.violations] == []
    assert [e.format_text() for e in result.errors] == []
    assert result.exit_code() == 0
