"""RPR1xx — RNG-determinism rules."""

from pathlib import Path

from repro.lint import lint_paths

from tests.lint.conftest import FIXTURES, expected_markers, lint_found

SRC_RNG = Path(__file__).parents[2] / "src" / "repro" / "util" / "rng.py"


class TestBadRngFixture:
    def test_exact_codes_and_lines(self):
        path = FIXTURES / "bad_rng.py"
        assert lint_found(path) == expected_markers(path)

    def test_markers_cover_all_four_codes(self):
        codes = {code for code, _ in expected_markers(FIXTURES / "bad_rng.py")}
        assert codes == {"RPR101", "RPR102", "RPR103", "RPR104"}


class TestCleanRngFixture:
    def test_no_violations(self):
        assert lint_found(FIXTURES / "clean_rng.py") == set()


class TestRngModuleExemption:
    def test_rng_module_may_touch_numpy_random(self):
        # util/rng.py is the single place allowed to construct generators.
        result = lint_paths([SRC_RNG])
        assert [v.format_text() for v in result.violations] == []


class TestSeedlessFunctionRule:
    def test_seed_suffix_parameter_satisfies(self, tmp_path):
        target = tmp_path / "suffixed.py"
        target.write_text(
            "from repro.util.rng import make_rng\n"
            "def sample(n, trace_seed):\n"
            "    return make_rng(trace_seed).normal(size=n)\n"
        )
        assert lint_found(target) == set()

    def test_module_level_code_is_not_flagged(self, tmp_path):
        # Scripts may seed at module level; the contract binds functions.
        target = tmp_path / "script.py"
        target.write_text(
            "from repro.util.rng import make_rng\n"
            "RNG = make_rng(0)\n"
        )
        assert lint_found(target) == set()
