"""RetryPolicy and FaultInjector: deterministic, clock-free, picklable."""

import pickle

import pytest

from repro.util.faults import (
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    always_failing,
    fault_draw,
)


class TestRetryPolicy:
    def test_defaults_never_sleep(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.wait(1) == 0.0  # no base, no hook: pure no-op

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(backoff_base_s=-1.0),
        dict(backoff_factor=0.5),
        dict(backoff_max_s=-0.1),
    ])
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0,
                             backoff_max_s=4.0)
        delays = [policy.backoff_s(attempt) for attempt in range(1, 6)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]  # capped at max

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)

    def test_wait_routes_through_injected_sleep(self):
        recorded = []
        policy = RetryPolicy(backoff_base_s=1.0, sleep=recorded.append)
        assert policy.wait(2) == 2.0
        assert recorded == [2.0]

    def test_zero_delay_never_calls_the_hook(self):
        recorded = []
        policy = RetryPolicy(backoff_base_s=0.0, sleep=recorded.append)
        policy.wait(1)
        assert recorded == []


class TestFaultInjector:
    def test_inert_by_default(self):
        injector = FaultInjector()
        assert not injector.should_fail("e", 0, 1)
        injector.check_chunk("e", 0, 1)  # must not raise

    def test_fail_first_attempts(self):
        injector = FaultInjector(fail_first_attempts=1)
        assert injector.should_fail("e", 3, 1)
        assert not injector.should_fail("e", 3, 2)

    def test_explicit_failure_triples(self):
        injector = FaultInjector(failures={("e", 2, 1), ("e", 2, 2)})
        assert injector.should_fail("e", 2, 1)
        assert injector.should_fail("e", 2, 2)
        assert not injector.should_fail("e", 2, 3)
        assert not injector.should_fail("other", 2, 1)

    def test_check_chunk_raises_injected_fault(self):
        injector = FaultInjector(fail_first_attempts=1)
        with pytest.raises(InjectedFault, match="chunk=4 attempt=1"):
            injector.check_chunk("e", 4, 1)

    def test_rate_draws_are_deterministic(self):
        a = FaultInjector(seed=7, chunk_failure_rate=0.5)
        b = FaultInjector(seed=7, chunk_failure_rate=0.5)
        decisions_a = [a.should_fail("e", i, 1) for i in range(64)]
        decisions_b = [b.should_fail("e", i, 1) for i in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_rate_extremes(self):
        never = FaultInjector(chunk_failure_rate=0.0)
        always = FaultInjector(chunk_failure_rate=1.0)
        assert not any(never.should_fail("e", i, 2) for i in range(16))
        assert all(always.should_fail("e", i, 2) for i in range(16))

    def test_draws_keyed_on_engine_chunk_attempt(self):
        draws = {fault_draw(0, engine, chunk, attempt)
                 for engine in ("a", "b")
                 for chunk in (0, 1)
                 for attempt in (1, 2)}
        assert len(draws) == 8  # all distinct keys, all distinct draws
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_pool_break_rounds(self):
        injector = FaultInjector(pool_break_rounds={0, 2})
        assert injector.should_break_pool(0)
        assert not injector.should_break_pool(1)
        assert injector.should_break_pool(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(chunk_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(fail_first_attempts=-1)

    def test_picklable_across_process_boundary(self):
        injector = FaultInjector(seed=3, fail_first_attempts=1,
                                 failures={("e", 1, 2)},
                                 pool_break_rounds={0})
        clone = pickle.loads(pickle.dumps(injector))
        assert clone == injector
        assert clone.should_fail("e", 1, 2)

    def test_always_failing_helper(self):
        injector = always_failing("e", 5, max_attempts=2)
        assert injector.should_fail("e", 5, 1)
        assert injector.should_fail("e", 5, 2)
        assert not injector.should_fail("e", 5, 3)
        assert not injector.should_fail("e", 4, 1)
