"""I/O fault injector: determinism, fault semantics, site recording."""

import errno

import numpy as np
import pytest

from repro.util import iofaults
from repro.util.cache import ResultCache, atomic_write_text
from repro.util.iofaults import (
    CRASH,
    EACCES,
    ENOSPC,
    IOERROR,
    TORN,
    IoFaultInjector,
    IoFaultRule,
    SimulatedCrash,
    io_fault_draw,
    single_fault,
)


class TestDraws:
    def test_deterministic(self):
        assert io_fault_draw(7, "cache.payload.write", 3) == \
            io_fault_draw(7, "cache.payload.write", 3)

    def test_keyed_on_every_component(self):
        base = io_fault_draw(7, "a.write", 0)
        assert io_fault_draw(8, "a.write", 0) != base
        assert io_fault_draw(7, "b.write", 0) != base
        assert io_fault_draw(7, "a.write", 1) != base

    def test_uniform_range(self):
        draws = [io_fault_draw(1, "s", i) for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7


class TestRules:
    def test_negative_call_index_rejected(self):
        with pytest.raises(ValueError):
            IoFaultRule("s.write", -1, ENOSPC)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            IoFaultRule("s.write", 0, "meteor")

    def test_bad_error_rate_rejected(self):
        with pytest.raises(ValueError):
            IoFaultInjector(error_rate=1.5)


class TestWriteFaults:
    def _trip(self, kind, tmp_path):
        injector = single_fault("s.write", kind)
        injector.on_write("s.write", tmp_path / "t")

    def test_enospc_is_oserror(self, tmp_path):
        with pytest.raises(OSError) as info:
            self._trip(ENOSPC, tmp_path)
        assert info.value.errno == errno.ENOSPC

    def test_eacces_is_permissionerror(self, tmp_path):
        with pytest.raises(PermissionError):
            self._trip(EACCES, tmp_path)

    def test_ioerror_is_oserror(self, tmp_path):
        with pytest.raises(OSError) as info:
            self._trip(IOERROR, tmp_path)
        assert info.value.errno == errno.EIO

    def test_crash_is_not_an_exception_subclass(self, tmp_path):
        # `except Exception` recovery paths must NOT survive a simulated
        # process death — that is the whole point of the kind.
        with pytest.raises(SimulatedCrash) as info:
            self._trip(CRASH, tmp_path)
        assert not isinstance(info.value, Exception)
        assert info.value.site == "s.write"

    def test_torn_invalid_at_write_sites(self, tmp_path):
        injector = single_fault("s.write", TORN)
        with pytest.raises(ValueError):
            injector.on_write("s.write", tmp_path / "t")

    def test_only_the_planned_call_faults(self, tmp_path):
        injector = single_fault("s.write", ENOSPC, call_index=1)
        injector.on_write("s.write", tmp_path / "t")  # call 0: clean
        with pytest.raises(OSError):
            injector.on_write("s.write", tmp_path / "t")
        injector.on_write("s.write", tmp_path / "t")  # call 2: clean


class TestReplaceFaults:
    def test_torn_publishes_half_then_dies(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_bytes(b"0123456789")
        injector = single_fault("s.replace", TORN)
        with pytest.raises(SimulatedCrash):
            injector.on_replace("s.replace", src, dst)
        assert dst.read_bytes() == b"01234"  # truncated AND published
        assert not src.exists()

    def test_crash_leaves_destination_untouched(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_bytes(b"payload")
        injector = single_fault("s.replace", CRASH)
        with pytest.raises(SimulatedCrash):
            injector.on_replace("s.replace", src, dst)
        assert not dst.exists()
        assert src.exists()

    def test_clean_call_requests_the_replace(self, tmp_path):
        injector = IoFaultInjector()
        assert injector.on_replace("s.replace", tmp_path / "a",
                                   tmp_path / "b") is True


class TestRecording:
    def test_every_invocation_observed(self, tmp_path):
        injector = IoFaultInjector()
        injector.on_write("a.write", tmp_path / "t")
        injector.on_replace("b.replace", tmp_path / "s", tmp_path / "d")
        assert injector.observed == [("a.write", 0, None),
                                     ("b.replace", 0, None)]
        assert injector.observed_sites() == {"a.write", "b.replace"}
        assert injector.fired() == []

    def test_fired_lists_only_faults(self, tmp_path):
        injector = single_fault("a.write", ENOSPC, call_index=1)
        injector.on_write("a.write", tmp_path / "t")
        with pytest.raises(OSError):
            injector.on_write("a.write", tmp_path / "t")
        assert injector.fired() == [("a.write", 1, ENOSPC)]

    def test_rate_faults_replay_bit_identically(self, tmp_path):
        def soak():
            injector = IoFaultInjector(error_rate=0.3, seed=11)
            for index in range(50):
                try:
                    injector.on_write("s.write", tmp_path / "t")
                except OSError:
                    pass
            return injector.fired()

        first, second = soak(), soak()
        assert first == second
        assert first  # 30% of 50 calls: some must fire

    def test_rate_faults_respect_site_filter(self, tmp_path):
        injector = IoFaultInjector(error_rate=1.0, seed=1,
                                   sites=frozenset({"a.write"}))
        injector.on_write("b.write", tmp_path / "t")  # filtered: clean
        with pytest.raises(OSError):
            injector.on_write("a.write", tmp_path / "t")


class TestActivation:
    def test_inert_without_injection(self, tmp_path):
        # No active injector: the hooks are no-ops and writes succeed.
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello", site="s")
        assert target.read_text() == "hello"

    def test_nested_injection_rejected(self):
        with iofaults.inject(IoFaultInjector()):
            with pytest.raises(RuntimeError):
                with iofaults.inject(IoFaultInjector()):
                    pass

    def test_injector_uninstalled_after_crash(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            with iofaults.inject(single_fault("s.write", CRASH)):
                iofaults.trip_write("s.write", tmp_path / "t")
        assert iofaults.active_injector() is None

    def test_cache_put_survives_enospc(self, tmp_path):
        # The documented contract: a failed cache write is swallowed and
        # the freshly computed result survives.
        cache = ResultCache(tmp_path)
        arrays = {"x": np.ones(4)}
        with iofaults.inject(single_fault("cache.payload.write", ENOSPC)):
            cache.put({"seed": 1}, arrays)  # must not raise
        assert cache.get({"seed": 1}) is None  # nothing half-written

    def test_cache_put_cannot_swallow_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(SimulatedCrash):
            with iofaults.inject(single_fault("cache.payload.write", CRASH)):
                cache.put({"seed": 1}, {"x": np.ones(4)})

    def test_torn_cache_publish_is_caught_on_read(self, tmp_path):
        # The digest/orphan machinery must catch exactly the failure
        # mode TORN models: truncated bytes under the final name.
        cache = ResultCache(tmp_path)
        with pytest.raises(SimulatedCrash):
            with iofaults.inject(
                    single_fault("cache.payload.replace", TORN)):
                cache.put({"seed": 1}, {"x": np.ones(64)})
        recovered = ResultCache(tmp_path)
        assert recovered.get({"seed": 1}) is None
        assert recovered.quarantined == 1
