"""Unit-conversion tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    ratio_db,
    watts_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert math.isclose(db_to_linear(10.0), 10.0)

    def test_three_db_is_about_two(self):
        assert math.isclose(db_to_linear(3.0103), 2.0, rel_tol=1e-4)

    def test_negative_db_is_fractional(self):
        assert math.isclose(db_to_linear(-10.0), 0.1)

    def test_linear_to_db_of_unity(self):
        assert linear_to_db(1.0) == 0.0

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_array_shapes_preserved(self):
        values = np.array([0.0, 10.0, 20.0])
        out = db_to_linear(values)
        assert isinstance(out, np.ndarray)
        assert out.shape == values.shape

    def test_scalar_comes_back_as_float(self):
        assert isinstance(db_to_linear(5.0), float)
        assert isinstance(linear_to_db(5.0), float)

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_round_trip(self, value_db):
        assert math.isclose(linear_to_db(db_to_linear(value_db)), value_db,
                            abs_tol=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0),
           st.floats(min_value=-100.0, max_value=100.0))
    def test_db_addition_is_linear_multiplication(self, a_db, b_db):
        assert math.isclose(db_to_linear(a_db) * db_to_linear(b_db),
                            db_to_linear(a_db + b_db), rel_tol=1e-9)


class TestDbm:
    def test_30_dbm_is_one_watt(self):
        assert math.isclose(dbm_to_watts(30.0), 1.0)

    def test_0_dbm_is_one_milliwatt(self):
        assert math.isclose(dbm_to_watts(0.0), 1e-3)

    def test_20_dbm_is_100_milliwatt(self):
        assert math.isclose(dbm_to_watts(20.0), 0.1)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)

    @given(st.floats(min_value=-150.0, max_value=80.0))
    def test_round_trip(self, dbm):
        assert math.isclose(watts_to_dbm(dbm_to_watts(dbm)), dbm,
                            abs_tol=1e-9)


class TestRatioDb:
    def test_equal_powers_is_zero_db(self):
        assert ratio_db(5.0, 5.0) == 0.0

    def test_ten_to_one(self):
        assert math.isclose(ratio_db(10.0, 1.0), 10.0)

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ratio_db(1.0, 0.0)

    def test_rejects_zero_numerator(self):
        with pytest.raises(ValueError):
            ratio_db(0.0, 1.0)
