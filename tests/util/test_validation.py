"""Validation-helper tests."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", math.inf)

    def test_coerces_int_to_float(self):
        out = check_positive("x", 3)
        assert isinstance(out, float) and out == 3.0

    def test_error_names_the_parameter(self):
        with pytest.raises(ValueError, match="bandwidth_hz"):
            check_positive("bandwidth_hz", -5)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-12)


class TestCheckFinite:
    def test_accepts_negative(self):
        assert check_finite("x", -1.0) == -1.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite("x", math.nan)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_below_low(self):
        with pytest.raises(ValueError, match=">="):
            check_in_range("x", -0.1, 0.0, 1.0)

    def test_above_high(self):
        with pytest.raises(ValueError, match="<="):
            check_in_range("x", 1.1, 0.0, 1.0)

    def test_only_low_bound(self):
        assert check_in_range("x", 100.0, low=0.0) == 100.0

    def test_only_high_bound(self):
        assert check_in_range("x", -100.0, high=0.0) == -100.0


class TestCheckProbability:
    def test_accepts_endpoints(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)
