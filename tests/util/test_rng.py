"""RNG-plumbing tests."""

import numpy as np
import pytest

from repro.util.rng import make_rng, rng_fingerprint, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        a = make_rng(seq).random(3)
        b = make_rng(np.random.SeedSequence(99)).random(3)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_distinct(self):
        rngs = spawn_rngs(42, 3)
        draws = [tuple(r.random(4)) for r in rngs]
        assert len(set(draws)) == 3

    def test_deterministic_from_int_seed(self):
        a = [r.random(3).tolist() for r in spawn_rngs(11, 2)]
        b = [r.random(3).tolist() for r in spawn_rngs(11, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        rngs = spawn_rngs(gen, 2)
        assert len(rngs) == 2
        assert all(isinstance(r, np.random.Generator) for r in rngs)


class TestFingerprint:
    def test_does_not_advance_source(self):
        gen = make_rng(3)
        before = rng_fingerprint(gen)
        after = rng_fingerprint(gen)
        assert before == after

    def test_same_state_same_fingerprint(self):
        assert rng_fingerprint(make_rng(8)) == rng_fingerprint(make_rng(8))

    def test_different_state_different_fingerprint(self):
        assert rng_fingerprint(make_rng(8)) != rng_fingerprint(make_rng(9))
