"""ResultCache behaviour: keys, roundtrips, inert mode, corruption."""

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.util.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    array_digest,
    stable_hash,
)


KEY = {"engine": "test", "seed": 7, "config": {"n": 100}}


def _concurrent_put(root):
    """Worker for the concurrent-put race test (module-level: picklable)."""
    ResultCache(root).put(KEY, {"x": np.arange(64.0)})
    return True


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(KEY) == stable_hash(dict(KEY))

    def test_key_order_does_not_matter(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_changes_change_hash(self):
        assert stable_hash({"seed": 1}) != stable_hash({"seed": 2})

    def test_numpy_scalars_canonicalised(self):
        assert stable_hash({"n": np.int64(5)}) == stable_hash({"n": 5})

    def test_seed_sequence_hashable_by_content(self):
        a = np.random.SeedSequence(2010).spawn(2)[1]
        b = np.random.SeedSequence(2010).spawn(2)[1]
        assert stable_hash({"seed": a}) == stable_hash({"seed": b})
        other = np.random.SeedSequence(2010).spawn(2)[0]
        assert stable_hash({"seed": a}) != stable_hash({"seed": other})

    def test_unserialisable_parts_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"rng": np.random.default_rng()})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        arrays = {"gains": np.linspace(1.0, 2.0, 17),
                  "flags": np.array([True, False, True])}
        assert cache.get(KEY) is None
        cache.put(KEY, arrays)
        loaded = cache.get(KEY)
        assert set(loaded) == {"gains", "flags"}
        assert np.array_equal(loaded["gains"], arrays["gains"])
        assert np.array_equal(loaded["flags"], arrays["flags"])

    def test_writes_sidecar_metadata(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.zeros(3)})
        (meta,) = tmp_path.glob("*.json")
        assert '"engine": "test"' in meta.read_text()

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        cache.put({"seed": 2}, {"x": np.zeros(2)})
        assert np.all(cache.get({"seed": 1})["x"] == 1.0)
        assert np.all(cache.get({"seed": 2})["x"] == 0.0)

    def test_inert_without_root(self):
        cache = ResultCache(None)
        assert not cache.enabled
        cache.put(KEY, {"x": np.ones(2)})  # must be a silent no-op
        assert cache.get(KEY) is None

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not a zipfile")
        assert cache.get(KEY) is None
        assert cache.quarantined == 1
        # Quarantined, not deleted: both files moved under corrupt/,
        # renamed with a content-digest tag against repeat collisions.
        assert not entry.exists()
        (moved,) = (tmp_path / "corrupt").glob(f"{entry.stem}.*.npz")
        assert moved.read_bytes() == b"not a zipfile"
        assert list((tmp_path / "corrupt").glob("*.json"))

    def test_digest_mismatch_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (entry,) = tmp_path.glob("*.npz")
        np.savez_compressed(entry, x=np.zeros(4))  # loadable, wrong contents
        assert cache.get(KEY) is None
        assert cache.quarantined == 1

    def test_orphaned_sidecar_is_a_miss_and_quarantined(self, tmp_path):
        # Crash between sidecar and payload publish: json without npz.
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (entry,) = tmp_path.glob("*.npz")
        entry.unlink()
        assert cache.get(KEY) is None
        assert cache.quarantined == 1
        assert not list(tmp_path.glob("*.json"))  # swept, not left behind
        assert list((tmp_path / "corrupt").glob("*.json"))

    def test_orphaned_payload_is_a_miss_and_quarantined(self, tmp_path):
        # The opposite orientation: npz without json.
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (meta,) = tmp_path.glob("*.json")
        meta.unlink()
        assert cache.get(KEY) is None
        assert cache.quarantined == 1
        assert not list(tmp_path.glob("*.npz"))
        assert list((tmp_path / "corrupt").glob("*.npz"))

    def test_repeat_quarantine_keeps_every_generation(self, tmp_path):
        # The same entry name corrupted twice with different bytes must
        # land as two distinct files: digest-tagged names prevent the
        # second quarantine from clobbering the first (evidence loss).
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"first corruption")
        assert cache.get(KEY) is None
        cache.put(KEY, {"x": np.ones(4)})
        entry.write_bytes(b"second corruption")
        assert cache.get(KEY) is None
        moved = sorted((tmp_path / "corrupt").glob(f"{entry.stem}.*.npz"))
        assert len(moved) == 2
        assert {p.read_bytes() for p in moved} == \
            {b"first corruption", b"second corruption"}

    def test_sidecar_digest_matches_contents(self, tmp_path):
        cache = ResultCache(tmp_path)
        arrays = {"x": np.linspace(0, 1, 9)}
        cache.put(KEY, arrays)
        (meta,) = tmp_path.glob("*.json")
        assert json.loads(meta.read_text())["sha256"] == array_digest(arrays)

    def test_legacy_entry_without_digest_still_served(self, tmp_path):
        """Pre-integrity sidecars (no sha256) load unverified, no flag-day."""
        cache = ResultCache(tmp_path)
        arrays = {"x": np.ones(4)}
        cache.put(KEY, arrays)
        (meta,) = tmp_path.glob("*.json")
        legacy = json.loads(meta.read_text())
        del legacy["sha256"]
        meta.write_text(json.dumps(legacy))
        assert np.array_equal(cache.get(KEY)["x"], arrays["x"])

    def test_put_swallows_unwritable_root(self, tmp_path):
        blocker = tmp_path / "not_a_dir"
        blocker.write_text("file in the way")
        cache = ResultCache(blocker / "sub")
        cache.put(KEY, {"x": np.ones(2)})  # must not raise
        assert cache.get(KEY) is None

    def test_no_tmp_litter_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        assert not list(tmp_path.glob("*.tmp*"))

    def test_concurrent_puts_of_same_key_are_safe(self, tmp_path):
        """Racing writers may cost a hit, but never a crash or bad data."""
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_concurrent_put, tmp_path)
                       for _ in range(2)]
            assert all(f.result() for f in futures)
        loaded = ResultCache(tmp_path).get(KEY)
        if loaded is not None:  # a digest race surfaces as a miss, not lies
            assert np.array_equal(loaded["x"], np.arange(64.0))
        # The cache self-heals: a fresh put/get roundtrip works.
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.arange(64.0)})
        assert np.array_equal(cache.get(KEY)["x"], np.arange(64.0))

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        cache.put({"seed": 2}, {"x": np.ones(2)})
        result = cache.clear()
        assert result.removed == 4  # two .npz + two .json
        assert result.quarantined == 0
        assert cache.get({"seed": 1}) is None

    def test_clear_skips_subdirectories_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        (tmp_path / "subdir").mkdir()
        (tmp_path / "notes.txt").write_text("keep me")
        result = cache.clear()  # must not crash on the directory
        assert result.removed == 2
        assert (tmp_path / "subdir").is_dir()
        assert (tmp_path / "notes.txt").exists()

    def test_clear_reports_quarantined_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        cache.put({"seed": 2}, {"x": np.ones(2)})
        entry = next(tmp_path.glob("*.npz"))
        entry.write_bytes(b"junk")
        for seed in (1, 2):
            cache.get({"seed": seed})  # one of these quarantines
        result = cache.clear()
        assert result.removed == 2
        assert result.quarantined == 2  # .npz + .json of the bad entry

    def test_clear_tolerates_concurrent_deletion(self, tmp_path, monkeypatch):
        from pathlib import Path

        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            real_unlink(self, *args, **kwargs)  # the "other process" wins
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        result = cache.clear()  # every unlink loses the race; no crash
        assert result.removed == 0
        monkeypatch.undo()
        assert list(tmp_path.glob("*.npz")) == []

    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert not ResultCache.from_env().enabled

    def test_from_env_enabled_by_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = ResultCache.from_env()
        assert cache.enabled
        assert cache.root == tmp_path
