"""ResultCache behaviour: keys, roundtrips, inert mode, corruption."""

import numpy as np
import pytest

from repro.util.cache import CACHE_DIR_ENV, ResultCache, stable_hash


KEY = {"engine": "test", "seed": 7, "config": {"n": 100}}


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(KEY) == stable_hash(dict(KEY))

    def test_key_order_does_not_matter(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_changes_change_hash(self):
        assert stable_hash({"seed": 1}) != stable_hash({"seed": 2})

    def test_numpy_scalars_canonicalised(self):
        assert stable_hash({"n": np.int64(5)}) == stable_hash({"n": 5})

    def test_seed_sequence_hashable_by_content(self):
        a = np.random.SeedSequence(2010).spawn(2)[1]
        b = np.random.SeedSequence(2010).spawn(2)[1]
        assert stable_hash({"seed": a}) == stable_hash({"seed": b})
        other = np.random.SeedSequence(2010).spawn(2)[0]
        assert stable_hash({"seed": a}) != stable_hash({"seed": other})

    def test_unserialisable_parts_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"rng": np.random.default_rng()})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        arrays = {"gains": np.linspace(1.0, 2.0, 17),
                  "flags": np.array([True, False, True])}
        assert cache.get(KEY) is None
        cache.put(KEY, arrays)
        loaded = cache.get(KEY)
        assert set(loaded) == {"gains", "flags"}
        assert np.array_equal(loaded["gains"], arrays["gains"])
        assert np.array_equal(loaded["flags"], arrays["flags"])

    def test_writes_sidecar_metadata(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.zeros(3)})
        (meta,) = tmp_path.glob("*.json")
        assert '"engine": "test"' in meta.read_text()

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        cache.put({"seed": 2}, {"x": np.zeros(2)})
        assert np.all(cache.get({"seed": 1})["x"] == 1.0)
        assert np.all(cache.get({"seed": 2})["x"] == 0.0)

    def test_inert_without_root(self):
        cache = ResultCache(None)
        assert not cache.enabled
        cache.put(KEY, {"x": np.ones(2)})  # must be a silent no-op
        assert cache.get(KEY) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": np.ones(4)})
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not a zipfile")
        assert cache.get(KEY) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"seed": 1}, {"x": np.ones(2)})
        cache.put({"seed": 2}, {"x": np.ones(2)})
        assert cache.clear() == 4  # two .npz + two .json
        assert cache.get({"seed": 1}) is None

    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert not ResultCache.from_env().enabled

    def test_from_env_enabled_by_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = ResultCache.from_env()
        assert cache.enabled
        assert cache.root == tmp_path
