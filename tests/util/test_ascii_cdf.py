"""ASCII CDF renderer tests."""

import numpy as np
import pytest

from repro.util.cdf import ascii_cdf


class TestAsciiCdf:
    def test_dimensions(self):
        art = ascii_cdf([1.0, 1.5, 2.0], width=30, height=8)
        lines = art.split("\n")
        assert len(lines) == 8 + 2  # rows + axis + tick labels
        assert all(len(line) >= 30 for line in lines[:8])

    def test_monotone_steps(self):
        # Column stars must never move downward as x grows.
        art = ascii_cdf(np.linspace(1.0, 2.0, 200), width=40, height=10)
        rows = art.split("\n")[:10]
        star_rows = []
        for col in range(7, 7 + 40):
            for r, row in enumerate(rows):
                if col < len(row) and row[col] == "*":
                    star_rows.append(r)
                    break
        assert star_rows == sorted(star_rows, reverse=True)

    def test_label_appended(self):
        art = ascii_cdf([1.0, 2.0], label="demo")
        assert art.strip().endswith("(demo)")

    def test_explicit_range(self):
        art = ascii_cdf([1.1, 1.2], x_min=1.0, x_max=2.0)
        assert "1.00" in art and "2.00" in art

    def test_degenerate_samples(self):
        # All-equal samples get a synthetic range, no crash.
        art = ascii_cdf([1.0, 1.0, 1.0])
        assert "*" in art
