"""PhaseTimer — scheduler performance observability plumbing."""

import pytest

from repro.util.timing import PhaseTimer, maybe_phase


class FakeClock:
    """Deterministic clock: each read returns the next scripted tick."""

    def __init__(self, *ticks):
        self.ticks = list(ticks)

    def __call__(self):
        return self.ticks.pop(0)


class TestPhaseTimer:
    def test_single_phase_accumulates_elapsed(self):
        timer = PhaseTimer(clock=FakeClock(1.0, 3.5))
        with timer.phase("matching"):
            pass
        assert timer.total_s("matching") == pytest.approx(2.5)
        assert timer.count("matching") == 1

    def test_repeated_phase_accumulates(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 1.0, 10.0, 12.0))
        for _ in range(2):
            with timer.phase("cost_build"):
                pass
        assert timer.total_s("cost_build") == pytest.approx(3.0)
        assert timer.count("cost_build") == 2

    def test_unentered_phase_reads_zero(self):
        timer = PhaseTimer()
        assert timer.total_s("never") == 0.0
        assert timer.count("never") == 0

    def test_phase_charged_even_when_body_raises(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 4.0))
        with pytest.raises(RuntimeError):
            with timer.phase("assembly"):
                raise RuntimeError("boom")
        assert timer.total_s("assembly") == pytest.approx(4.0)
        assert timer.count("assembly") == 1

    def test_phases_snapshot_preserves_first_seen_order(self):
        timer = PhaseTimer(clock=FakeClock(0, 1, 1, 2, 2, 3))
        for name in ("cost_build", "matching", "cost_build"):
            with timer.phase(name):
                pass
        assert list(timer.phases) == ["cost_build", "matching"]
        assert timer.phases["cost_build"] == pytest.approx(2.0)

    def test_phases_snapshot_is_a_copy(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 1.0))
        with timer.phase("matching"):
            pass
        snapshot = timer.phases
        snapshot["matching"] = 99.0
        assert timer.total_s("matching") == pytest.approx(1.0)

    def test_as_dict_is_json_shaped(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 2.0))
        with timer.phase("matching"):
            pass
        assert timer.as_dict() == {
            "matching": {"total_s": pytest.approx(2.0), "count": 1.0}
        }

    def test_reset_clears_everything(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 2.0))
        with timer.phase("matching"):
            pass
        timer.reset()
        assert timer.total_s("matching") == 0.0
        assert timer.count("matching") == 0
        assert timer.phases == {}

    def test_real_clock_measures_nonnegative(self):
        timer = PhaseTimer()
        with timer.phase("noop"):
            pass
        assert timer.total_s("noop") >= 0.0


class TestMaybePhase:
    def test_none_timer_is_a_noop(self):
        ran = []
        with maybe_phase(None, "matching"):
            ran.append(True)
        assert ran == [True]

    def test_timer_records_through_maybe_phase(self):
        timer = PhaseTimer(clock=FakeClock(0.0, 1.5))
        with maybe_phase(timer, "matching"):
            pass
        assert timer.total_s("matching") == pytest.approx(1.5)
        assert timer.count("matching") == 1
