"""Operator failure taxonomy: classification, exit codes, signals, run_cli."""

import signal

import pytest

from repro.util.checkpoint import CHECKPOINT_DIR_ENV
from repro.util.errors import (
    EXIT_CORRUPT_STATE,
    EXIT_FATAL,
    EXIT_OK,
    EXIT_RESUMABLE,
    EXIT_TRANSIENT,
    CorruptStateError,
    FailureKind,
    FatalError,
    OperatorError,
    ResumableInterrupt,
    TransientError,
    classify,
    interrupt_requested,
    run_cli,
    signals_as_resumable,
)


class TestTaxonomy:
    def test_exit_codes_are_distinct(self):
        codes = [kind.exit_code for kind in FailureKind]
        assert len(codes) == len(set(codes))

    def test_kind_to_exit_code_mapping(self):
        assert FailureKind.OK.exit_code == EXIT_OK
        assert FailureKind.TRANSIENT.exit_code == EXIT_TRANSIENT
        assert FailureKind.CORRUPT_STATE.exit_code == EXIT_CORRUPT_STATE
        assert FailureKind.RESUMABLE.exit_code == EXIT_RESUMABLE

    def test_classify_operator_errors(self):
        assert classify(FatalError("x")) is FailureKind.FATAL
        assert classify(TransientError("x")) is FailureKind.TRANSIENT
        assert classify(CorruptStateError("x")) is FailureKind.CORRUPT_STATE

    def test_classify_interrupts(self):
        assert classify(KeyboardInterrupt()) is FailureKind.RESUMABLE
        assert classify(ResumableInterrupt(signal.SIGINT)) \
            is FailureKind.RESUMABLE

    def test_unclassified_exceptions_are_fatal(self):
        assert classify(ValueError("bug")) is FailureKind.FATAL

    def test_resumable_interrupt_is_not_an_exception(self):
        # `except Exception` recovery code must never eat an operator's
        # interrupt.
        assert not isinstance(ResumableInterrupt(signal.SIGINT), Exception)

    def test_operator_error_carries_hint(self):
        exc = TransientError("pool broke", hint="rerun to resume")
        assert exc.hint == "rerun to resume"
        assert isinstance(exc, OperatorError)


class TestSignals:
    def test_sigint_becomes_resumable(self):
        with pytest.raises(ResumableInterrupt) as info:
            with signals_as_resumable():
                signal.raise_signal(signal.SIGINT)
        assert info.value.signum == signal.SIGINT
        assert "resume" in str(info.value)

    def test_sigterm_becomes_resumable(self):
        with pytest.raises(ResumableInterrupt) as info:
            with signals_as_resumable():
                signal.raise_signal(signal.SIGTERM)
        assert info.value.signum == signal.SIGTERM

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with signals_as_resumable():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_interrupt_flag_set_and_cleared(self):
        assert interrupt_requested() is None
        try:
            with signals_as_resumable():
                signal.raise_signal(signal.SIGINT)
        except ResumableInterrupt:
            pass
        assert interrupt_requested() is None  # cleared on exit


class TestRunCli:
    def test_body_exit_code_passes_through(self):
        assert run_cli("prog", lambda: 0) == 0
        assert run_cli("prog", lambda: 3) == 3

    def test_operator_error_mapped_and_reported(self, capsys):
        def body():
            raise CorruptStateError("trace is torn",
                                    hint="regenerate the trace")

        assert run_cli("prog", body) == EXIT_CORRUPT_STATE
        err = capsys.readouterr().err
        assert "prog: corrupt-state: trace is torn" in err
        assert "prog: hint: regenerate the trace" in err

    def test_transient_error_mapped(self, capsys):
        def body():
            raise TransientError("pool died")

        assert run_cli("prog", body) == EXIT_TRANSIENT
        assert "transient" in capsys.readouterr().err

    def test_unclassified_exception_is_fatal(self, capsys):
        def body():
            raise RuntimeError("a bug")

        assert run_cli("prog", body) == EXIT_FATAL
        err = capsys.readouterr().err
        assert "prog: fatal: RuntimeError: a bug" in err

    def test_sigint_during_body_exits_resumable(self, capsys, monkeypatch,
                                                tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))

        def body():
            signal.raise_signal(signal.SIGINT)
            return 0  # pragma: no cover - unreachable

        assert run_cli("prog", body) == EXIT_RESUMABLE
        err = capsys.readouterr().err
        assert "prog: resumable:" in err
        assert str(tmp_path) in err  # hint names the checkpoint root

    def test_resume_hint_without_checkpoint_dir(self, capsys, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)

        def body():
            raise KeyboardInterrupt()

        assert run_cli("prog", body) == EXIT_RESUMABLE
        assert CHECKPOINT_DIR_ENV in capsys.readouterr().err

    def test_argparse_usage_exit_propagates(self):
        # SystemExit(2) from argparse must keep its conventional code.
        import argparse

        def body():
            argparse.ArgumentParser(prog="prog").parse_args(["--nope"])
            return 0

        with pytest.raises(SystemExit) as info:
            run_cli("prog", body)
        assert info.value.code == 2
