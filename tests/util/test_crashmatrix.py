"""Crash-point matrix: every durable-write site survives process death.

Marked ``chaos``: this is the fault-injection subset CI runs as its own
job (with ``PYTHONFAULTHANDLER=1``) and whose report it uploads as an
artifact.  The matrix itself is deterministic — every cell replays
bit-for-bit — so these tests also run fine in the ordinary suite.
"""

import json

import pytest

from repro.util import crashmatrix
from repro.util.crashmatrix import (
    ALL_SITES,
    CACHE_SITES,
    CHECKPOINT_SITES,
    CellResult,
    MatrixReport,
    kinds_for,
    main,
    run_matrix,
)
from repro.util.errors import EXIT_FATAL, EXIT_OK
from repro.util.iofaults import REPLACE_KINDS, WRITE_KINDS

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    # The full matrix is deterministic and moderately expensive; run it
    # once per module and assert against the shared report.
    return run_matrix(tmp_path_factory.mktemp("matrix"))


class TestEnumeration:
    def test_every_site_has_a_valid_type(self):
        assert set(ALL_SITES.values()) <= {"write", "replace"}

    def test_kinds_per_site_type(self):
        assert kinds_for("write") == WRITE_KINDS
        assert kinds_for("replace") == REPLACE_KINDS

    def test_cache_and_checkpoint_sites_disjoint(self):
        assert not set(CACHE_SITES) & set(CHECKPOINT_SITES)

    def test_observed_sites_match_enumeration(self, report):
        # The machine check: a durable write added without a site (or a
        # renamed site) makes observed != enumerated and fails here.
        assert report.observed_sites == report.enumerated_sites
        assert report.enumeration_complete


class TestMatrix:
    def test_every_cell_passes(self, report):
        assert report.failures() == []
        assert report.passed

    def test_covers_every_site_and_kind(self, report):
        covered = {(c.site, c.kind) for c in report.cells}
        expected = {(site, kind)
                    for site, site_type in ALL_SITES.items()
                    for kind in kinds_for(site_type)}
        assert covered == expected

    def test_every_fault_actually_fired(self, report):
        # A cell whose fault never fired means the workload no longer
        # reaches that site — the matrix would be testing nothing.
        assert all(cell.fault_fired for cell in report.cells)

    def test_crash_kinds_propagated_as_death(self, report):
        for cell in report.cells:
            if cell.kind in ("crash", "torn"):
                assert cell.crashed, (cell.site, cell.kind)

    def test_checkpoint_chunk_cells_exercise_mixed_resume(self, report):
        # Chunk-level cells kill call 1, so recovery resumes chunk 0
        # from disk while recomputing the rest — the interesting case.
        for cell in report.cells:
            if cell.store == "checkpoint" and (
                    ".payload." in cell.site or ".sidecar." in cell.site):
                assert cell.call_index == 1


class TestReportShape:
    def test_as_dict_is_json_serialisable(self, report):
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["passed"] is True
        assert payload["n_cells"] == len(report.cells)
        assert payload["n_failed"] == 0
        assert payload["unenumerated"] == []
        assert payload["unobserved"] == []

    def test_failure_detection(self):
        bad = CellResult("cache", "cache.payload.write", "enospc", 0,
                         fault_fired=True, crashed=False,
                         recovered_identical=False,
                         quarantine_monotone=True)
        report = MatrixReport((bad,), frozenset({"s"}), frozenset({"s"}))
        assert not report.passed
        assert report.failures() == [bad]

    def test_unfired_fault_fails_the_cell(self):
        stale = CellResult("cache", "cache.payload.write", "enospc", 0,
                           fault_fired=False, crashed=False,
                           recovered_identical=True,
                           quarantine_monotone=True)
        assert not stale.ok

    def test_enumeration_mismatch_fails_the_report(self):
        report = MatrixReport((), frozenset({"a"}), frozenset({"a", "b"}))
        assert not report.enumeration_complete
        assert not report.passed
        assert report.as_dict()["unenumerated"] == ["b"]


class TestCli:
    def test_writes_report_artifact(self, tmp_path, capsys):
        out = tmp_path / "artifacts" / "CRASH_MATRIX.json"
        assert main(["--out", str(out)]) == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        stdout = capsys.readouterr().out
        assert "0 failed" in stdout
        assert "enumeration complete" in stdout

    def test_exit_fatal_on_failure(self, monkeypatch, capsys):
        broken = CellResult("cache", "cache.payload.write", "enospc", 0,
                            fault_fired=True, crashed=False,
                            recovered_identical=False,
                            quarantine_monotone=True)
        monkeypatch.setattr(
            crashmatrix, "run_matrix",
            lambda workdir=None: MatrixReport(
                (broken,), frozenset({"s"}), frozenset({"s"})))
        assert main([]) == EXIT_FATAL
        assert "FAIL" in capsys.readouterr().out
