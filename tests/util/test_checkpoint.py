"""CheckpointStore: atomic chunk persistence, integrity, quarantine."""

import json

import numpy as np
import pytest

from repro.util.cache import array_digest
from repro.util.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CheckpointStore,
    checkpoint_dir_from_env,
)

RUN_KEY = {"engine": "test", "seed": 7, "chunk_sizes": [50, 50, 25]}


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path, RUN_KEY, n_chunks=3)


class TestEnvResolution:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert checkpoint_dir_from_env() is None

    def test_set_names_the_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
        assert checkpoint_dir_from_env() == tmp_path


class TestManifest:
    def test_written_on_construction(self, store):
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["n_chunks"] == 3
        assert manifest["key"]["engine"] == "test"

    def test_run_dir_keyed_by_run_key(self, tmp_path):
        a = CheckpointStore(tmp_path, RUN_KEY, n_chunks=3)
        b = CheckpointStore(tmp_path, {**RUN_KEY, "seed": 8}, n_chunks=3)
        assert a.run_dir != b.run_dir


class TestChunkRoundtrip:
    def test_put_get_bit_identical(self, store):
        arrays = {"gains": np.linspace(0.0, 1.0, 50),
                  "codes": np.arange(50, dtype=np.uint8)}
        store.put_chunk(1, arrays)
        loaded = store.get_chunk(1)
        assert set(loaded) == set(arrays)
        for name in arrays:
            assert np.array_equal(loaded[name], arrays[name])
            assert loaded[name].dtype == arrays[name].dtype

    def test_missing_chunk_is_none(self, store):
        assert store.get_chunk(0) is None

    def test_no_tmp_litter_after_put(self, store):
        store.put_chunk(0, {"x": np.ones(4)})
        assert not list(store.run_dir.glob("*.tmp*"))

    def test_completed_chunks_ordering(self, store):
        store.put_chunk(2, {"x": np.ones(2)})
        store.put_chunk(0, {"x": np.ones(2)})
        assert store.completed_chunks() == [0, 2]

    def test_index_bounds_checked(self, store):
        with pytest.raises(IndexError):
            store.put_chunk(3, {"x": np.ones(1)})
        with pytest.raises(IndexError):
            store.get_chunk(-1)

    def test_resume_across_store_instances(self, tmp_path):
        first = CheckpointStore(tmp_path, RUN_KEY, n_chunks=3)
        first.put_chunk(0, {"x": np.full(5, 2.5)})
        second = CheckpointStore(tmp_path, RUN_KEY, n_chunks=3)
        assert np.array_equal(second.get_chunk(0)["x"], np.full(5, 2.5))


class TestIntegrity:
    def test_truncated_payload_quarantined(self, store):
        store.put_chunk(0, {"x": np.ones(8)})
        data_path, _ = store._chunk_paths(0)
        data_path.write_bytes(data_path.read_bytes()[:10])
        assert store.get_chunk(0) is None
        assert store.quarantined == 1
        assert list((store.run_dir / "corrupt").glob(
            f"{data_path.stem}.*.npz"))
        assert store.get_chunk(0) is None  # stays missing, no crash

    def test_digest_mismatch_quarantined(self, store):
        store.put_chunk(0, {"x": np.ones(8)})
        data_path, _ = store._chunk_paths(0)
        np.savez_compressed(data_path, x=np.zeros(8))  # loadable, wrong bits
        assert store.get_chunk(0) is None
        assert store.quarantined == 1

    def test_missing_sidecar_treated_as_corrupt(self, store):
        store.put_chunk(0, {"x": np.ones(8)})
        _, meta_path = store._chunk_paths(0)
        meta_path.unlink()
        assert store.get_chunk(0) is None
        assert store.quarantined == 1

    def test_orphaned_sidecar_quarantined(self, store):
        # The other orientation: json published, npz lost to a crash.
        store.put_chunk(0, {"x": np.ones(8)})
        data_path, meta_path = store._chunk_paths(0)
        data_path.unlink()
        assert store.get_chunk(0) is None
        assert store.quarantined == 1
        assert not meta_path.exists()  # swept into corrupt/, not left
        assert list((store.run_dir / "corrupt").glob(
            f"{meta_path.stem}.*.json"))
        assert 0 not in store.completed_chunks()

    def test_sidecar_records_content_digest(self, store):
        arrays = {"x": np.arange(6.0)}
        store.put_chunk(0, arrays)
        _, meta_path = store._chunk_paths(0)
        sidecar = json.loads(meta_path.read_text())
        assert sidecar["sha256"] == array_digest(arrays)
        assert sidecar["chunk_index"] == 0

    def test_put_swallows_unwritable_root(self, tmp_path):
        blocker = tmp_path / "not_a_dir"
        blocker.write_text("file in the way")
        store = CheckpointStore(blocker / "sub", RUN_KEY, n_chunks=1)
        store.put_chunk(0, {"x": np.ones(2)})  # must not raise
        assert store.get_chunk(0) is None
