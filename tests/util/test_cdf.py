"""Empirical CDF tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.cdf import EmpiricalCdf, fraction_at_least, gain_cdf_summary

finite_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50)


class TestEmpiricalCdf:
    def test_single_sample(self):
        cdf = EmpiricalCdf.from_samples([2.0])
        assert cdf(1.9) == 0.0
        assert cdf(2.0) == 1.0

    def test_right_continuity(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf(2.0) == 0.5
        assert cdf(2.0 - 1e-12) == 0.25

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([1.0, math.nan])

    def test_survival_complements_cdf(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4, 5])
        assert math.isclose(cdf(3) + cdf.survival(3), 1.0)

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_samples([5.0, 1.0, 3.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 5.0

    def test_quantile_rejects_out_of_range(self):
        cdf = EmpiricalCdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_stats(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0])
        assert cdf.mean == 2.0
        assert cdf.median == 2.0
        assert cdf.min == 1.0 and cdf.max == 3.0

    def test_series_is_step_data(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0])
        x, f = cdf.series()
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    @given(finite_samples)
    def test_cdf_is_monotone(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        points = sorted(samples)
        values = [cdf(p) for p in points]
        assert all(a <= b for a, b in zip(values, values[1:]))

    @given(finite_samples)
    def test_cdf_at_max_is_one(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        assert cdf(max(samples)) == 1.0


class TestFractionAtLeast:
    def test_all_above(self):
        assert fraction_at_least([2, 3, 4], 1.0) == 1.0

    def test_half(self):
        assert fraction_at_least([1, 1, 2, 2], 2.0) == 0.5

    def test_threshold_inclusive(self):
        assert fraction_at_least([1.2], 1.2) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_at_least([], 1.0)


class TestGainSummary:
    def test_keys_present(self):
        summary = gain_cdf_summary([1.0, 1.1, 1.3])
        for key in ("n", "mean", "median", "max", "min", "frac_no_gain",
                    "frac_gain_over_10pct", "frac_gain_over_20pct"):
            assert key in summary

    def test_no_gain_fraction(self):
        summary = gain_cdf_summary([1.0, 1.0, 1.5, 2.0])
        assert summary["frac_no_gain"] == 0.5

    def test_over_20pct(self):
        summary = gain_cdf_summary([1.0, 1.19, 1.21, 1.5])
        assert summary["frac_gain_over_20pct"] == 0.5
