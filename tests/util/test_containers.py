"""Result-container tests."""

import numpy as np
import pytest

from repro.util.containers import GridResult, SweepResult, ascii_heatmap


def make_grid(values=None):
    x = np.array([0.0, 1.0, 2.0])
    y = np.array([0.0, 1.0])
    if values is None:
        values = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
    return GridResult(name="g", x_label="x", y_label="y",
                      x=x, y=y, values=values)


class TestSweepResult:
    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SweepResult(name="s", x_label="x",
                        x=np.array([1.0, 2.0]),
                        series={"a": np.array([1.0])})

    def test_row_strings_include_header(self):
        sweep = SweepResult(name="s", x_label="snr",
                            x=np.linspace(0, 10, 5),
                            series={"gain": np.linspace(1, 2, 5)})
        rows = sweep.row_strings()
        assert "snr" in rows[0] and "gain" in rows[0]
        assert len(rows) == 2 + 5

    def test_row_strings_subsample(self):
        sweep = SweepResult(name="s", x_label="x",
                            x=np.linspace(0, 1, 100),
                            series={"y": np.linspace(0, 1, 100)})
        assert len(sweep.row_strings(max_rows=10)) == 12

    def test_to_dict_round_trips_values(self):
        sweep = SweepResult(name="s", x_label="x", x=np.array([1.0]),
                            series={"y": np.array([2.0])}, meta={"k": 1})
        d = sweep.to_dict()
        assert d["series"]["y"] == [2.0]
        assert d["meta"] == {"k": 1}


class TestGridResult:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            make_grid(values=np.zeros((3, 2)))

    def test_extrema(self):
        grid = make_grid()
        assert grid.min_value == 1.0
        assert grid.max_value == 6.0

    def test_argmax_coordinates(self):
        grid = make_grid()
        peak = grid.argmax()
        assert peak["x"] == 2.0 and peak["y"] == 1.0 and peak["value"] == 6.0

    def test_ridge_along_y(self):
        values = np.array([[1.0, 9.0, 2.0],
                           [7.0, 1.0, 1.0]])
        grid = make_grid(values)
        ridge = grid.ridge_along_y()
        assert list(ridge) == [1.0, 0.0]

    def test_summary_strings_mention_peak(self):
        lines = make_grid().summary_strings()
        assert any("peak" in line for line in lines)


class TestAsciiHeatmap:
    def test_dimensions(self):
        art = ascii_heatmap(make_grid(), width=3, height=2)
        lines = art.split("\n")
        assert len(lines) == 2
        assert all(len(line) == 3 for line in lines)

    def test_max_maps_to_densest_char(self):
        art = ascii_heatmap(make_grid(), width=3, height=2, charset=" @")
        assert "@" in art

    def test_constant_grid_does_not_crash(self):
        grid = make_grid(values=np.ones((2, 3)))
        art = ascii_heatmap(grid)
        assert isinstance(art, str)
