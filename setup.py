"""Legacy setup shim.

The offline environment has no `wheel` package, so modern PEP-517
editable installs (`pip install -e .`) cannot build; `python setup.py
develop` (or `pip install -e . --no-build-isolation` on newer
setuptools) uses this shim instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
