"""Bench: Fig. 8 — download, two APs to one client."""

import numpy as np

from conftest import emit, run_once

from repro.experiments import fig4, fig8
from repro.util.containers import ascii_heatmap


def test_fig8_download_heatmap(benchmark):
    grid = run_once(benchmark, fig8.compute, n_points=201)

    # Paper claims: "very little benefit from SIC" in download; gains
    # only where one RSS is roughly the square of the other, always
    # weaker than the upload (Fig. 4) gains.
    assert grid.min_value >= 1.0
    assert grid.max_value < 1.35
    upload = fig4.compute(n_points=201)
    assert np.all(grid.values <= np.maximum(upload.values, 1.0) + 1e-9)

    emit(grid.summary_strings()
         + [f"  (upload Fig. 4 peak for comparison: "
            f"{upload.max_value:.3f})", "", ascii_heatmap(grid)])
