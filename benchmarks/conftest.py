"""Benchmark-harness helpers.

Every paper table/figure has one bench module.  Each bench runs the
figure's ``compute`` at evaluation scale through pytest-benchmark,
asserts the paper's qualitative claims on the result, and prints the
same rows/series the paper reports (visible with ``pytest -s``).
"""

from __future__ import annotations

from typing import Callable, List


def run_once(benchmark, fn: Callable, **kwargs):
    """Benchmark an expensive figure exactly once (no warmup rounds)."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def emit(lines: List[str]) -> None:
    """Print a figure's report block (shown under ``pytest -s``)."""
    print()
    for line in lines:
        print(line)
