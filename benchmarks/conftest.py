"""Benchmark-harness helpers.

Every paper table/figure has one bench module.  Each bench runs the
figure's ``compute`` at evaluation scale through pytest-benchmark,
asserts the paper's qualitative claims on the result, and prints the
same rows/series the paper reports (visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from typing import Callable, List

SAMPLES_ENV = "REPRO_BENCH_SAMPLES"
FULL_SAMPLES = 10_000

TRACE_SNAPSHOTS_ENV = "REPRO_BENCH_TRACE_SNAPSHOTS"
FULL_TRACE_SNAPSHOTS = 600


def bench_samples() -> int:
    """Monte-Carlo draws per bench (``REPRO_BENCH_SAMPLES`` overrides).

    The default is the paper-scale 10 000 draws.  CI smoke runs set the
    environment variable to a smaller count to keep the job fast; the
    benches skip their tightest statistical assertions below full scale.
    """
    return int(os.environ.get(SAMPLES_ENV, FULL_SAMPLES))


def at_full_scale() -> bool:
    """True when benches run at the paper's 10 000-draw evaluation scale."""
    return bench_samples() >= FULL_SAMPLES


def bench_trace_snapshots() -> int:
    """Busy-snapshot cap for the trace benches.

    Defaults to the 600 snapshots of the full two-week Fig. 13 run;
    ``REPRO_BENCH_TRACE_SNAPSHOTS`` shrinks it for CI smoke runs (the
    trace benches relax their speedup floors below full scale).
    """
    return int(os.environ.get(TRACE_SNAPSHOTS_ENV, FULL_TRACE_SNAPSHOTS))


def at_full_trace_scale() -> bool:
    """True when trace benches run the full 600-snapshot evaluation."""
    return bench_trace_snapshots() >= FULL_TRACE_SNAPSHOTS


ARCH_GRIDS_ENV = "REPRO_BENCH_ARCH_GRIDS"
FULL_ARCH_GRIDS = 100


def bench_arch_grids() -> int:
    """EWLAN grid count for the architecture benches.

    Defaults to the Fig. 7 evaluation scale (100 grids; residential
    rows scale at 3x the grid count).  ``REPRO_BENCH_ARCH_GRIDS``
    shrinks it for CI smoke runs, where the speedup floor relaxes.
    """
    return int(os.environ.get(ARCH_GRIDS_ENV, FULL_ARCH_GRIDS))


def at_full_arch_scale() -> bool:
    """True when architecture benches run at the Fig. 7 default scale."""
    return bench_arch_grids() >= FULL_ARCH_GRIDS


SUITE_ENV = "REPRO_BENCH_SUITE"
FULL_SUITE_SAMPLES = 4_000


def bench_suite_samples() -> int:
    """Monte-Carlo scale for the suite bench (``REPRO_BENCH_SUITE``).

    One number drives every figure in the suite bench (grids, rows,
    snapshots and scenario counts derive from it).  Defaults to a
    4 000-draw evaluation scale; CI smoke runs shrink it, and the
    suite bench relaxes its speedup floor below full scale.
    """
    return int(os.environ.get(SUITE_ENV, FULL_SUITE_SAMPLES))


def at_full_suite_scale() -> bool:
    """True when the suite bench runs at its full evaluation scale."""
    return bench_suite_samples() >= FULL_SUITE_SAMPLES


def run_once(benchmark, fn: Callable, **kwargs):
    """Benchmark an expensive figure exactly once (no warmup rounds)."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def emit(lines: List[str]) -> None:
    """Print a figure's report block (shown under ``pytest -s``)."""
    print()
    for line in lines:
        print(line)
