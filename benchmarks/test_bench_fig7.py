"""Bench: Fig. 7 / Section 4 — SIC across architectures."""

from conftest import emit, run_once

from repro.experiments import fig7


def test_fig7_architectures(benchmark):
    result = run_once(benchmark, fig7.compute, n_ewlan_grids=150,
                      n_residential_rows=500, seed=2010)

    ewlan = result["ewlan"]
    residential = result["residential"]
    mesh = result["mesh"]

    # §4.1: nearest-AP association -> capture dominates, SIC unneeded.
    assert ewlan.capture_fraction > 0.9
    assert ewlan.mean_gain < 1.02
    # §4.2: the residential lock creates a (small) opportunity set that
    # the enterprise setting lacks, but gains stay negligible.
    assert residential.sic_feasible_fraction > \
        ewlan.sic_feasible_fraction
    assert residential.gain_summary["frac_gain_over_10pct"] < 0.05
    # §4.3: long-short-long chains admit SIC, equalised chains do not,
    # and the frontier grows with the long-hop length.
    feasible = {(a.long_hop_m, a.short_hop_m)
                for a in mesh if a.sic_feasible}
    assert (60.0, 2.0) in feasible
    assert (20.0, 20.0) not in feasible
    frontier = result["mesh_frontier"]
    limits = [frontier[k] for k in sorted(frontier) if frontier[k]]
    assert limits == sorted(limits)

    emit(["Fig. 7 / Section 4 — architectures"] + fig7.render(result))
