"""Bench: the suite execution engine vs the sequential baseline.

The headline claim: running the five supervised figures through one
shared :class:`~repro.experiments.suite.SuitePool` (cross-figure work
interleaving + shared-memory chunk transport) beats the pre-suite
``all`` path — figures strictly one after another, each ``compute()``
inline on a single worker — by >= 2x end to end at benchmark scale on
a multi-core host, while staying bit-identical figure by figure.

The CI smoke job runs this module with ``--benchmark-json`` to emit
``BENCH_suite.json``; ``REPRO_BENCH_SUITE`` shrinks the scale there,
and the speedup floor relaxes below full scale or below four CPU
cores (house convention: benches soften their tightest assertions
outside the full evaluation environment).
"""

import os
import time

import numpy as np

from conftest import at_full_suite_scale, bench_suite_samples, emit, run_once

from repro.experiments import fig6, fig7, fig11, fig13, fig14
from repro.experiments.suite import run_suite
from repro.experiments.transport import TransportPolicy, active_segments

SEED = 2010


def _suite_kwargs():
    """Per-figure kwargs, every scale derived from one bench knob.

    Identical kwargs drive the sequential baseline and the suite run,
    so the bit-identity comparison is exact (chunk layouts and seeds
    never differ between the two sides).
    """
    samples = bench_suite_samples()
    grids = max(4, samples // 40)
    chunk = max(64, samples // 16)
    return {
        "fig6": {"n_samples": samples, "seed": SEED, "chunk_size": chunk},
        "fig7": {"n_ewlan_grids": grids, "n_residential_rows": 3 * grids,
                 "seed": SEED},
        "fig11": {"n_samples": samples, "seed": SEED, "chunk_size": chunk},
        "fig13": {"max_snapshots": max(8, samples // 10), "seed": SEED},
        "fig14": {"n_scenarios": max(50, samples // 2), "seed": SEED},
    }


def _sequential_baseline(kwargs):
    """The pre-suite ``all`` path: one figure after another, inline."""
    return {
        "fig6": fig6.compute(**kwargs["fig6"]),
        "fig7": fig7.compute(**kwargs["fig7"]),
        "fig11": fig11.compute(**kwargs["fig11"]),
        "fig13": fig13.compute(**kwargs["fig13"]),
        "fig14": fig14.compute(**kwargs["fig14"]),
    }


def _assert_gain_map_equal(actual, expected, context):
    for label in expected:
        if label == "meta":
            assert actual[label] == expected[label], (context, label)
            continue
        assert np.array_equal(actual[label]["gains"],
                              expected[label]["gains"]), (context, label)


def test_suite_speedup_over_sequential_baseline(benchmark):
    """The PR's headline number: shared-pool suite vs sequential
    supervised baseline, bit-identical per-figure outputs required."""
    kwargs = _suite_kwargs()
    figures = list(kwargs)
    workers = min(4, os.cpu_count() or 1)
    segments_before = active_segments()

    start = time.perf_counter()
    baseline = _sequential_baseline(kwargs)
    baseline_s = time.perf_counter() - start

    suite = run_once(
        benchmark,
        lambda: run_suite(figures, kwargs, n_workers=workers,
                          transport=TransportPolicy(min_bytes=1)))
    suite_s = suite.wall_s
    speedup = baseline_s / suite_s
    runs = suite.runs()

    # Identity: the suite only moves where chunks execute.
    _assert_gain_map_equal(runs["fig6"].result, baseline["fig6"], "fig6")
    for panel in baseline["fig11"]:
        _assert_gain_map_equal(runs["fig11"].result[panel],
                               baseline["fig11"][panel], f"fig11/{panel}")
    _assert_gain_map_equal(runs["fig13"].result, baseline["fig13"], "fig13")
    _assert_gain_map_equal(runs["fig14"].result, baseline["fig14"], "fig14")
    assert runs["fig7"].result["ewlan"] == baseline["fig7"]["ewlan"]
    assert runs["fig7"].result["residential"] \
        == baseline["fig7"]["residential"]

    # The transport moved real chunks, and released every segment.
    transported = suite.transport["shm_chunks"] \
        + suite.transport["pickled_chunks"]
    assert transported > 0
    assert suite.transport["shm_chunks"] > 0
    assert active_segments() == segments_before

    stats = suite.pool_stats
    benchmark.extra_info["baseline_s"] = baseline_s
    benchmark.extra_info["suite_s"] = suite_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["pool_utilization"] = stats["utilization"]
    benchmark.extra_info["pool_chunks"] = stats["tasks_done"]
    benchmark.extra_info["shm_chunks"] = suite.transport["shm_chunks"]
    benchmark.extra_info["shm_bytes"] = suite.transport["shm_bytes"]
    benchmark.extra_info["pickled_chunks"] = \
        suite.transport["pickled_chunks"]

    emit([f"suite ({len(figures)} figures, {workers} workers): "
          f"{suite_s:.2f} s vs sequential {baseline_s:.2f} s "
          f"-> {speedup:.2f}x",
          f"  pool: {stats['tasks_done']} chunks, utilization "
          f"{stats['utilization']:.1%}",
          f"  transport: {suite.transport['shm_chunks']} shm chunks / "
          f"{suite.transport['shm_bytes'] / 1024:.0f} KiB, "
          f"{suite.transport['pickled_chunks']} pickled"])

    # >= 2x is an evaluation-environment claim: full scale and enough
    # cores for cross-figure overlap to pay.  Below that, assert only
    # that the shared pool is not pathologically slower.
    if at_full_suite_scale() and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0
    else:
        assert speedup >= 0.3
