"""Bench: vectorised Monte-Carlo engines vs the scalar reference.

The batched engines are the whole point of the vectorisation work: at
the paper's 10 000-draw evaluation scale they must beat the scalar
per-draw loop by at least an order of magnitude while producing the
same numbers draw for draw (equivalence is asserted by the unit tests;
here we only time the two paths and assert the speedup floor).
"""

import time

from conftest import bench_samples, emit, run_once

from repro.experiments.montecarlo import (
    MonteCarloConfig,
    two_receiver_scenarios,
    two_receiver_scenarios_scalar,
)

MIN_SPEEDUP = 10.0


def test_two_receiver_scenarios_speedup(benchmark):
    config = MonteCarloConfig(n_samples=bench_samples())

    start = time.perf_counter()
    gains_ref, _ = two_receiver_scenarios_scalar(config, seed=2010)
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    gains, _ = two_receiver_scenarios(config, seed=2010)
    batched_s = time.perf_counter() - start
    run_once(benchmark, two_receiver_scenarios, config=config, seed=2010)

    assert len(gains) == len(gains_ref) == config.n_samples
    speedup = scalar_s / batched_s
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.1f}x faster than scalar "
        f"(scalar {scalar_s:.3f}s, batched {batched_s:.3f}s); "
        f"required >= {MIN_SPEEDUP:.0f}x")

    emit([f"Monte-Carlo engine — {config.n_samples} draws, "
          f"two_receiver_scenarios",
          f"  scalar reference: {scalar_s * 1e3:9.1f} ms",
          f"  batched engine:   {batched_s * 1e3:9.1f} ms",
          f"  speedup:          {speedup:9.1f}x (floor {MIN_SPEEDUP:.0f}x)"])
