"""Bench: Fig. 12 / Section 6 — the SIC-aware scheduler.

Covers both halves of the scheduling claim: the blossom matching finds
the optimal pairing (ties brute force, beats greedy/random/serial) and
runs in polynomial time on realistic WLAN sizes — plus the fast-path
claim: the vectorised cost graph + array blossom pipeline beats the
scalar reference pipeline by >= 5x on a 64-client backlog while
returning bit-identical schedules.

The CI smoke job runs this module with ``--benchmark-json`` to emit
``BENCH_scheduler.json``; speedup and phase attributions land in each
benchmark's ``extra_info``.
"""

import time

import pytest

from conftest import at_full_scale, emit, run_once

from repro.experiments import fig12
from repro.scheduling.scheduler import SicScheduler
from repro.techniques.pairing import TechniqueSet
from repro.util.rng import make_rng
from repro.util.timing import PhaseTimer


def test_fig12_policy_comparison(benchmark):
    result = run_once(benchmark, fig12.compute,
                      sizes=(3, 5, 8, 12, 20), n_trials=30, seed=2010)

    for comparison in result["comparisons"]:
        times = comparison.mean_times
        if "brute_force" in times:
            assert times["blossom"] == pytest.approx(
                times["brute_force"], rel=1e-9)
        assert times["blossom"] <= times["greedy"] + 1e-12
        assert times["greedy"] <= times["serial"] + 1e-12

    lines = ["Fig. 12 / Section 6 — scheduler vs baselines "
             "(mean gain over serial, 30 trials per size)"]
    for comparison in result["comparisons"]:
        parts = ", ".join(f"{name} {gain:.3f}x"
                          for name, gain in comparison.mean_gains.items())
        lines.append(f"  n={comparison.n_clients:>3}: {parts}")
    lines.append("  runtime: " + ", ".join(
        f"n={n}: {entry['total_s'] * 1e3:.1f} ms"
        for n, entry in result["runtime"].items()))
    emit(lines)


@pytest.mark.parametrize("n_clients", [8, 16, 32, 64, 128, 256])
def test_scheduler_runtime_scaling(benchmark, n_clients):
    """Raw scheduling latency per backlog size (the O(n^3) claim).

    One round per size — this is a scaling probe, not a microbench —
    with the cost-build/matching/assembly phase split recorded in
    ``extra_info`` so BENCH_scheduler.json shows where the time goes.
    """
    rng = make_rng(2010)
    scheduler = SicScheduler(techniques=TechniqueSet.ALL)
    clients = fig12.random_clients(n_clients, rng,
                                   noise_w=scheduler.channel.noise_w)
    timer = PhaseTimer()
    schedule = benchmark.pedantic(
        lambda: scheduler.schedule(clients, timer=timer),
        rounds=1, iterations=1)
    assert sorted(schedule.client_names) == sorted(
        c.name for c in clients)
    for phase, seconds in timer.phases.items():
        benchmark.extra_info[f"{phase}_s"] = seconds


def test_scheduler_fast_path_speedup(benchmark):
    """The PR's headline number: fast pipeline vs the frozen scalar
    pipeline on a 64-client backlog, bit-identical outputs required.

    Best-of timing on both sides keeps the ratio robust to scheduler
    jitter; the >= 5x floor applies at full evaluation scale, smoke
    runs assert a relaxed floor (convention: benches relax their
    tightest assertions below full scale).  The measured ratio is
    recorded in ``extra_info`` either way.
    """
    rng = make_rng(2010)
    scheduler = SicScheduler(techniques=TechniqueSet.ALL)
    clients = fig12.random_clients(64, rng,
                                   noise_w=scheduler.channel.noise_w)

    fast = scheduler.schedule(clients)
    scalar = scheduler.schedule_scalar(clients)
    assert fast.to_dict() == scalar.to_dict()

    def best_of(fn, reps):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn(clients)
            best = min(best, time.perf_counter() - start)
        return best

    fast_s = best_of(scheduler.schedule, 4)
    scalar_s = best_of(scheduler.schedule_scalar, 2)
    speedup = scalar_s / fast_s

    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    run_once(benchmark, lambda: scheduler.schedule(clients))

    emit([f"Scheduler fast path (n=64): {fast_s * 1e3:.1f} ms "
          f"vs scalar {scalar_s * 1e3:.1f} ms -> {speedup:.2f}x"])
    floor = 5.0 if at_full_scale() else 3.0
    assert speedup >= floor
