"""Bench: Fig. 12 / Section 6 — the SIC-aware scheduler.

Covers both halves of the scheduling claim: the blossom matching finds
the optimal pairing (ties brute force, beats greedy/random/serial) and
runs in polynomial time on realistic WLAN sizes.
"""

import pytest

from conftest import emit, run_once

from repro.experiments import fig12
from repro.scheduling.scheduler import SicScheduler
from repro.techniques.pairing import TechniqueSet
from repro.util.rng import make_rng


def test_fig12_policy_comparison(benchmark):
    result = run_once(benchmark, fig12.compute,
                      sizes=(3, 5, 8, 12, 20), n_trials=30, seed=2010)

    for comparison in result["comparisons"]:
        times = comparison.mean_times
        if "brute_force" in times:
            assert times["blossom"] == pytest.approx(
                times["brute_force"], rel=1e-9)
        assert times["blossom"] <= times["greedy"] + 1e-12
        assert times["greedy"] <= times["serial"] + 1e-12

    lines = ["Fig. 12 / Section 6 — scheduler vs baselines "
             "(mean gain over serial, 30 trials per size)"]
    for comparison in result["comparisons"]:
        parts = ", ".join(f"{name} {gain:.3f}x"
                          for name, gain in comparison.mean_gains.items())
        lines.append(f"  n={comparison.n_clients:>3}: {parts}")
    lines.append("  runtime: " + ", ".join(
        f"n={n}: {t * 1e3:.1f} ms" for n, t in result["runtime"].items()))
    emit(lines)


@pytest.mark.parametrize("n_clients", [8, 16, 32, 64])
def test_scheduler_runtime_scaling(benchmark, n_clients):
    """Raw scheduling latency per backlog size (the O(n^3) claim)."""
    rng = make_rng(2010)
    scheduler = SicScheduler(techniques=TechniqueSet.ALL)
    clients = fig12.random_clients(n_clients, rng,
                                   noise_w=scheduler.channel.noise_w)
    schedule = benchmark(lambda: scheduler.schedule(clients))
    assert sorted(schedule.client_names) == sorted(
        c.name for c in clients)
