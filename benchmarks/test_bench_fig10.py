"""Bench: Fig. 10 — worked 4-client pairing example."""

from conftest import emit, run_once

from repro.experiments import fig10


def test_fig10_canonical_example(benchmark):
    result = run_once(benchmark, fig10.compute)

    # Paper: serial = 15 units; the adjacent pairing (C1|C2, C3|C4) is
    # the best of the three; every pairing beats serial; the blossom
    # scheduler finds the overall optimum.
    assert abs(result.serial_units - 15.0) < 1e-6
    assert result.best_pairing == "(C1|C2, C3|C4)"
    assert all(u < result.serial_units
               for u in result.pairing_units.values())
    assert result.scheduler_units <= min(
        min(result.pairing_units.values()),
        result.power_control_units, result.multirate_units) + 1e-9

    emit(["Fig. 10 (canonical 1:2:4:8 example; paper values 15 / 11.5 "
          "/ 12 / 13 / 11 / 10.4 are illustrative)"] + result.rows())


def test_fig10_detuned_example(benchmark):
    result = run_once(benchmark, fig10.compute, detuned=True)

    # With imperfect pairs, power control and multirate strictly
    # improve (the 11.5 -> 11 -> 10.4 progression of Figs. 10e/10f).
    best_pairing = min(result.pairing_units.values())
    assert result.power_control_units < min(best_pairing,
                                            result.serial_units)
    assert result.multirate_units <= result.power_control_units + 1e-9
    assert result.scheduler_units <= result.multirate_units + 1e-9

    emit(["Fig. 10 (detuned imperfect-pair variant)"] + result.rows())
