"""Bench: Fig. 14 — trace-based two AP-client pairs, both panels."""

from conftest import emit, run_once

from repro.experiments import fig14


def test_fig14_downlink_trace(benchmark):
    result = run_once(benchmark, fig14.compute, n_scenarios=5_000,
                      seed=2010)

    arb = result["arbitrary"]["summary"]
    arb_pack = result["arbitrary+packing"]["summary"]
    disc = result["discrete"]["summary"]
    disc_pack = result["discrete+packing"]["summary"]

    # Paper claims: (a) with arbitrary bitrates SIC gains are limited
    # even with packing (like Fig. 11b); (b) packing is the enabler —
    # it lifts both panels substantially, and the discrete panel
    # reaches real gains (paper: >20 % gain in ~40 % of scenarios).
    assert arb["frac_no_gain"] > 0.6
    assert disc["frac_no_gain"] > 0.6
    assert arb_pack["frac_gain_over_20pct"] >= \
        arb["frac_gain_over_20pct"]
    assert disc_pack["frac_gain_over_20pct"] >= \
        disc["frac_gain_over_20pct"]
    assert disc_pack["frac_gain_over_20pct"] > 0.1

    lines = [f"Fig. 14 — downlink trace pairs "
             f"({result['meta']['n_scenarios']} scenarios over "
             f"{result['meta']['n_locations']} locations x "
             f"{len(result['meta']['ap_names'])} APs)"]
    for label in ("arbitrary", "arbitrary+packing", "discrete",
                  "discrete+packing"):
        s = result[label]["summary"]
        lines.append(
            f"  {label:>18}: no-gain {s['frac_no_gain']:.1%}, "
            f">20% gain {s['frac_gain_over_20pct']:.1%} "
            f"(paper 14b+packing: ~40%), median {s['median']:.3f}, "
            f"max {s['max']:.3f}")
    emit(lines)
