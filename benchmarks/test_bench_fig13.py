"""Bench: Fig. 13 — trace-based upload evaluation of link pairing."""

from conftest import emit, run_once

from repro.experiments import fig13
from repro.traces.synthetic import UploadTraceConfig


def test_fig13_trace_upload(benchmark):
    # The full-scale synthetic stand-in: a 2-week building trace with
    # 15-minute snapshots, capped to a bounded snapshot count so the
    # bench stays laptop-sized.
    result = run_once(benchmark, fig13.compute,
                      trace_config=UploadTraceConfig(duration_days=14.0),
                      seed=2010, max_snapshots=600)

    base = result["pairing"]["summary"]
    pc = result["pairing+power_control"]["summary"]
    mr = result["pairing+multirate"]["summary"]

    # Paper claims: real association sets offer pairing gains, enhanced
    # by power control / multirate, trends matching Fig. 11a.
    assert pc["frac_gain_over_10pct"] >= base["frac_gain_over_10pct"]
    assert mr["frac_gain_over_10pct"] >= base["frac_gain_over_10pct"]
    assert pc["median"] > 1.0
    assert base["min"] >= 1.0 - 1e-12

    lines = [f"Fig. 13 — synthetic building trace "
             f"({result['meta']['n_snapshots']} busy snapshots over "
             f"{result['meta']['trace_duration_s'] / 86400:.1f} days)"]
    for label in ("pairing", "pairing+power_control",
                  "pairing+multirate"):
        s = result[label]["summary"]
        lines.append(
            f"  {label:>24}: no-gain {s['frac_no_gain']:.1%}, "
            f">10% {s['frac_gain_over_10pct']:.1%}, "
            f">20% {s['frac_gain_over_20pct']:.1%}, "
            f"median {s['median']:.3f}, max {s['max']:.3f}")
    emit(lines)
