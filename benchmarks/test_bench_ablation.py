"""Ablation benches for the design choices DESIGN.md calls out.

1. decode order — the paper's fixed stronger-first rule vs choosing
   the better rate-region corner per topology;
2. imperfect cancellation — gain collapse as the residue grows (the
   effect the paper cites from [13]);
3. path-loss exponent — the paper's "gains from lower path-loss
   exponents ... are even lower" remark;
4. matching algorithm — blossom vs greedy vs random pairing quality;
5. rate granularity — 802.11b vs g vs n slack for SIC.
"""

import numpy as np
import pytest

from conftest import emit, run_once

from repro.experiments.fig12 import compare_policies
from repro.experiments.montecarlo import MonteCarloConfig, two_receiver_gains
from repro.phy.noise import thermal_noise_watts
from repro.phy.rates import DOT11B, DOT11G, DOT11N_20MHZ
from repro.phy.shannon import Channel
from repro.sic.airtime import (
    z_serial_same_receiver,
    z_sic_same_receiver,
    z_sic_same_receiver_best_order,
    z_sic_same_receiver_imperfect,
)
from repro.sic.discrete import discrete_upload_pair_gain
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import make_rng

L = 12_000.0


@pytest.fixture(scope="module")
def channel():
    return Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))


def _random_snr_pairs(n, rng, low_db=3.0, high_db=45.0):
    return 10.0 ** (rng.uniform(low_db, high_db, size=(n, 2)) / 10.0)


def test_ablation_decode_order(benchmark, channel):
    """How much does the fixed stronger-first decode order cost?"""
    rng = make_rng(2010)
    snrs = _random_snr_pairs(4000, rng) * channel.noise_w

    def run():
        fixed = z_sic_same_receiver(channel, L, snrs[:, 0], snrs[:, 1])
        best = z_sic_same_receiver_best_order(channel, L,
                                              snrs[:, 0], snrs[:, 1])
        return fixed, best

    fixed, best = benchmark.pedantic(run, rounds=1, iterations=1)
    # Choosing the order can only help...
    assert np.all(best <= fixed + 1e-12)
    improved = float(np.mean(best < fixed - 1e-12))
    mean_saving = float(np.mean((fixed - best) / fixed))
    # ...but it never does: for equal-length packets the weaker-first
    # corner's binding term L/r(weak | strong interference) dominates
    # both of stronger-first's terms, so the paper's fixed rule is
    # provably optimal.  The ablation certifies that empirically.
    assert improved == 0.0
    assert mean_saving == 0.0
    emit(["Ablation 1 — decode order (4000 random upload pairs)",
          f"  topologies where order choice helps: {improved:.1%} "
          "(stronger-first is provably optimal)",
          f"  mean completion-time saving: {mean_saving:.1%}"])


def test_ablation_imperfect_cancellation(benchmark, channel):
    """Gain collapse as cancellation efficiency drops."""
    rng = make_rng(2011)
    snrs = _random_snr_pairs(3000, rng) * channel.noise_w
    efficiencies = [1.0, 0.999, 0.99, 0.9, 0.5]

    def run():
        serial = z_serial_same_receiver(channel, L, snrs[:, 0],
                                        snrs[:, 1])
        table = {}
        for eff in efficiencies:
            z = z_sic_same_receiver_imperfect(channel, L, snrs[:, 0],
                                              snrs[:, 1], eff)
            table[eff] = float(np.mean(np.maximum(1.0, serial / z)))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [table[eff] for eff in efficiencies]
    # Monotone collapse, and 50 % residue ~ no gain (paper: sharp cut).
    assert all(a >= b - 1e-12 for a, b in zip(gains, gains[1:]))
    assert table[0.5] < 1.02
    assert table[1.0] > table[0.99]
    emit(["Ablation 2 — imperfect cancellation (mean upload gain)"]
         + [f"  efficiency {eff:>6}: mean gain {gain:.3f}"
            for eff, gain in table.items()])


def test_ablation_pathloss_exponent(benchmark):
    """Lower alpha -> fewer two-receiver SIC opportunities."""
    def run():
        out = {}
        for alpha in (2.0, 3.0, 4.0):
            config = MonteCarloConfig(n_samples=3000, range_m=20.0,
                                      pathloss_exponent=alpha)
            gains = two_receiver_gains(config, seed=2012)
            out[alpha] = gain_cdf_summary(gains)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper: "gains from lower pathloss exponents ... are even lower".
    assert out[2.0]["frac_gain_over_10pct"] <= \
        out[4.0]["frac_gain_over_10pct"] + 0.01
    emit(["Ablation 3 — path-loss exponent (two-receiver Monte Carlo)"]
         + [f"  alpha={alpha}: no-gain {s['frac_no_gain']:.1%}, "
            f">10% gain {s['frac_gain_over_10pct']:.1%}"
            for alpha, s in out.items()])


def test_ablation_matching_quality(benchmark):
    """Blossom vs greedy vs random pairing quality at n = 16."""
    comparison = run_once(benchmark, compare_policies, n_clients=16,
                          n_trials=40, seed=2013,
                          include_brute_force=False)
    gains = comparison.mean_gains
    assert gains["blossom"] >= gains["greedy"] - 1e-9
    assert gains["greedy"] >= gains["random"] - 1e-9
    assert gains["random"] >= gains["serial"] - 1e-9
    emit(["Ablation 4 — pairing policy quality (16 clients, 40 trials)"]
         + [f"  {name:>8}: mean gain {gain:.4f}x"
            for name, gain in gains.items()])


def test_ablation_online_delay(benchmark, channel):
    """Extension: packet *delay* under stochastic arrivals.

    The paper motivates completing pending packets "without inordinate
    amount of delay" but never simulates a queue.  Here Poisson
    arrivals hit a loaded AP and we compare FIFO 802.11 service with
    batched SIC pairing on identical sample paths.
    """
    from repro.scheduling.online import (
        ArrivalClient,
        compare_policies_online,
    )
    from repro.scheduling.scheduler import SicScheduler
    from repro.techniques.pairing import TechniqueSet

    n0 = channel.noise_w
    scheduler = SicScheduler(channel=channel, techniques=TechniqueSet.ALL)
    clients = [
        ArrivalClient("C1", 10 ** (32 / 10) * n0, 4000.0),
        ArrivalClient("C2", 10 ** (16 / 10) * n0, 4000.0),
        ArrivalClient("C3", 10 ** (28 / 10) * n0, 4000.0),
        ArrivalClient("C4", 10 ** (13 / 10) * n0, 4000.0),
    ]

    def run():
        out = {}
        for seed in (1, 2, 3):
            comparison = compare_policies_online(scheduler, clients,
                                                 horizon_s=0.25,
                                                 seed=seed)
            for policy, metrics in comparison.items():
                entry = out.setdefault(policy, {"delay": [], "p95": [],
                                                "util": []})
                entry["delay"].append(metrics.mean_delay_s)
                entry["p95"].append(metrics.p95_delay_s)
                entry["util"].append(metrics.utilisation)
        return {policy: {k: float(np.mean(v)) for k, v in entry.items()}
                for policy, entry in out.items()}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["sic_pairing"]["delay"] < out["fifo"]["delay"]
    assert out["sic_pairing"]["util"] <= out["fifo"]["util"] + 1e-9
    emit(["Ablation 10 — online delay under Poisson load "
          "(4 clients x 4000 pkt/s, 3 sample paths)"]
         + [f"  {policy:>12}: mean delay {m['delay'] * 1e3:.3f} ms, "
            f"p95 {m['p95'] * 1e3:.3f} ms, utilisation {m['util']:.1%}"
            for policy, m in out.items()])


def test_ablation_packing_model(benchmark):
    """Rate-constrained vs strictly-feasible packet packing.

    Our Fig. 14 packing lets the cancelled transmitter *lower its rate*
    so the SIC receiver can decode it (Section 5.4's "packet at the
    lower bitrate"); the naive alternative only packs when plain SIC is
    already feasible.  This ablation quantifies how much of the packing
    gain comes from that rate concession.
    """
    from repro.experiments.montecarlo import (
        MonteCarloConfig,
        _legacy_two_receiver_packing_gain,
        _pair_rss,
        two_receiver_packing_gain,
    )
    from repro.sic.scenarios import evaluate_pair_scenario
    from repro.topology.generators import random_pair_topology

    config = MonteCarloConfig(n_samples=4000, range_m=20.0)
    channel = config.channel()
    model = config.propagation()
    rng = make_rng(2017)

    def run():
        constrained = []
        legacy = []
        for _ in range(config.n_samples):
            topo = random_pair_topology(config.range_m, rng)
            rss = _pair_rss(topo, model, config.tx_power_w)
            scenario = evaluate_pair_scenario(channel,
                                              config.packet_bits, rss)
            constrained.append(two_receiver_packing_gain(
                channel, config.packet_bits, rss, scenario, 8))
            legacy.append(_legacy_two_receiver_packing_gain(
                channel, config.packet_bits, rss, scenario, 8))
        return np.asarray(constrained), np.asarray(legacy)

    constrained, legacy = benchmark.pedantic(run, rounds=1, iterations=1)
    # The rate concession can only widen the packing opportunity.
    assert np.all(constrained >= legacy - 1e-9)
    frac_constrained = float(np.mean(constrained >= 1.2))
    frac_legacy = float(np.mean(legacy >= 1.2))
    assert frac_constrained >= frac_legacy
    emit(["Ablation 9 — packing model (4000 two-receiver topologies)",
          f"  strictly-feasible packing: >20% gain in {frac_legacy:.1%}",
          f"  rate-constrained packing:  >20% gain in "
          f"{frac_constrained:.1%}"])


def test_ablation_adaptation_slack(benchmark):
    """The paper's central thesis, quantified end to end.

    "A practical bitrate adaptation scheme is unlikely to operate at
    the ideal bitrate at all times and there will always be a slack
    that SIC can harness.  Although true, this slack is fast
    disappearing with ... the recent advances in bitrate adaptation."

    We run ARF over Rayleigh/Rician block-fading uplink pairs and
    measure the mean SIC gain achievable from the slack ARF leaves,
    sweeping adaptation speed and fading severity.
    """
    from repro.phy.adaptation import (
        ArfRateAdapter,
        adaptation_slack_sic_gain,
        run_adaptation,
    )
    from repro.phy.fading import BlockFadingLink
    from repro.util.units import db_to_linear

    strong_snr = float(db_to_linear(30.0))
    weak_snr = float(db_to_linear(15.0))
    configs = {
        "classic ARF, Rayleigh": dict(success_threshold=10,
                                      failure_threshold=2, k_factor=0.0),
        "fast ARF, Rayleigh": dict(success_threshold=2,
                                   failure_threshold=1, k_factor=0.0),
        "classic ARF, Rician K=10": dict(success_threshold=10,
                                         failure_threshold=2,
                                         k_factor=10.0),
        "fast ARF, Rician K=10": dict(success_threshold=2,
                                      failure_threshold=1,
                                      k_factor=10.0),
    }

    def run():
        out = {}
        for label, cfg in configs.items():
            gains = []
            slacks = []
            for seed in range(5):
                strong = run_adaptation(
                    ArfRateAdapter(
                        success_threshold=cfg["success_threshold"],
                        failure_threshold=cfg["failure_threshold"]),
                    BlockFadingLink(strong_snr,
                                    cfg["k_factor"]).sinr_series(
                        1500, rng=100 + seed),
                    rng=200 + seed)
                weak = run_adaptation(
                    ArfRateAdapter(
                        success_threshold=cfg["success_threshold"],
                        failure_threshold=cfg["failure_threshold"]),
                    BlockFadingLink(weak_snr,
                                    cfg["k_factor"]).sinr_series(
                        1500, rng=300 + seed),
                    rng=400 + seed)
                gains.append(adaptation_slack_sic_gain(
                    strong, weak, strong_snr, weak_snr))
                slacks.append(strong.mean_slack_fraction)
            out[label] = (float(np.mean(gains)), float(np.mean(slacks)))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # Milder fading -> less slack; the thesis's direction must hold
    # within each fading class.
    assert out["classic ARF, Rician K=10"][1] <= \
        out["classic ARF, Rayleigh"][1] + 0.02
    assert out["fast ARF, Rayleigh"][1] <= \
        out["classic ARF, Rayleigh"][1] + 0.02
    emit(["Ablation 8 — rate-adaptation slack (ARF over block fading, "
          "30/15 dB uplink pair)"]
         + [f"  {label:>26}: mean SIC gain {gain:.4f}x, "
            f"mean rate slack {slack:.1%}"
            for label, (gain, slack) in out.items()])


def test_ablation_mac_overheads(benchmark, channel):
    """How do the gains survive DIFS/backoff/preamble/SIFS/ACK costs?

    The paper discounts MAC overheads.  Restoring them cuts both ways:
    per-packet ACK costs dilute the gain, but per-access costs *favour*
    SIC because pairing halves the number of channel accesses.
    """
    from repro.experiments.fig12 import random_clients
    from repro.scheduling.scheduler import SicScheduler
    from repro.sim.overhead import (
        DOT11G_OVERHEADS,
        NO_OVERHEADS,
        MacOverheads,
        apply_overheads,
    )
    from repro.techniques.pairing import TechniqueSet

    rng = make_rng(2016)
    scheduler = SicScheduler(channel=channel, techniques=TechniqueSet.ALL)
    schedules = [scheduler.schedule(
        random_clients(10, rng, noise_w=channel.noise_w))
        for _ in range(30)]
    access_only = MacOverheads(sifs_s=0.0, ack_s=0.0)

    def run():
        out = {}
        for label, overheads in (("none (paper)", NO_OVERHEADS),
                                 ("access-only", access_only),
                                 ("full 802.11g", DOT11G_OVERHEADS)):
            adjusted = [apply_overheads(s, overheads) for s in schedules]
            out[label] = (
                float(np.mean([a.gain for a in adjusted])),
                float(np.mean([a.overhead_fraction for a in adjusted])),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    base_gain = out["none (paper)"][0]
    # Shared channel accesses help; the gain with full overheads stays
    # within a modest band of the idealised one.
    assert out["access-only"][0] >= base_gain - 1e-9
    assert abs(out["full 802.11g"][0] - base_gain) < 0.25
    emit(["Ablation 7 — MAC overheads (30 ten-client schedules)"]
         + [f"  {label:>14}: mean gain {gain:.4f}x, overhead share "
            f"{frac:.1%}" for label, (gain, frac) in out.items()])


def test_ablation_group_size(benchmark, channel):
    """Extension: what do slots of 3 or 4 concurrent clients buy?

    The paper stops at pairs ("interference cancellation is performed
    only once").  With the k-SIC extension, larger groups keep helping
    but with diminishing returns — and they presuppose a receiver that
    can cancel k-1 layers, which the imperfect-cancellation ablation
    shows is fragile.
    """
    from repro.experiments.fig12 import random_clients
    from repro.scheduling.groups import greedy_group_schedule

    rng = make_rng(2015)
    instances = [random_clients(14, rng, noise_w=channel.noise_w)
                 for _ in range(25)]

    def run():
        out = {}
        for k in (1, 2, 3, 4):
            gains = [greedy_group_schedule(channel, clients,
                                           max_group_size=k).gain
                     for clients in instances]
            out[k] = float(np.mean(gains))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out[1] == pytest.approx(1.0)
    assert out[2] > out[1]
    assert out[3] >= out[2] - 1e-9
    assert out[4] >= out[3] - 1e-9
    # Diminishing returns: the 2->3 jump exceeds the 3->4 jump.
    assert out[3] - out[2] >= out[4] - out[3] - 0.02
    emit(["Ablation 6 — slot group size under k-SIC "
          "(greedy grouping, 14 clients, 25 instances)"]
         + [f"  k={k}: mean gain {gain:.4f}x" for k, gain in out.items()])


def test_ablation_rate_granularity(benchmark, channel):
    """Finer rate tables leave less slack for SIC (the paper's thesis).

    Evaluated on discrete upload pairs: the mean SIC gain under
    802.11b's 4 coarse rates exceeds that under 802.11g's 8, which
    exceeds 802.11n's 18 distinct steps — and the continuous
    (ideal-rate) gain sits below all of them in the region where
    discrete slack dominates.
    """
    rng = make_rng(2014)
    snrs = 10.0 ** (rng.uniform(6.0, 30.0, size=(5000, 2)) / 10.0)

    def run():
        out = {}
        for table in (DOT11B, DOT11G, DOT11N_20MHZ):
            gains = [discrete_upload_pair_gain(table, L, s1, s2)
                     for (s1, s2) in snrs]
            out[table.name] = float(np.mean(gains))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["802.11b"] >= out["802.11g"] - 1e-9
    assert out["802.11g"] >= out["802.11n-20MHz"] - 1e-9
    emit(["Ablation 5 — rate granularity (mean discrete upload gain, "
          "5000 pairs, 6-30 dB SNR)"]
         + [f"  {name:>14}: mean gain {gain:.4f}"
            for name, gain in out.items()])
