"""Bench: Fig. 11 — technique CDFs for both topology classes."""

from conftest import at_full_scale, bench_samples, emit, run_once

from repro.experiments import fig11


def test_fig11_technique_cdfs(benchmark):
    n_samples = bench_samples()
    result = run_once(benchmark, fig11.compute, n_samples=n_samples,
                      seed=2010)

    one = result["one_receiver"]
    two = result["two_receivers"]

    # Paper: one-receiver SIC alone is modest; power control /
    # multirate / packing lift the >20 %-gain fraction substantially;
    # two-receiver cases see almost nothing even with packing.
    sic_frac = one["sic"]["summary"]["frac_gain_over_20pct"]
    boosted = max(one[t]["summary"]["frac_gain_over_20pct"]
                  for t in ("power_control", "multirate", "packing"))
    assert boosted >= 0.20
    assert boosted >= 2.0 * sic_frac
    if at_full_scale():
        assert two["sic"]["summary"]["frac_no_gain"] > 0.9
        assert two["packing"]["summary"]["frac_gain_over_20pct"] <= 0.25
    else:  # smoke scale: looser statistical floors
        assert two["sic"]["summary"]["frac_no_gain"] > 0.8
        assert two["packing"]["summary"]["frac_gain_over_20pct"] <= 0.35

    lines = [f"Fig. 11 — gain CDF summaries ({n_samples} draws)"]
    for panel_name, panel in (("(a) two tx -> one rx", one),
                              ("(b) two tx -> two rx", two)):
        lines.append(panel_name)
        for technique, entry in panel.items():
            s = entry["summary"]
            lines.append(
                f"  {technique:>14}: no-gain {s['frac_no_gain']:.1%}, "
                f">20% gain {s['frac_gain_over_20pct']:.1%}, "
                f"median {s['median']:.3f}, max {s['max']:.3f}")
    emit(lines)
