"""Bench: Fig. 6 — Monte-Carlo CDF, two pairs to different receivers."""

from conftest import at_full_scale, bench_samples, emit, run_once

from repro.experiments import fig6


def test_fig6_monte_carlo(benchmark):
    n_samples = bench_samples()
    result = run_once(benchmark, fig6.compute,
                      ranges_m=(10.0, 20.0, 40.0), n_samples=n_samples,
                      seed=2010)

    # Paper headline: "no gain from SIC in 90 % of the cases".
    for label, entry in result.items():
        if at_full_scale():
            assert entry["summary"]["frac_no_gain"] >= 0.85, label
        else:  # smoke scale: looser statistical floor
            assert entry["summary"]["frac_no_gain"] >= 0.75, label
        assert entry["summary"]["max"] <= 2.0

    lines = [f"Fig. 6 — two transmitters to different receivers "
             f"({n_samples} draws per range, alpha = 4)"]
    for label, entry in result.items():
        s = entry["summary"]
        lines.append(
            f"  {label:>12}: no-gain {s['frac_no_gain']:.1%} "
            f"(paper ~90%), >10% gain {s['frac_gain_over_10pct']:.1%}, "
            f">20% gain {s['frac_gain_over_20pct']:.1%}, "
            f"max {s['max']:.3f}")
    emit(lines)
