"""Bench: Fig. 2 — aggregate two-transmitter capacity with SIC."""

import numpy as np

from conftest import emit, run_once

from repro.experiments import fig2


def test_fig2_rate_region(benchmark):
    result = run_once(benchmark, fig2.compute, n_points=201)

    sic = result.series["C with SIC (bps)"]
    c1 = result.series["C1 alone (bps)"]
    c2 = result.series["C2 alone (bps)"]

    # Paper claim: aggregate capacity with SIC exceeds both individual
    # capacities and equals that of a single (S1 + S2) transmitter.
    assert np.all(sic >= c1) and np.all(sic >= c2)
    assert np.allclose(sic, result.series["closed form (bps)"], rtol=1e-9)

    emit(["Fig. 2 — capacity vs SNR1 (SNR2 fixed at "
          f"{result.meta['snr2_db']} dB)"] + result.row_strings())
