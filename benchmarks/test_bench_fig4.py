"""Bench: Fig. 4 — same-receiver completion-time gain heatmap."""

import numpy as np

from conftest import emit, run_once

from repro.experiments import fig4
from repro.util.containers import ascii_heatmap


def test_fig4_same_receiver_heatmap(benchmark):
    grid = run_once(benchmark, fig4.compute, n_points=201)

    # Paper claims: a gain ridge where the two SIC bitrates are equal —
    # the stronger SNR about twice the weaker in dB — falling off on
    # both sides, and losses (gain < 1) on the strong diagonal.
    # The equal-rate condition S1 = S2 * (S2/N0 + 1) gives exactly 2x
    # only asymptotically; at the low-SNR end of the window the ratio
    # sits slightly above 2, hence the asymmetric band.
    ratio = fig4.ridge_snr_ratio(grid)
    assert 1.8 < ratio < 2.35
    assert grid.max_value <= 2.0
    assert grid.max_value > 1.55
    assert np.diag(grid.values)[-1] < 1.0

    emit(grid.summary_strings()
         + [f"  ridge stronger/weaker dB ratio: {ratio:.3f} (paper: ~2)",
            "", ascii_heatmap(grid)])
