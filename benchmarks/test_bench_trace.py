"""Bench: fast-path trace evaluation — vectorised generation + gain-only
scheduling for the Fig. 13/14 pipelines.

The headline claim: end-to-end ``fig13.compute`` (trace generation +
three technique sets over every busy snapshot) beats the frozen scalar
reference ``fig13.compute_scalar`` by >= 10x at the full 600-snapshot
evaluation scale, while returning bit-identical gain arrays.  The
supporting claims: the vectorised trace generators reproduce their
scalar references bit for bit at a large multiple of the speed, and the
phase split (trace_gen / scheduling / assembly) lands in
``BENCH_trace.json`` via ``extra_info``.

The CI smoke job runs this module with ``--benchmark-json`` to emit
``BENCH_trace.json``; ``REPRO_BENCH_TRACE_SNAPSHOTS`` caps the snapshot
count there, and the speedup floors relax below full scale (house
convention: benches soften their tightest assertions in smoke runs).
"""

import time

import numpy as np

from conftest import at_full_trace_scale, bench_trace_snapshots, emit, run_once

from repro.experiments import fig13
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.util.cache import ResultCache
from repro.util.timing import PhaseTimer


def best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fig13_fast_path_speedup(benchmark):
    """The PR's headline number: vectorised generation + gain-only
    scheduling vs the frozen scalar pipeline, end to end at default
    config, bit-identical gains required."""
    kw = dict(trace_config=UploadTraceConfig(duration_days=14.0),
              seed=2010, max_snapshots=bench_trace_snapshots(),
              cache=ResultCache(None))  # timing runs must never cache-hit

    fast = fig13.compute(**kw)
    scalar = fig13.compute_scalar(
        trace_config=kw["trace_config"], seed=2010,
        max_snapshots=kw["max_snapshots"])
    for label in ("pairing", "pairing+power_control", "pairing+multirate"):
        assert np.array_equal(fast[label]["gains"],
                              scalar[label]["gains"]), label
        assert fast[label]["summary"] == scalar[label]["summary"]
    assert fast["meta"] == scalar["meta"]

    fast_s = best_of(lambda: fig13.compute(**kw), 3)
    scalar_s = best_of(
        lambda: fig13.compute_scalar(
            trace_config=kw["trace_config"], seed=2010,
            max_snapshots=kw["max_snapshots"]), 1)
    speedup = scalar_s / fast_s

    timer = PhaseTimer()
    result = run_once(benchmark, lambda: fig13.compute(**kw, timer=timer))
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["n_snapshots"] = result["meta"]["n_snapshots"]
    for phase, seconds in timer.phases.items():
        benchmark.extra_info[f"{phase}_s"] = seconds

    emit([f"Fig. 13 fast path ({result['meta']['n_snapshots']} snapshots): "
          f"{fast_s * 1e3:.0f} ms vs scalar {scalar_s * 1e3:.0f} ms "
          f"-> {speedup:.1f}x",
          "  phases: " + ", ".join(f"{p} {s * 1e3:.0f} ms"
                                   for p, s in timer.phases.items())])
    floor = 10.0 if at_full_trace_scale() else 4.0
    assert speedup >= floor


def test_upload_trace_generation_speedup(benchmark):
    """Vectorised ``generate`` vs frozen ``generate_scalar`` on the full
    two-week trace, bit-identical output required."""
    generator = UploadTraceGenerator(UploadTraceConfig(duration_days=14.0))

    assert generator.generate(2010) == generator.generate_scalar(2010)

    fast_s = best_of(lambda: generator.generate(2010), 3)
    scalar_s = best_of(lambda: generator.generate_scalar(2010), 1)
    speedup = scalar_s / fast_s

    run_once(benchmark, lambda: generator.generate(2010))
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup

    emit([f"Upload trace generation (14 days): {fast_s * 1e3:.0f} ms vs "
          f"scalar {scalar_s * 1e3:.0f} ms -> {speedup:.1f}x"])
    assert speedup >= 2.0


def test_downlink_campaign_generation_speedup(benchmark):
    """Vectorised downlink campaign vs its scalar reference."""
    generator = DownlinkTraceGenerator(DownlinkTraceConfig(n_locations=100))

    assert generator.generate(2010) == generator.generate_scalar(2010)

    fast_s = best_of(lambda: generator.generate(2010), 3)
    scalar_s = best_of(lambda: generator.generate_scalar(2010), 1)
    speedup = scalar_s / fast_s

    run_once(benchmark, lambda: generator.generate(2010))
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup

    emit([f"Downlink campaign (100 locations): {fast_s * 1e3:.0f} ms vs "
          f"scalar {scalar_s * 1e3:.0f} ms -> {speedup:.1f}x"])
    assert speedup >= 1.0
