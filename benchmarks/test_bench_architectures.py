"""Bench: batched architecture sweeps — the Section 4 / Fig. 7 engines.

The headline claim: end-to-end ``fig7.compute`` (EWLAN grids +
residential rows + mesh geometry sweep, all through the batched
pair-scenario engine and the supervised runner) beats the frozen
scalar reference ``fig7.compute_scalar`` by >= 10x at the default
Fig. 7 sweep size, while returning bit-identical reports.  The
supporting claim: the MAC simulator's batched ``plan_schedule``
reproduces the frozen per-slot planner bit for bit at a multiple of
the speed.

The CI smoke job runs this module with ``--benchmark-json`` to emit
``BENCH_architectures.json``; ``REPRO_BENCH_ARCH_GRIDS`` shrinks the
grid count there, and the speedup floor relaxes below full scale
(house convention: benches soften their tightest assertions in smoke
runs).
"""

import time

import numpy as np

from conftest import at_full_arch_scale, bench_arch_grids, emit, run_once

from repro.experiments import fig7
from repro.phy.shannon import Channel
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sim.wlan import UplinkSimulator
from repro.techniques.pairing import TechniqueSet
from repro.util.cache import ResultCache
from repro.util.timing import PhaseTimer


def best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fig7_architecture_sweep_speedup(benchmark):
    """The PR's headline number: batched EWLAN/residential/mesh sweeps
    vs the frozen scalar pipeline, end to end, bit-identical reports
    required."""
    n_grids = bench_arch_grids()
    kw = dict(n_ewlan_grids=n_grids, n_residential_rows=3 * n_grids,
              seed=2010)
    no_cache = ResultCache(None)  # timing runs must never cache-hit

    fast = fig7.compute(**kw, cache=no_cache)
    scalar = fig7.compute_scalar(**kw)
    assert fast["ewlan"] == scalar["ewlan"]
    assert fast["residential"] == scalar["residential"]
    assert fast["mesh"] == scalar["mesh"]
    assert fast["mesh_frontier"] == scalar["mesh_frontier"]

    fast_s = best_of(lambda: fig7.compute(**kw, cache=no_cache), 3)
    scalar_s = best_of(lambda: fig7.compute_scalar(**kw), 1)
    speedup = scalar_s / fast_s

    timer = PhaseTimer()
    result = run_once(benchmark,
                      lambda: fig7.compute(**kw, cache=no_cache,
                                           timer=timer))
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["n_ewlan_pairs"] = result["ewlan"].n_pairs
    benchmark.extra_info["n_residential_pairs"] = \
        result["residential"].n_pairs
    for phase, seconds in timer.phases.items():
        benchmark.extra_info[f"{phase}_s"] = seconds

    emit([f"Fig. 7 architecture sweeps ({result['ewlan'].n_pairs} EWLAN + "
          f"{result['residential'].n_pairs} residential pairs): "
          f"{fast_s * 1e3:.0f} ms vs scalar {scalar_s * 1e3:.0f} ms "
          f"-> {speedup:.1f}x",
          "  phases: " + ", ".join(f"{p} {s * 1e3:.0f} ms"
                                   for p, s in timer.phases.items())])
    floor = 10.0 if at_full_arch_scale() else 6.0
    assert speedup >= floor


def test_plan_schedule_speedup(benchmark):
    """Batched MAC-sim slot planning vs the frozen per-slot planner on
    a large schedule, bit-identical plans required.

    Timed on the plain pairing scheduler (solo/SERIAL/SIC slots — the
    fully batched surface); the power-control / multirate expansions
    deliberately keep the scalar per-slot path, so a TechniqueSet.ALL
    schedule is only checked for bit-identity, not speed.
    """
    channel = Channel()
    rng = np.random.default_rng(2010)
    clients = [UploadClient(f"C{i + 1}", float(rss)) for i, rss
               in enumerate(10 ** rng.uniform(-12.5, -8, size=400))]
    scheduler = SicScheduler(channel=channel, techniques=TechniqueSet.NONE)
    schedule = scheduler.schedule(clients)
    simulator = UplinkSimulator(channel=channel)
    rss = {c.name: c.rss_w for c in clients}

    assert simulator.plan_schedule(schedule, rss) == \
        simulator.plan_schedule_scalar(schedule, rss)
    all_schedule = SicScheduler(
        channel=channel, techniques=TechniqueSet.ALL).schedule(clients)
    assert simulator.plan_schedule(all_schedule, rss) == \
        simulator.plan_schedule_scalar(all_schedule, rss)

    fast_s = best_of(lambda: simulator.plan_schedule(schedule, rss), 5)
    scalar_s = best_of(
        lambda: simulator.plan_schedule_scalar(schedule, rss), 3)
    speedup = scalar_s / fast_s

    run_once(benchmark, lambda: simulator.plan_schedule(schedule, rss))
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["n_slots"] = len(schedule.slots)

    emit([f"MAC-sim slot planning ({len(schedule.slots)} slots): "
          f"{fast_s * 1e3:.1f} ms vs scalar {scalar_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x"])
    assert speedup >= 2.5
