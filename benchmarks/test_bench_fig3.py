"""Bench: Fig. 3 — relative capacity gain heatmap."""

import numpy as np

from conftest import emit, run_once

from repro.experiments import fig3
from repro.util.containers import ascii_heatmap


def test_fig3_capacity_gain_heatmap(benchmark):
    grid = run_once(benchmark, fig3.compute, n_points=201)

    # Paper claims: gain always >= 1, "not high in general", largest
    # when RSSs are smaller and similar.
    assert grid.min_value >= 1.0
    assert np.median(grid.values) < 1.2
    peak = grid.argmax()
    assert peak["SNR1 (dB)"] <= 3.0 and peak["SNR2 (dB)"] <= 3.0
    assert 1.4 < grid.max_value <= 2.0

    emit(grid.summary_strings() + ["", ascii_heatmap(grid)])
