"""Frozen-reference / fast-path parity rules (RPR4xx).

Every speedup in this repo rests on one convention (PR-1): a vectorised
fast path must replay its frozen ``<name>_scalar`` reference draw for
draw and bit for bit.  The golden tests *demonstrate* that parity; these
rules *police the discipline around it* so a PR cannot silently erode
it:

* RPR401 — the fast path's signature drifts away from its frozen twin
  (a renamed parameter or changed default makes "same arguments" calls
  diverge);
* RPR402 — a frozen ``*_scalar`` reference's body no longer matches the
  committed AST-normalised digest manifest (``repro-lint
  --check-frozen`` / ``--update-frozen``);
* RPR403 — a fast path draws from a Generator inside a Python loop
  (per-iteration draws are exactly what vectorisation replaces; when
  the frozen stream itself is per-iteration, suppress with a
  justification);
* RPR404 — a pair has no golden bit-identity test: nothing under
  ``tests/`` references the frozen ``*_scalar`` name;
* RPR405 — iteration over a ``set``-typed value feeds an ordered
  result or an RNG draw (set order is an implementation detail of the
  hash table, not a reproducible contract — iterate ``sorted(...)``).

RPR402 arms only when the runner is given a frozen manifest, RPR404
only when it scanned a test tree; linting a lone fixture file stays
self-contained.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.context import FileContext
from repro.lint.index import ParityPair, ProjectIndex, callee_bare_name
from repro.lint.registry import Rule, register
from repro.lint.rules.rng import DRAW_METHODS, RNG_FACTORIES
from repro.lint.violations import Violation

#: Annotation spellings that mark a value as set-typed.
_SET_ANNOTATIONS = ("Set[", "FrozenSet[", "set[", "frozenset[")
_SET_ANNOTATION_EXACT = frozenset({"set", "Set", "frozenset", "FrozenSet"})

#: Methods whose call inside a set-iteration loop makes order observable.
_ORDER_SINK_METHODS = frozenset(
    {"append", "extend", "insert", "appendleft", "put"}
)


def _at(ctx: FileContext, lineno: int, code: str, message: str) -> Violation:
    """A violation anchored by line number (no AST node at hand)."""
    return Violation(
        path=str(ctx.path), line=lineno, col=0, code=code, message=message
    )


def _find_def(
    tree: ast.Module, qualname: str
) -> Optional[ast.FunctionDef]:
    """Resolve ``"func"`` / ``"Class.method"`` to its def node."""
    parts = qualname.split(".")
    body: Sequence[ast.stmt] = tree.body
    if len(parts) == 2:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == parts[0]:
                body = stmt.body
                break
        else:
            return None
    for stmt in body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == parts[-1]:
            return stmt
    return None


def _is_rng_receiver(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and (
        node.id == "rng" or node.id.endswith("_rng")
    )


def _is_draw_call(node: ast.AST) -> bool:
    """A Generator draw (``rng.normal(...)``) or generator construction."""
    if not isinstance(node, ast.Call):
        return False
    if callee_bare_name(node.func) in RNG_FACTORIES:
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in DRAW_METHODS
        and _is_rng_receiver(node.func.value)
    )


@register
class SignatureDriftRule(Rule):
    """RPR401 — fast-path signature drifted from its frozen twin.

    The frozen reference's parameter list must survive verbatim in the
    fast path: same names, same order, same defaults.  The fast path may
    *append* parameters (timers, worker counts, caches) as long as every
    addition has a default, so ``f(args...)`` and ``f_scalar(args...)``
    stay interchangeable call for call.
    """

    code = "RPR401"
    summary = "fast-path signature drifted from its frozen *_scalar twin"
    hint = (
        "keep the frozen reference's parameters (names, order, defaults) "
        "as a prefix of the fast path's; new fast-path parameters need "
        "defaults"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for pair in index.pairs_with_fast_in(ctx.module):
            for problem in _signature_drift(pair):
                yield _at(
                    ctx,
                    pair.fast.lineno,
                    self.code,
                    f"'{pair.fast.qualname}' vs frozen "
                    f"'{pair.scalar.qualname}': {problem}",
                )


def _signature_drift(pair: ParityPair) -> List[str]:
    fast, scalar = pair.fast, pair.scalar
    problems: List[str] = []
    n = len(scalar.positional)
    if fast.positional[:n] != scalar.positional:
        problems.append(
            f"positional parameters drifted: frozen takes "
            f"{_fmt(scalar.positional)}, fast path starts with "
            f"{_fmt(fast.positional[:n])}"
        )
        return problems  # parameter sets diverged; default checks would double-report
    for extra in fast.positional[n:]:
        if fast.default_of(extra) is None:
            problems.append(
                f"fast-path-only parameter '{extra}' has no default, so "
                f"frozen-twin call sites cannot be replayed against it"
            )
    missing_kw = [
        k for k in scalar.keyword_only if k not in fast.keyword_only
    ]
    if missing_kw:
        problems.append(
            f"keyword-only parameter(s) {_fmt(missing_kw)} of the frozen "
            f"twin are missing from the fast path"
        )
    for extra in fast.keyword_only:
        if extra not in scalar.keyword_only and fast.default_of(extra) is None:
            problems.append(
                f"fast-path-only keyword parameter '{extra}' has no default"
            )
    shared = list(scalar.positional) + [
        k for k in scalar.keyword_only if k in fast.keyword_only
    ]
    for param in shared:
        f_default = fast.default_of(param)
        s_default = scalar.default_of(param)
        if f_default != s_default:
            problems.append(
                f"default drift for parameter '{param}': frozen has "
                f"{s_default!r}, fast path has {f_default!r}"
            )
    return problems


def _fmt(names: Sequence[str]) -> str:
    return "(" + ", ".join(names) + ")"


@register
class FrozenReferenceDriftRule(Rule):
    """RPR402 — a frozen reference no longer matches the manifest digest.

    Frozen ``*_scalar`` references are behaviourally immutable by
    convention; their AST-normalised SHA-256 digests are committed in
    the frozen manifest.  Comment/whitespace/docstring edits keep the
    digest; any code-token edit trips it.  Deliberate re-freezing goes
    through ``repro-lint --update-frozen`` so the diff reviews as a
    manifest change, never as a silent drive-by.
    """

    code = "RPR402"
    summary = "frozen *_scalar reference drifted from the committed manifest"
    hint = (
        "frozen references must not change behaviour: revert the edit, or "
        "re-freeze deliberately with 'repro-lint --update-frozen' and "
        "justify the manifest diff in review"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not index.has_manifest:
            return
        for frozen in index.scalar_defs_in(ctx.module):
            expected = index.manifest_digest(frozen.key)
            if expected is None:
                yield _at(
                    ctx,
                    frozen.lineno,
                    self.code,
                    f"frozen reference '{frozen.qualname}' is not "
                    f"registered in the frozen manifest; run "
                    f"'repro-lint --update-frozen' to freeze it",
                )
            elif expected != frozen.digest:
                yield _at(
                    ctx,
                    frozen.lineno,
                    self.code,
                    f"frozen reference '{frozen.qualname}' drifted: "
                    f"digest {frozen.digest[:12]} != manifest "
                    f"{expected[:12]}; {self.hint}",
                )


@register
class FastPathLoopDrawRule(Rule):
    """RPR403 — Generator draw inside a Python loop in a fast path.

    Per-iteration draws are exactly what the vectorised fast paths
    replace with block draws — and they are the easiest way to reorder
    the stream relative to the frozen reference (an early ``continue``,
    a reordered loop, a data-dependent draw count).  Where the frozen
    stream is *defined* per iteration (per-snapshot draw counts), keep
    the loop and suppress with a justification comment.
    """

    code = "RPR403"
    summary = "Generator draw inside a Python loop in a vectorised fast path"
    hint = (
        "block the draws (size=n) to mirror the frozen stream, or — when "
        "the frozen reference itself draws per iteration — suppress with "
        "'# repro-lint: disable=RPR403' plus a why-comment"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for pair in index.pairs_with_fast_in(ctx.module):
            node = _find_def(ctx.tree, pair.fast.qualname)
            if node is None:
                continue
            seen: Set[int] = set()
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for child in ast.walk(loop):
                    if id(child) in seen or child is loop:
                        continue
                    if _is_draw_call(child):
                        seen.add(id(child))
                        yield ctx.make_violation(
                            child,
                            self.code,
                            f"fast path '{pair.fast.qualname}' draws "
                            f"inside a loop; {self.hint}",
                        )


@register
class MissingGoldenTestRule(Rule):
    """RPR404 — a parity pair with no golden bit-identity test.

    The frozen reference only earns its keep when a test replays it
    against the fast path.  The runner indexes every identifier
    referenced under the test tree; a pair whose ``*_scalar`` name never
    appears there has no golden test and the parity claim is untested.
    """

    code = "RPR404"
    summary = "fast-path pair has no golden bit-identity test"
    hint = (
        "add a test that runs the fast path and its *_scalar twin on "
        "identical inputs and asserts bit-identical results"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not index.has_test_index:
            return
        for pair in index.pairs_with_fast_in(ctx.module):
            if not index.test_references_name(pair.scalar.name):
                yield _at(
                    ctx,
                    pair.fast.lineno,
                    self.code,
                    f"no test references frozen twin "
                    f"'{pair.scalar.name}' of '{pair.fast.qualname}'; "
                    f"{self.hint}",
                )


@register
class UnorderedIterationRule(Rule):
    """RPR405 — set iteration feeding an ordered result or an RNG draw.

    CPython set order is a hash-table accident: stable enough to pass
    tests for years, free to change with insertion history, interpreter
    version or value range.  Results assembled (or streams drawn) in set
    order are therefore not a reproducible contract.  The rule tracks
    evident set values per function — ``set()``/``frozenset()`` calls
    and literals, parameters annotated ``Set[...]``, and names assigned
    from calls whose indexed return annotation is set-typed — and flags
    ``for`` loops over them whose body appends to a sequence,
    accumulates (``+=``), stores by subscript, yields, or draws
    randomness, plus list comprehensions over them.  ``sorted(...)``
    around the iterable is the fix and never flags.
    """

    code = "RPR405"
    summary = "iteration over a set feeds results or RNG in hash order"
    hint = "iterate 'sorted(the_set)' so the order is a stated contract"

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, index, node)

    def _check_function(
        self,
        ctx: FileContext,
        index: ProjectIndex,
        func: ast.FunctionDef,
    ) -> Iterator[Violation]:
        set_names = _set_typed_names(func, index)
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                if _is_set_valued(node.iter, set_names, index) and (
                    _order_sink_in(node.body)
                ):
                    target = ast.unparse(node.iter)
                    yield ctx.make_violation(
                        node,
                        self.code,
                        f"loop over set '{target}' feeds an ordered "
                        f"result or RNG; {self.hint}",
                    )
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_set_valued(gen.iter, set_names, index):
                        target = ast.unparse(gen.iter)
                        yield ctx.make_violation(
                            node,
                            self.code,
                            f"list built in hash order of set "
                            f"'{target}'; {self.hint}",
                        )


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    source = ast.unparse(annotation)
    return source in _SET_ANNOTATION_EXACT or any(
        marker in source for marker in _SET_ANNOTATIONS
    )


def _returns_set(call: ast.Call, index: ProjectIndex) -> bool:
    name = callee_bare_name(call.func)
    if name in ("set", "frozenset"):
        return True
    if name is None:
        return False
    sig = index.signature(name)
    if sig is None or sig.returns is None:
        return False
    return sig.returns in _SET_ANNOTATION_EXACT or any(
        marker in sig.returns for marker in _SET_ANNOTATIONS
    )


def _set_typed_names(
    func: ast.FunctionDef, index: ProjectIndex
) -> Dict[str, str]:
    """Names evidently bound to sets in ``func`` -> evidence string."""
    names: Dict[str, str] = {}
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if _annotation_is_set(arg.annotation):
            names[arg.arg] = "parameter annotation"
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                node.annotation
            ):
                names[target.id] = "annotation"
            elif isinstance(value, (ast.Set, ast.SetComp)):
                names[target.id] = "set literal"
            elif isinstance(value, ast.Call) and _returns_set(value, index):
                names[target.id] = "set-returning call"
    return names


def _is_set_valued(
    node: ast.expr, set_names: Dict[str, str], index: ProjectIndex
) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        return _returns_set(node, index)
    return False


def _order_sink_in(body: Sequence[ast.stmt]) -> bool:
    """Does the loop body make iteration order observable?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.AugAssign, ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in node.targets
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINK_METHODS
            ):
                return True
            if _is_draw_call(node):
                return True
    return False


__all__ = [
    "FastPathLoopDrawRule",
    "FrozenReferenceDriftRule",
    "MissingGoldenTestRule",
    "SignatureDriftRule",
    "UnorderedIterationRule",
]
