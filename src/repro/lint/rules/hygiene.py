"""Determinism-hygiene rules for the parallel engines (RPR3xx).

The chunked Monte-Carlo engines promise bit-identical results for a
given ``(seed, n_samples, chunk_size)`` regardless of worker count.
Wall-clock reads and OS entropy inside ``experiments``/``sim`` result
paths silently break that promise (``time.perf_counter`` remains fine
for *measuring* elapsed time — it never feeds results).  Retry and
backoff paths (``experiments``/``sim``/``util``) must route waiting
through the injectable :class:`repro.util.faults.RetryPolicy` sleep
hook — a bare ``time.sleep`` makes recovery untestable and couples the
supervisor to the wall clock.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex
from repro.lint.registry import Rule, register
from repro.lint.violations import Violation

#: Packages holding the deterministic result pipelines.
DETERMINISTIC_PACKAGES: FrozenSet[str] = frozenset({"experiments", "sim"})

#: Packages whose retry/backoff paths must use the injectable sleep hook.
RETRY_PATH_PACKAGES: FrozenSet[str] = DETERMINISTIC_PACKAGES | {"util"}


def _applies(ctx: FileContext) -> bool:
    return ctx.in_any_package(*DETERMINISTIC_PACKAGES)


def _bindings_of(tree: ast.Module, module: str, original: str) -> Set[str]:
    """Local names bound to ``module.original`` via ``from module import``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name == original:
                    names.add(alias.asname or alias.name)
    return names


@register
class WallClockRule(Rule):
    """RPR301 — ``time.time()`` in a deterministic result pipeline."""

    code = "RPR301"
    summary = (
        "time.time() is wall-clock nondeterminism; results must depend "
        "only on (seed, config) — use time.perf_counter() for benchmarks"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        bare_bindings = _bindings_of(ctx.tree, "time", "time")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif isinstance(func, ast.Name) and func.id in bare_bindings:
                yield ctx.make_violation(node, self.code, self.summary)


@register
class OsEntropyRule(Rule):
    """RPR302 — ``os.urandom`` in a deterministic result pipeline."""

    code = "RPR302"
    summary = (
        "os.urandom draws OS entropy; derive per-worker streams with "
        "repro.util.rng.spawn_seed_sequences instead"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        bindings = _bindings_of(ctx.tree, "os", "urandom")
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "urandom"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif (
                isinstance(node, ast.Name)
                and node.id in bindings
                and isinstance(node.ctx, ast.Load)
            ):
                yield ctx.make_violation(node, self.code, self.summary)


@register
class BareSleepRule(Rule):
    """RPR303 — bare ``time.sleep`` in a retry/backoff path.

    Sleeping directly couples recovery to the wall clock and makes
    every retry test take real seconds.  ``RetryPolicy`` carries an
    injectable ``sleep`` callable precisely so supervisors stay
    clock-free by default and tests can record delays instead of
    serving them; calls through an injected callable (a parameter or
    attribute named ``sleep``) are fine.
    """

    code = "RPR303"
    summary = (
        "bare time.sleep bypasses the injectable RetryPolicy sleep hook; "
        "accept a sleep callable (repro.util.faults.RetryPolicy) instead"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not ctx.in_any_package(*RETRY_PATH_PACKAGES):
            return
        bindings = _bindings_of(ctx.tree, "time", "sleep")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif isinstance(func, ast.Name) and func.id in bindings:
                yield ctx.make_violation(node, self.code, self.summary)
