"""Determinism-hygiene rules for the parallel engines (RPR3xx).

The chunked Monte-Carlo engines promise bit-identical results for a
given ``(seed, n_samples, chunk_size)`` regardless of worker count.
Wall-clock reads and OS entropy inside ``experiments``/``sim`` result
paths silently break that promise (``time.perf_counter`` remains fine
for *measuring* elapsed time — it never feeds results).  Retry and
backoff paths (``experiments``/``sim``/``util``) must route waiting
through the injectable :class:`repro.util.faults.RetryPolicy` sleep
hook — a bare ``time.sleep`` makes recovery untestable and couples the
supervisor to the wall clock.

RPR304 is performance hygiene rather than determinism: a head pop on a
Python list shifts every remaining element, so ``pop(0)`` inside a loop
is accidentally quadratic — exactly the drain-the-queue shape the online
scheduler runs per batch.  ``collections.deque.popleft`` is O(1).

RPR305 is the shared-mutable-default trap, instance flavour: a default
argument like ``config: UploadTraceConfig = UploadTraceConfig()`` is
evaluated once at import and shared by every caller, so any mutation —
or identity-sensitive caching — leaks across calls; frozen dataclasses
merely hide the hazard until someone adds a mutable field.  Default to
``None`` and construct inside.

RPR306 is durability hygiene: a bare ``open(path, "w")`` or
``Path.write_text`` publishes bytes under the final name while they are
still being written, so a crash mid-write leaves a torn file that later
reads as valid.  Durable writes must go through the atomic helpers
(``repro.util.cache.atomic_write_*``: tmp file + ``os.replace``), which
also gives them named fault-injection sites the crash-point matrix can
kill.  The tmp half of an atomic writer is the one legitimate raw write
and carries the suppression pragma.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterator, Set

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex
from repro.lint.registry import Rule, register
from repro.lint.violations import Violation

#: Packages holding the deterministic result pipelines.
DETERMINISTIC_PACKAGES: FrozenSet[str] = frozenset({"experiments", "sim"})

#: Packages whose retry/backoff paths must use the injectable sleep hook.
RETRY_PATH_PACKAGES: FrozenSet[str] = DETERMINISTIC_PACKAGES | {"util"}


def _applies(ctx: FileContext) -> bool:
    return ctx.in_any_package(*DETERMINISTIC_PACKAGES)


def _bindings_of(tree: ast.Module, module: str, original: str) -> Set[str]:
    """Local names bound to ``module.original`` via ``from module import``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name == original:
                    names.add(alias.asname or alias.name)
    return names


@register
class WallClockRule(Rule):
    """RPR301 — ``time.time()`` in a deterministic result pipeline."""

    code = "RPR301"
    summary = (
        "time.time() is wall-clock nondeterminism; results must depend "
        "only on (seed, config) — use time.perf_counter() for benchmarks"
    )
    hint = (
        "take simulated time from the event loop; for measuring elapsed "
        "real time use time.perf_counter()"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        bare_bindings = _bindings_of(ctx.tree, "time", "time")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif isinstance(func, ast.Name) and func.id in bare_bindings:
                yield ctx.make_violation(node, self.code, self.summary)


@register
class OsEntropyRule(Rule):
    """RPR302 — ``os.urandom`` in a deterministic result pipeline."""

    code = "RPR302"
    summary = (
        "os.urandom draws OS entropy; derive per-worker streams with "
        "repro.util.rng.spawn_seed_sequences instead"
    )
    hint = (
        "derive worker streams from the run seed via "
        "repro.util.rng.spawn_seed_sequences"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        bindings = _bindings_of(ctx.tree, "os", "urandom")
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "urandom"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif (
                isinstance(node, ast.Name)
                and node.id in bindings
                and isinstance(node.ctx, ast.Load)
            ):
                yield ctx.make_violation(node, self.code, self.summary)


@register
class BareSleepRule(Rule):
    """RPR303 — bare ``time.sleep`` in a retry/backoff path.

    Sleeping directly couples recovery to the wall clock and makes
    every retry test take real seconds.  ``RetryPolicy`` carries an
    injectable ``sleep`` callable precisely so supervisors stay
    clock-free by default and tests can record delays instead of
    serving them; calls through an injected callable (a parameter or
    attribute named ``sleep``) are fine.
    """

    code = "RPR303"
    summary = (
        "bare time.sleep bypasses the injectable RetryPolicy sleep hook; "
        "accept a sleep callable (repro.util.faults.RetryPolicy) instead"
    )
    hint = (
        "accept an injectable sleep callable so tests can record delays "
        "instead of serving them"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not ctx.in_any_package(*RETRY_PATH_PACKAGES):
            return
        bindings = _bindings_of(ctx.tree, "time", "sleep")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield ctx.make_violation(node, self.code, self.summary)
            elif isinstance(func, ast.Name) and func.id in bindings:
                yield ctx.make_violation(node, self.code, self.summary)


@register
class HeadPopInLoopRule(Rule):
    """RPR304 — ``.pop(0)`` inside a loop body.

    ``list.pop(0)`` shifts every remaining element, so draining a queue
    with it is O(n^2).  The rule fires on any ``<expr>.pop(0)`` call
    lexically inside a ``for``/``while`` body, anywhere in the tree —
    it cannot see types, but a head pop in a loop is the quadratic
    drain shape regardless of container, and genuinely-needed cases
    (e.g. a list that also takes arbitrary-index pops) can carry a
    suppression pragma.  Tail pops (``pop()`` / ``pop(-1)``) and
    ``deque.popleft()`` are O(1) and not flagged.
    """

    code = "RPR304"
    summary = (
        "pop(0) inside a loop is O(n) per call (quadratic drain); "
        "use collections.deque and popleft() for O(1) head pops"
    )
    hint = (
        "drain queues through collections.deque.popleft(); keep a list "
        "only when arbitrary-index pops are genuinely needed"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if id(node) in seen:
                    continue  # nested loops walk inner calls twice
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Constant)
                    and type(node.args[0].value) is int
                    and node.args[0].value == 0
                ):
                    seen.add(id(node))
                    yield ctx.make_violation(node, self.code, self.summary)


def _terminal_name(func: ast.expr) -> str:
    """The rightmost name of a call target (``pkg.mod.Cls`` -> ``Cls``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class InstanceDefaultArgumentRule(Rule):
    """RPR305 — a class instance constructed as a parameter default.

    ``def __init__(self, config: Config = Config())`` builds ONE
    instance at import time and shares it across every call — the
    classic mutable-default trap, which frozen dataclasses only
    disguise (an added mutable field, cached property, or identity
    check resurrects it).  The rule fires on any call to a
    CamelCase-named constructor in a parameter default, in ``def``,
    ``async def`` and ``lambda`` alike.  Module-level *constants* as
    defaults (``rate_table=DOT11G``) are fine — no call, no fresh
    instance; so are lowercase factory calls, which read as deliberate.
    Default to ``None`` and construct inside the function.
    """

    code = "RPR305"
    summary = (
        "class instance as a parameter default is evaluated once and "
        "shared by every call; default to None and construct inside"
    )
    hint = (
        "default the parameter to None and construct the instance inside "
        "the function body"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults
                            if d is not None)
            for default in defaults:
                for call in ast.walk(default):
                    if not isinstance(call, ast.Call):
                        continue
                    name = _terminal_name(call.func)
                    if name[:1].isupper() and not name.isupper():
                        yield ctx.make_violation(call, self.code,
                                                 self.summary)


#: A constant string that reads as an ``open()`` mode.
_MODE_RE = re.compile(r"^[rwaxbt+U]{1,4}$")


def _open_mode(node: ast.Call) -> str:
    """The constant mode string of an ``open``-style call, or ``"r"``.

    The mode is positional arg 0 for ``Path.open`` and arg 1 for the
    builtin, so the first of the leading two positionals (or a
    ``mode=`` keyword) that *looks like* a mode string wins.  Dynamic
    modes are unknowable and never flagged.
    """
    candidates = list(node.args[:2])
    candidates.extend(k.value for k in node.keywords if k.arg == "mode")
    for expr in candidates:
        if (isinstance(expr, ast.Constant) and isinstance(expr.value, str)
                and _MODE_RE.match(expr.value)):
            return expr.value
    return "r"


@register
class NonAtomicWriteRule(Rule):
    """RPR306 — a raw durable write bypassing the atomic-write helpers.

    Fires on ``open(..., "w"/"a"/"x"/"+")`` (builtin and ``Path.open``
    alike) and on ``.write_text`` / ``.write_bytes`` calls.  A raw
    write publishes under the final filename while the bytes are still
    in flight: a crash mid-write leaves a torn file that a later run
    may read as valid, and the write is invisible to the I/O
    fault-injection sites the crash-point matrix enumerates.  Route
    durable writes through ``repro.util.cache.atomic_write_bytes`` /
    ``atomic_write_text`` / ``atomic_write_npz`` (or an equivalent
    tmp + ``os.replace`` writer whose raw half carries the pragma).
    """

    code = "RPR306"
    summary = (
        "raw write to a durable path (torn on crash, invisible to fault "
        "injection); use repro.util.cache.atomic_write_* instead"
    )
    hint = (
        "write via atomic_write_text/bytes/npz, or stream into a tmp "
        "file published with os.replace and suppress the tmp write"
    )

    _WRITERS = frozenset({"write_text", "write_bytes"})

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._WRITERS:
                yield ctx.make_violation(node, self.code, self.summary)
                continue
            is_open = (
                (isinstance(func, ast.Name) and func.id == "open")
                or (isinstance(func, ast.Attribute) and func.attr == "open")
            )
            if is_open and any(c in _open_mode(node) for c in "wax+"):
                yield ctx.make_violation(node, self.code, self.summary)
