"""Boundary-validation rule (RPR2xx).

Public numeric entry points of the physical-layer packages must validate
their inputs through :mod:`repro.util.validation` so bad values surface
at the boundary (with the parameter named) rather than as NaNs deep in a
Monte-Carlo sweep.  Delegation counts: a function whose float parameters
flow into a helper that validates (transitively) is compliant — the
project call-graph closure in :class:`repro.lint.index.ProjectIndex`
resolves that.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex, collect_function_defs
from repro.lint.registry import Rule, register
from repro.lint.violations import Violation

#: Packages whose public functions form the validated boundary.
BOUNDARY_PACKAGES: FrozenSet[str] = frozenset({"phy", "sic", "topology"})


def _float_params(node: ast.FunctionDef) -> List[str]:
    """Parameters annotated exactly ``float`` (the boundary contract)."""
    out: List[str] = []
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        annotation = arg.annotation
        if isinstance(annotation, ast.Name) and annotation.id == "float":
            out.append(arg.arg)
        elif (
            isinstance(annotation, ast.Constant)
            and annotation.value == "float"
        ):
            out.append(arg.arg)
    return out


@register
class UnvalidatedBoundaryRule(Rule):
    """RPR201 — public float-taking function never reaches a checker."""

    code = "RPR201"
    summary = (
        "public function with float parameter(s) never calls a "
        "repro.util.validation checker (directly or via its callees)"
    )
    hint = (
        "validate at the boundary with repro.util.validation "
        "(check_positive, check_non_negative, ...) or delegate to a "
        "helper that does"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if not ctx.in_any_package(*BOUNDARY_PACKAGES):
            return
        for node, is_top_level in collect_function_defs(ctx.tree):
            if not is_top_level or node.name.startswith("_"):
                continue
            params = _float_params(node)
            if not params:
                continue
            if index.reaches_validation(node.name):
                continue
            yield ctx.make_violation(
                node,
                self.code,
                f"'{node.name}' takes float parameter(s) "
                f"{', '.join(repr(p) for p in params)} but never reaches a "
                "repro.util.validation checker",
            )
