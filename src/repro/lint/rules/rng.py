"""RNG-determinism rules (RPR1xx).

Reproducibility contract (:mod:`repro.util.rng`): every stochastic entry
point accepts a ``seed``/``rng`` parameter, nothing touches the legacy
global numpy state, and worker sub-streams come from ``SeedSequence``
spawning.  The worker-count-invariant Monte-Carlo engines rely on this —
one unseeded generator in a code path silently breaks replay.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex, callee_bare_name
from repro.lint.registry import Rule, register
from repro.lint.violations import Violation

#: The single module allowed to talk to ``numpy.random`` directly.
RNG_MODULE = "repro.util.rng"

#: Legacy global-state ``numpy.random`` API (module-level functions).
LEGACY_NP_RANDOM: FrozenSet[str] = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "lognormal",
        "rayleigh",
        "gamma",
        "beta",
        "choice",
        "shuffle",
        "permutation",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Functions that construct generators or derive seed streams.
RNG_FACTORIES: FrozenSet[str] = frozenset(
    {"make_rng", "default_rng", "spawn_rngs", "spawn_seed_sequences"}
)

#: ``numpy.random.Generator`` drawing methods.
DRAW_METHODS: FrozenSet[str] = frozenset(
    {
        "random",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "binomial",
        "lognormal",
        "rayleigh",
        "gamma",
        "beta",
        "multivariate_normal",
        "bytes",
    }
)

#: Parameter names that satisfy "this function accepts its randomness".
SEED_PARAM_NAMES: FrozenSet[str] = frozenset(
    {"seed", "rng", "seed_seq", "seed_sequence", "random_state", "generator"}
)
SEED_PARAM_SUFFIXES: Tuple[str, ...] = ("_seed", "_rng", "_seed_seq")


def _is_np_random_attribute(node: ast.AST) -> Optional[str]:
    """``np.random.X`` / ``numpy.random.X`` -> ``X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "random"
        and isinstance(node.value.value, ast.Name)
        and node.value.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def _in_rng_module(ctx: FileContext) -> bool:
    return ctx.is_module(RNG_MODULE)


@register
class LegacyNumpyRandomRule(Rule):
    """RPR101 — legacy global-state ``np.random.*`` API."""

    code = "RPR101"
    summary = (
        "legacy global numpy.random API; thread a Generator from "
        "repro.util.rng.make_rng instead"
    )
    hint = (
        "accept a SeedLike parameter, build the generator with "
        "repro.util.rng.make_rng and draw from it"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            attr = _is_np_random_attribute(node)
            if attr in LEGACY_NP_RANDOM:
                yield ctx.make_violation(
                    node, self.code, f"np.random.{attr}: {self.summary}"
                )


@register
class StdlibRandomRule(Rule):
    """RPR102 — the stdlib ``random`` module (unseedable per-call here)."""

    code = "RPR102"
    summary = (
        "stdlib 'random' module; use numpy Generators via "
        "repro.util.rng.make_rng so seeds thread through"
    )
    hint = (
        "replace stdlib random calls with draws on a numpy Generator "
        "from repro.util.rng.make_rng"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "random" for alias in node.names):
                    yield ctx.make_violation(node, self.code, self.summary)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield ctx.make_violation(node, self.code, self.summary)


@register
class UnseededDefaultRngRule(Rule):
    """RPR103 — ``default_rng()`` with no/None seed outside ``util.rng``."""

    code = "RPR103"
    summary = (
        "unseeded default_rng() draws OS entropy and breaks replay; "
        "accept a SeedLike and call repro.util.rng.make_rng"
    )
    hint = (
        "thread a seed parameter to the call site and construct via "
        "repro.util.rng.make_rng(seed)"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if callee_bare_name(node.func) != "default_rng":
                continue
            unseeded = (not node.args and not node.keywords) or (
                len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded:
                yield ctx.make_violation(node, self.code, self.summary)


def _param_names(node: ast.FunctionDef) -> List[str]:
    args = node.args
    return [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]


def _accepts_seed(node: ast.FunctionDef) -> bool:
    for name in _param_names(node):
        lowered = name.lower()
        if lowered in SEED_PARAM_NAMES or lowered.endswith(SEED_PARAM_SUFFIXES):
            return True
    return False


def _is_rng_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and (
        node.id == "rng" or node.id.endswith("_rng")
    )


def _draw_in_statement(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """First randomness acquisition inside ``node`` (nested defs excluded).

    Returns ``(call_node, description)`` or None.  Draws on ``self.*``
    attributes are deliberately ignored: an rng stored on the instance
    was injected through a seeded constructor.
    """
    for child in _walk_excluding_functions(node):
        if not isinstance(child, ast.Call):
            continue
        name = callee_bare_name(child.func)
        if name in RNG_FACTORIES:
            return child, f"{name}()"
        if (
            isinstance(child.func, ast.Attribute)
            and child.func.attr in DRAW_METHODS
            and _is_rng_name(child.func.value)
        ):
            base = child.func.value
            assert isinstance(base, ast.Name)
            return child, f"{base.id}.{child.func.attr}()"
    return None


def _walk_excluding_functions(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function defs."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


@register
class SeedlessStochasticFunctionRule(Rule):
    """RPR104 — a function draws randomness but accepts no seed/rng.

    A function whose *own* body acquires randomness (constructs a
    generator or draws from an ``rng``-named one) must accept a
    ``seed``/``rng``-style parameter — directly or on an enclosing
    function (closures inherit the enclosing seed).
    """

    code = "RPR104"
    summary = "function draws randomness but accepts no seed/rng parameter"
    hint = (
        "add a seed/rng parameter (repro.util.rng.SeedLike) so callers "
        "can replay the stream"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        yield from self._check_scope(ctx, ctx.tree, enclosing_has_seed=False)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, enclosing_has_seed: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                has_seed = enclosing_has_seed or _accepts_seed(child)  # type: ignore[arg-type]
                if not has_seed:
                    found = None
                    for stmt in child.body:
                        found = _draw_in_statement(stmt)
                        if found is not None:
                            break
                    if found is not None:
                        draw_node, description = found
                        yield ctx.make_violation(
                            draw_node,
                            self.code,
                            f"'{child.name}' acquires randomness via "
                            f"{description} but has no seed/rng parameter; "
                            "thread a repro.util.rng.SeedLike through",
                        )
                yield from self._check_scope(ctx, child, has_seed)
            else:
                yield from self._check_scope(ctx, child, enclosing_has_seed)
