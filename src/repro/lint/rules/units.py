"""Unit-discipline rules (RPR0xx).

All internal math is in linear units (watts, Hz, bits/s); decibels exist
only at API boundaries, converted through :mod:`repro.util.units`.  A
hand-rolled ``10 ** (x / 10)`` deep inside an experiment is exactly the
dB/linear confusion that makes SIC gain estimates quietly wrong instead
of loudly broken, so conversions outside the units module — and calls
that feed a ``*_db`` value into a ``*_w`` parameter — are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex, callee_bare_name
from repro.lint.registry import Rule, register
from repro.lint.violations import Violation

#: The single module allowed to spell out dB arithmetic.
UNITS_MODULE = "repro.util.units"

DB_SUFFIXES: Tuple[str, ...] = ("_db", "_dbm")
LINEAR_SUFFIXES: Tuple[str, ...] = ("_w", "_watts", "_linear")


def _constant_value(node: ast.expr) -> Optional[float]:
    """Numeric value of a literal, looking through unary ``+``/``-``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _constant_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


def _is_ten(node: ast.expr) -> bool:
    return _constant_value(node) == 10.0


def _is_abs_ten(node: ast.expr) -> bool:
    value = _constant_value(node)
    return value is not None and abs(value) == 10.0


def _is_division_by_ten(node: ast.expr) -> bool:
    """Matches ``<anything> / 10`` — covers ``x/10`` and ``(x - 30)/10``."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Div)
        and _is_ten(node.right)
    )


def _is_log10_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = callee_bare_name(node.func)
    return name == "log10"


def _in_units_module(ctx: FileContext) -> bool:
    return ctx.is_module(UNITS_MODULE)


@register
class InlineDbToLinearRule(Rule):
    """RPR001 — hand-rolled dB→linear conversion outside ``util.units``."""

    code = "RPR001"
    summary = (
        "inline dB->linear conversion (10 ** (x / 10)); use "
        "repro.util.units.db_to_linear / dbm_to_watts"
    )
    hint = (
        "route every dB->linear conversion through repro.util.units so "
        "sign conventions live in one audited place"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if _in_units_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if self._is_inline_conversion(node):
                yield ctx.make_violation(node, self.code, self.summary)

    @staticmethod
    def _is_inline_conversion(node: ast.AST) -> bool:
        # 10 ** (x / 10) and 10.0 ** ((x - 30.0) / 10.0)
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and _is_ten(node.left)
            and _is_division_by_ten(node.right)
        ):
            return True
        # np.power(10.0, x / 10.0), math.pow(10, x / 10)
        if isinstance(node, ast.Call) and len(node.args) == 2:
            name = callee_bare_name(node.func)
            if name in ("power", "pow") and _is_ten(node.args[0]):
                return _is_division_by_ten(node.args[1])
        return False


@register
class InlineLinearToDbRule(Rule):
    """RPR002 — hand-rolled linear→dB conversion outside ``util.units``."""

    code = "RPR002"
    summary = (
        "inline linear->dB conversion (10 * log10(x)); use "
        "repro.util.units.linear_to_db / watts_to_dbm / ratio_db"
    )
    hint = (
        "route every linear->dB conversion through repro.util.units so "
        "sign conventions live in one audited place"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        if _in_units_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mult)
                and (
                    (_is_abs_ten(node.left) and _is_log10_call(node.right))
                    or (_is_abs_ten(node.right) and _is_log10_call(node.left))
                )
            ):
                yield ctx.make_violation(node, self.code, self.summary)


def _unit_kind(name: str) -> Optional[str]:
    """Classify an identifier as carrying dB or linear units, if evident."""
    lowered = name.lower()
    if lowered in ("db", "dbm") or lowered.endswith(DB_SUFFIXES):
        return "db"
    if lowered in ("w", "watts") or lowered.endswith(LINEAR_SUFFIXES):
        return "linear"
    return None


def _argument_name(node: ast.expr) -> Optional[str]:
    """Identifier an argument expression carries, if any (``x`` / ``obj.x``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class UnitSuffixMismatchRule(Rule):
    """RPR003 — a ``*_db`` value passed to a ``*_w`` parameter (or vice versa).

    Call sites are resolved against the callee's signature when the
    callee is defined (unambiguously) inside the linted file set.
    """

    code = "RPR003"
    summary = "argument/parameter unit suffixes disagree (dB vs linear)"
    hint = (
        "convert at the call site with repro.util.units (db_to_linear, "
        "dbm_to_watts, ...) so the parameter receives its stated unit"
    )

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = callee_bare_name(node.func)
            if callee is None:
                continue
            sig = index.signature(callee)
            if sig is None or sig.module.endswith(UNITS_MODULE):
                continue

            offset = (
                1
                if isinstance(node.func, ast.Attribute) and sig.is_method_like()
                else 0
            )
            pairings = []
            for position, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break  # positions are unknowable past a *splat
                param_index = position + offset
                if param_index >= len(sig.positional):
                    break
                pairings.append((sig.positional[param_index], arg))
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg in sig.all_params:
                    pairings.append((keyword.arg, keyword.value))

            for param, arg in pairings:
                param_kind = _unit_kind(param)
                if param_kind is None:
                    continue
                arg_name = _argument_name(arg)
                if arg_name is None:
                    continue
                arg_kind = _unit_kind(arg_name)
                if arg_kind is not None and arg_kind != param_kind:
                    yield ctx.make_violation(
                        arg,
                        self.code,
                        f"'{arg_name}' ({arg_kind}) passed to parameter "
                        f"'{param}' ({param_kind}) of {callee}(); convert "
                        "via repro.util.units first",
                    )
