"""Built-in rule families.

Importing this package registers every built-in rule.  Codes are grouped
by family:

* ``RPR0xx`` — unit discipline (:mod:`repro.lint.rules.units`)
* ``RPR1xx`` — RNG determinism (:mod:`repro.lint.rules.rng`)
* ``RPR2xx`` — boundary validation (:mod:`repro.lint.rules.validation`)
* ``RPR3xx`` — determinism hygiene (:mod:`repro.lint.rules.hygiene`)
"""

from __future__ import annotations

from repro.lint.rules import hygiene, rng, units, validation

__all__ = ["hygiene", "rng", "units", "validation"]
