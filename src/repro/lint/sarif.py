"""SARIF 2.1.0 serialisation of a lint run.

GitHub code scanning ingests SARIF, so CI uploads this report and every
RPRxxx finding annotates the offending line of the PR diff.  The
mapping is deliberately minimal: one ``run``, one ``tool.driver`` with
the full rule catalogue (summary + remediation hint), one ``result``
per violation.  Parse errors (RPR000) map to SARIF level ``error``;
rule findings map to ``warning`` so code scanning distinguishes
"unchecked code" from "convention violation" — the CLI exit code, not
the SARIF level, is what gates the build.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.registry import Rule
from repro.lint.runner import LintResult
from repro.lint.violations import PARSE_ERROR_CODE, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_INFO_URI = "https://github.com/repro/repro/blob/main/docs/conventions.md"


def _rule_entry(rule: Rule) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "id": rule.code,
        "shortDescription": {"text": rule.summary},
    }
    if rule.hint:
        entry["help"] = {"text": rule.hint}
    return entry


def _artifact_uri(path: str) -> str:
    """Repo-relative, forward-slash URI when possible (SARIF wants URIs)."""
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def _result(violation: Violation) -> Dict[str, object]:
    return {
        "ruleId": violation.code,
        "level": "error" if violation.code == PARSE_ERROR_CODE else "warning",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(violation.path)
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        # SARIF columns are 1-based; AST cols are 0-based.
                        "startColumn": violation.col + 1,
                    },
                }
            }
        ],
    }


def sarif_payload(
    result: LintResult, rules: Sequence[Rule]
) -> Dict[str, object]:
    """The SARIF document for one lint run as a JSON-ready dict."""
    driver: Dict[str, object] = {
        "name": TOOL_NAME,
        "informationUri": TOOL_INFO_URI,
        "rules": [_rule_entry(rule) for rule in rules],
    }
    results: List[Dict[str, object]] = [
        _result(v) for v in (*result.errors, *result.violations)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
            }
        ],
    }


def format_sarif(result: LintResult, rules: Sequence[Rule]) -> str:
    return json.dumps(sarif_payload(result, rules), indent=2, sort_keys=False)
