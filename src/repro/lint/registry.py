"""Rule base class and the pluggable rule registry.

A rule is a stateless object with a stable ``code`` (``RPRxxx``), a
one-line ``summary`` and a ``check`` method yielding
:class:`~repro.lint.violations.Violation` objects for one file.  Rules
self-register at import time via the :func:`register` decorator; rule
modules live under :mod:`repro.lint.rules` and are imported (and thereby
registered) by :func:`load_builtin_rules`.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex
from repro.lint.violations import Violation


class Rule:
    """Base class for lint rules.  Subclasses set ``code`` and ``summary``."""

    #: Stable rule identifier, e.g. ``"RPR001"``.
    code: str = ""
    #: One-line human description shown by ``repro-lint --list-rules``.
    summary: str = ""
    #: Remediation advice; surfaced as SARIF rule help and in verbose
    #: ``--list-rules`` output.  Optional but encouraged.
    hint: str = ""

    def check(self, ctx: FileContext, index: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}

#: Rule modules imported by :func:`load_builtin_rules`; appending here is
#: how a new rule family plugs in.
BUILTIN_RULE_MODULES = (
    "repro.lint.rules.units",
    "repro.lint.rules.rng",
    "repro.lint.rules.validation",
    "repro.lint.rules.hygiene",
    "repro.lint.rules.parity",
)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    if not cls.code or not cls.code.startswith("RPR"):
        raise ValueError(f"rule {cls.__name__} needs an RPRxxx code")
    if cls.code in _REGISTRY and type(_REGISTRY[cls.code]) is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def load_builtin_rules() -> None:
    """Import every built-in rule module (idempotent)."""
    for module in BUILTIN_RULE_MODULES:
        importlib.import_module(module)


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _matches(code: str, selector: str) -> bool:
    """Exact code or family-prefix match (``RPR4`` selects RPR401...)."""
    return code == selector or (
        selector.startswith("RPR") and code.startswith(selector)
    )


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Registered rules filtered to ``select`` minus ``ignore``.

    Selectors are exact codes (``RPR103``) or family prefixes
    (``RPR1``, ``RPR40``); a selector matching no registered rule is a
    usage error.
    """
    rules = all_rules()
    codes = {rule.code for rule in rules}
    for selector in (*(select or ()), *(ignore or ())):
        if not any(_matches(code, selector) for code in codes):
            raise KeyError(f"unknown rule code(s): {selector}")
    if select:
        rules = [
            rule
            for rule in rules
            if any(_matches(rule.code, s) for s in select)
        ]
    if ignore:
        rules = [
            rule
            for rule in rules
            if not any(_matches(rule.code, s) for s in ignore)
        ]
    return rules
