"""Per-file lint context: parsed AST, dotted module name, suppressions."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Tuple

from repro.lint.violations import Violation

#: Inline pragma grammar: ``# repro-lint: disable=RPR001,RPR103`` (or
#: ``disable=all``).  The pragma applies to the physical line it sits on.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Sentinel meaning "every code is suppressed on this line".
SUPPRESS_ALL = "all"


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` markers.

    ``src/repro/phy/shannon.py`` -> ``repro.phy.shannon``.  Files outside
    any package collapse to their stem, which keeps the linter usable on
    loose scripts and test fixtures.
    """
    path = path.resolve()
    if path.name == "__init__.py":
        parts = []
        package_dir = path.parent
    else:
        parts = [path.stem]
        package_dir = path.parent
    while (package_dir / "__init__.py").exists():
        parts.insert(0, package_dir.name)
        parent = package_dir.parent
        if parent == package_dir:  # filesystem root
            break
        package_dir = parent
    return ".".join(parts)


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> set of codes disabled on that line."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            out[lineno] = codes
    return out


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]]

    @classmethod
    def from_path(cls, path: Path) -> "FileContext":
        """Parse ``path``; raises :class:`SyntaxError` on unparsable source."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=module_name_for(path),
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    @property
    def module_parts(self) -> Tuple[str, ...]:
        return tuple(self.module.split("."))

    def in_any_package(self, *segments: str) -> bool:
        """True when any dotted-path component matches one of ``segments``."""
        wanted = set(segments)
        return any(part in wanted for part in self.module_parts)

    def is_module(self, dotted: str) -> bool:
        """True when this file *is* (or ends with) the dotted module name."""
        return self.module == dotted or self.module.endswith("." + dotted)

    def is_suppressed(self, violation: Violation) -> bool:
        codes = self.suppressions.get(violation.line)
        if codes is None:
            return False
        return SUPPRESS_ALL in codes or violation.code in codes

    def make_violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )
