"""Project-wide cross-file facts: callee signatures and validation reach.

Two rule families need more than one file's AST:

* RPR003 (unit-suffix mismatch at call sites) resolves each call against
  the *callee's* parameter names, so the index records every function
  signature defined in the linted file set;
* RPR201 (boundary validation) accepts delegation — a public function
  whose float parameters flow into a helper that validates them is fine —
  so the index computes the transitive closure of "calls a
  ``util.validation`` checker" over the project call graph.

Both resolutions are by *bare name* (the last dotted component).  When
two definitions share a name with different parameter lists the entry is
marked ambiguous and call-site rules skip it — conservative in the
direction of fewer false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

#: Bare-name prefix that marks a :mod:`repro.util.validation` checker.
VALIDATION_PREFIX = "check_"


@dataclass(frozen=True)
class FunctionSignature:
    """Parameter layout of one function definition."""

    name: str
    module: str
    #: Positional parameters in order (posonly + regular), including
    #: ``self``/``cls`` for methods.
    positional: Tuple[str, ...]
    keyword_only: Tuple[str, ...]
    has_vararg: bool

    @property
    def all_params(self) -> Tuple[str, ...]:
        return self.positional + self.keyword_only

    def is_method_like(self) -> bool:
        return bool(self.positional) and self.positional[0] in ("self", "cls")


def callee_bare_name(func: ast.expr) -> Optional[str]:
    """Bare name a call expression resolves to, if statically evident."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def signature_of(node: ast.AST, module: str) -> Optional[FunctionSignature]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = node.args
    positional = tuple(a.arg for a in args.posonlyargs) + tuple(
        a.arg for a in args.args
    )
    return FunctionSignature(
        name=node.name,
        module=module,
        positional=positional,
        keyword_only=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
    )


def _called_names(node: ast.AST) -> Iterator[str]:
    """Bare names of every call made anywhere inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = callee_bare_name(child.func)
            if name is not None:
                yield name


class ProjectIndex:
    """Signature table + transitive-validation set over one file set."""

    def __init__(
        self,
        signatures: Dict[str, Optional[FunctionSignature]],
        validators: FrozenSet[str],
    ) -> None:
        self._signatures = signatures
        self._validators = validators

    @classmethod
    def build(cls, trees: Iterable[Tuple[str, ast.Module]]) -> "ProjectIndex":
        """Index ``(module_name, tree)`` pairs — typically every linted file."""
        signatures: Dict[str, Optional[FunctionSignature]] = {}
        direct_validators: Set[str] = set()
        call_edges: Dict[str, Set[str]] = {}

        for module, tree in trees:
            for node in ast.walk(tree):
                sig = signature_of(node, module)
                if sig is None:
                    continue
                if sig.name not in signatures:
                    signatures[sig.name] = sig
                else:
                    known = signatures[sig.name]
                    if known is not None and (
                        known.positional != sig.positional
                        or known.keyword_only != sig.keyword_only
                    ):
                        # Ambiguous across the project: call-site rules
                        # must not guess between the variants.
                        signatures[sig.name] = None

                callees = call_edges.setdefault(sig.name, set())
                for called in _called_names(node):
                    callees.add(called)
                    if called.startswith(VALIDATION_PREFIX):
                        direct_validators.add(sig.name)

        validators = _transitive_closure(direct_validators, call_edges)
        return cls(signatures, frozenset(validators))

    def signature(self, bare_name: str) -> Optional[FunctionSignature]:
        """The unique signature for ``bare_name``; None when unknown/ambiguous."""
        return self._signatures.get(bare_name)

    def reaches_validation(self, bare_name: str) -> bool:
        """Does ``bare_name`` (transitively) call a ``check_*`` validator?"""
        return bare_name in self._validators


def _transitive_closure(
    seeds: Set[str], edges: Dict[str, Set[str]]
) -> Set[str]:
    """Functions from which ``seeds`` are reachable along call edges."""
    validating = set(seeds)
    changed = True
    while changed:
        changed = False
        for caller, callees in edges.items():
            if caller not in validating and callees & validating:
                validating.add(caller)
                changed = True
    return validating


def collect_function_defs(
    tree: ast.Module,
) -> List[Tuple[ast.FunctionDef, bool]]:
    """All function defs with a flag for "defined at module top level"."""
    out: List[Tuple[ast.FunctionDef, bool]] = []
    top_level = {id(n) for n in tree.body}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            out.append((node, id(node) in top_level))
    return out
