"""Project-wide cross-file facts: signatures, validation reach, parity pairs.

Three rule families need more than one file's AST:

* RPR003 (unit-suffix mismatch at call sites) resolves each call against
  the *callee's* parameter names, so the index records every function
  signature defined in the linted file set;
* RPR201 (boundary validation) accepts delegation — a public function
  whose float parameters flow into a helper that validates them is fine —
  so the index computes the transitive closure of "calls a
  ``util.validation`` checker" over the project call graph;
* RPR4xx (frozen-reference parity) pairs every vectorised fast path with
  its frozen ``<name>_scalar`` golden twin, wherever the twin lives —
  same class, same module, or a sibling ``*_scalar`` module — and
  carries an AST-normalised digest of each frozen reference so drift is
  detected against the committed manifest.

Signature resolutions are by *bare name* (the last dotted component).
When two definitions share a name with different parameter lists the
entry is marked ambiguous and call-site rules skip it — conservative in
the direction of fewer false positives.  Parity pairing, by contrast, is
scope-aware (``module`` + enclosing class), because ``generate_scalar``
legitimately exists on several generator classes at once.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

#: Bare-name prefix that marks a :mod:`repro.util.validation` checker.
VALIDATION_PREFIX = "check_"

#: Suffix that marks a behaviourally-frozen golden reference.
SCALAR_SUFFIX = "_scalar"


@dataclass(frozen=True)
class FunctionSignature:
    """Parameter layout of one function definition."""

    name: str
    module: str
    #: Positional parameters in order (posonly + regular), including
    #: ``self``/``cls`` for methods.
    positional: Tuple[str, ...]
    keyword_only: Tuple[str, ...]
    has_vararg: bool
    #: Source text of the return annotation, if any (``"Set[Tuple[int, int]]"``).
    returns: Optional[str] = None

    @property
    def all_params(self) -> Tuple[str, ...]:
        return self.positional + self.keyword_only

    def is_method_like(self) -> bool:
        return bool(self.positional) and self.positional[0] in ("self", "cls")


def callee_bare_name(func: ast.expr) -> Optional[str]:
    """Bare name a call expression resolves to, if statically evident."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def signature_of(node: ast.AST, module: str) -> Optional[FunctionSignature]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = node.args
    positional = tuple(a.arg for a in args.posonlyargs) + tuple(
        a.arg for a in args.args
    )
    return FunctionSignature(
        name=node.name,
        module=module,
        positional=positional,
        keyword_only=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        returns=None if node.returns is None else expr_source(node.returns),
    )


def expr_source(node: ast.expr) -> str:
    """Canonical source text of an expression (whitespace-insensitive)."""
    return ast.unparse(node)


#: AST fields excluded from the frozen digest: they vary across CPython
#: versions (``type_params`` is 3.12+) or carry no behaviour.
_DIGEST_SKIP_FIELDS: FrozenSet[str] = frozenset(
    {"type_comment", "type_ignores", "type_params"}
)

#: Node types whose leading string-constant statement is a docstring.
_DOCSTRING_OWNERS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Module,
)


def _is_docstring_stmt(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _canonical(node: object, parent: Optional[ast.AST], fname: str) -> str:
    """Version-stable serialisation of an AST fragment.

    ``ast.dump`` output drifts across CPython releases (new fields such
    as ``type_params``), and ``ast.unparse`` formatting is not pinned
    either, so the digest walks the tree itself: node class names plus
    field values, with docstrings and no-behaviour fields dropped.
    Comments and formatting never reach the AST, so reflowing a frozen
    reference does not change its digest — editing any token does.
    """
    if isinstance(node, ast.AST):
        parts = []
        for name, value in ast.iter_fields(node):
            if name in _DIGEST_SKIP_FIELDS:
                continue
            parts.append(f"{name}={_canonical(value, node, name)}")
        return f"{type(node).__name__}({','.join(parts)})"
    if isinstance(node, list):
        items: List[object] = list(node)
        if (
            fname == "body"
            and isinstance(parent, _DOCSTRING_OWNERS)
            and items
            and _is_docstring_stmt(items[0])  # type: ignore[arg-type]
        ):
            items = items[1:]
        return "[" + ",".join(_canonical(x, parent, fname) for x in items) + "]"
    return repr(node)


def frozen_digest(node: ast.AST) -> str:
    """SHA-256 of the AST-normalised body of ``node`` (a function def).

    Insensitive to comments, whitespace, and docstrings; sensitive to
    every code token, including defaults, decorators and annotations.
    """
    return hashlib.sha256(
        _canonical(node, None, "").encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class ParityDef:
    """One side of a fast-path/frozen-reference pair."""

    module: str
    #: ``"func"`` for module-level functions, ``"Class.method"`` for methods.
    qualname: str
    name: str
    #: Enclosing class name, or ``""`` at module top level.
    scope: str
    lineno: int
    positional: Tuple[str, ...]
    keyword_only: Tuple[str, ...]
    #: ``(param, default_source)`` for every defaulted parameter.
    defaults: Tuple[Tuple[str, str], ...]
    has_vararg: bool
    has_kwarg: bool
    digest: str

    @property
    def key(self) -> str:
        """Stable manifest key: ``module::qualname``."""
        return f"{self.module}::{self.qualname}"

    def default_of(self, param: str) -> Optional[str]:
        for name, source in self.defaults:
            if name == param:
                return source
        return None


@dataclass(frozen=True)
class ParityPair:
    """A vectorised fast path and its frozen ``*_scalar`` reference."""

    fast: ParityDef
    scalar: ParityDef


def parity_def_of(
    node: ast.FunctionDef, module: str, scope: str
) -> ParityDef:
    """Build the parity record for one function definition."""
    args = node.args
    positional = tuple(a.arg for a in args.posonlyargs) + tuple(
        a.arg for a in args.args
    )
    defaults: List[Tuple[str, str]] = []
    if args.defaults:
        for arg_name, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            defaults.append((arg_name, expr_source(default)))
    for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            defaults.append((kwarg.arg, expr_source(default)))
    qualname = f"{scope}.{node.name}" if scope else node.name
    return ParityDef(
        module=module,
        qualname=qualname,
        name=node.name,
        scope=scope,
        lineno=node.lineno,
        positional=positional,
        keyword_only=tuple(a.arg for a in args.kwonlyargs),
        defaults=tuple(defaults),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        digest=frozen_digest(node),
    )


def _iter_scoped_defs(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, str]]:
    """Module-level functions and methods of module-level classes.

    Function-nested helpers (the blossom closures) are deliberately
    excluded: parity pairing is a module-API contract, not an
    implementation-detail one.
    """
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            yield stmt, ""
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, ast.FunctionDef):
                    yield inner, stmt.name


def discover_parity_pairs(
    defs: Iterable[ParityDef],
) -> Tuple[ParityPair, ...]:
    """Match every ``<name>_scalar`` def with its fast-path twin.

    Resolution order: same module and scope first (``compute`` /
    ``compute_scalar`` side by side, ``generate`` / ``generate_scalar``
    on one class), then a unique module-level ``<name>`` anywhere in the
    indexed set (the ``matching`` / ``matching_scalar`` sibling-module
    split).  An ambiguous cross-module resolution pairs nothing —
    conservative in the direction of fewer false positives.
    """
    all_defs = list(defs)
    pairs: List[ParityPair] = []
    for scalar in all_defs:
        if not scalar.name.endswith(SCALAR_SUFFIX):
            continue
        base = scalar.name[: -len(SCALAR_SUFFIX)]
        if not base:
            continue
        local = [
            d
            for d in all_defs
            if d.name == base
            and d.module == scalar.module
            and d.scope == scalar.scope
        ]
        if local:
            pairs.append(ParityPair(fast=local[0], scalar=scalar))
            continue
        if scalar.scope == "":
            remote = [
                d for d in all_defs if d.name == base and d.scope == ""
            ]
            if len(remote) == 1:
                pairs.append(ParityPair(fast=remote[0], scalar=scalar))
    return tuple(pairs)


def _called_names(node: ast.AST) -> Iterator[str]:
    """Bare names of every call made anywhere inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = callee_bare_name(child.func)
            if name is not None:
                yield name


class ProjectIndex:
    """Signature table, validation closure and parity index for one file set."""

    def __init__(
        self,
        signatures: Dict[str, Optional[FunctionSignature]],
        validators: FrozenSet[str],
        parity_defs: Tuple[ParityDef, ...] = (),
        parity_pairs: Tuple[ParityPair, ...] = (),
        manifest: Optional[Mapping[str, str]] = None,
        test_names: Optional[FrozenSet[str]] = None,
    ) -> None:
        self._signatures = signatures
        self._validators = validators
        self._parity_defs = parity_defs
        self._parity_pairs = parity_pairs
        self._manifest = dict(manifest) if manifest is not None else None
        self._test_names = test_names

    @classmethod
    def build(
        cls,
        trees: Iterable[Tuple[str, ast.Module]],
        manifest: Optional[Mapping[str, str]] = None,
        test_names: Optional[FrozenSet[str]] = None,
    ) -> "ProjectIndex":
        """Index ``(module_name, tree)`` pairs — typically every linted file.

        ``manifest`` (``module::qualname`` -> digest, from the committed
        frozen manifest) arms RPR402; ``test_names`` (every identifier
        referenced under the test tree) arms RPR404.  Either left
        ``None`` disables the corresponding rule — per-fixture unit
        linting stays self-contained.
        """
        signatures: Dict[str, Optional[FunctionSignature]] = {}
        direct_validators: Set[str] = set()
        call_edges: Dict[str, Set[str]] = {}
        parity_defs: List[ParityDef] = []

        for module, tree in trees:
            for node, scope in _iter_scoped_defs(tree):
                parity_defs.append(parity_def_of(node, module, scope))
            for node in ast.walk(tree):
                sig = signature_of(node, module)
                if sig is None:
                    continue
                if sig.name not in signatures:
                    signatures[sig.name] = sig
                else:
                    known = signatures[sig.name]
                    if known is not None and (
                        known.positional != sig.positional
                        or known.keyword_only != sig.keyword_only
                    ):
                        # Ambiguous across the project: call-site rules
                        # must not guess between the variants.
                        signatures[sig.name] = None

                callees = call_edges.setdefault(sig.name, set())
                for called in _called_names(node):
                    callees.add(called)
                    if called.startswith(VALIDATION_PREFIX):
                        direct_validators.add(sig.name)

        validators = _transitive_closure(direct_validators, call_edges)
        return cls(
            signatures,
            frozenset(validators),
            parity_defs=tuple(parity_defs),
            parity_pairs=discover_parity_pairs(parity_defs),
            manifest=manifest,
            test_names=test_names,
        )

    def signature(self, bare_name: str) -> Optional[FunctionSignature]:
        """The unique signature for ``bare_name``; None when unknown/ambiguous."""
        return self._signatures.get(bare_name)

    def reaches_validation(self, bare_name: str) -> bool:
        """Does ``bare_name`` (transitively) call a ``check_*`` validator?"""
        return bare_name in self._validators

    # -- parity ---------------------------------------------------------

    @property
    def parity_pairs(self) -> Tuple[ParityPair, ...]:
        """Every discovered fast-path/frozen-reference pair."""
        return self._parity_pairs

    def pairs_with_fast_in(self, module: str) -> Tuple[ParityPair, ...]:
        """Pairs whose fast path is defined in ``module``."""
        return tuple(
            p for p in self._parity_pairs if p.fast.module == module
        )

    def scalar_defs(self) -> Tuple[ParityDef, ...]:
        """Every frozen ``*_scalar`` definition, paired or not."""
        return tuple(
            d
            for d in self._parity_defs
            if d.name.endswith(SCALAR_SUFFIX)
            and len(d.name) > len(SCALAR_SUFFIX)
        )

    def scalar_defs_in(self, module: str) -> Tuple[ParityDef, ...]:
        return tuple(d for d in self.scalar_defs() if d.module == module)

    @property
    def has_manifest(self) -> bool:
        return self._manifest is not None

    def manifest_digest(self, key: str) -> Optional[str]:
        """Committed digest for ``module::qualname``, if registered."""
        if self._manifest is None:
            return None
        return self._manifest.get(key)

    def manifest_keys(self) -> FrozenSet[str]:
        return frozenset(self._manifest or ())

    @property
    def has_test_index(self) -> bool:
        return self._test_names is not None

    def test_references_name(self, bare_name: str) -> bool:
        """Is ``bare_name`` referenced anywhere under the scanned test tree?"""
        return self._test_names is not None and bare_name in self._test_names


def _transitive_closure(
    seeds: Set[str], edges: Dict[str, Set[str]]
) -> Set[str]:
    """Functions from which ``seeds`` are reachable along call edges."""
    validating = set(seeds)
    changed = True
    while changed:
        changed = False
        for caller, callees in edges.items():
            if caller not in validating and callees & validating:
                validating.add(caller)
                changed = True
    return validating


def collect_function_defs(
    tree: ast.Module,
) -> List[Tuple[ast.FunctionDef, bool]]:
    """All function defs with a flag for "defined at module top level"."""
    out: List[Tuple[ast.FunctionDef, bool]] = []
    top_level = {id(n) for n in tree.body}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            out.append((node, id(node) in top_level))
    return out
