"""``repro-lint`` — the CI entry point.

Exit codes: 0 clean, 1 violations found, 2 when files could not be
parsed/read (unchecked code must fail the build too) or on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.registry import all_rules
from repro.lint.runner import LintResult, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based enforcement of the repro conventions: linear-unit "
            "discipline, RNG determinism, boundary validation and "
            "multiprocessing determinism hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files and/or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RPR001,RPR103)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule code and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _print_text(result: LintResult, quiet: bool) -> None:
    for violation in (*result.errors, *result.violations):
        print(violation.format_text())
    if not quiet:
        total = len(result.violations)
        noun = "violation" if total == 1 else "violations"
        status = f"{total} {noun} in {result.files_checked} files"
        if result.errors:
            status += f" ({len(result.errors)} unparsable)"
        print(status)


def _print_json(result: LintResult) -> None:
    payload = {
        "files_checked": result.files_checked,
        "violations": [v.as_dict() for v in result.violations],
        "errors": [v.as_dict() for v in result.errors],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path does not exist: {', '.join(missing)}")

    try:
        result = lint_paths(
            [Path(p) for p in args.paths],
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    if args.format == "json":
        _print_json(result)
    else:
        _print_text(result, quiet=args.quiet)
    return result.exit_code()


if __name__ == "__main__":
    sys.exit(main())
