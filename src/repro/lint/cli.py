"""``repro-lint`` — the CI entry point.

Exit codes: 0 clean, 1 violations found, 2 when files could not be
parsed/read (unchecked code must fail the build too) or on bad usage.
Those three keep their historical meaning; the operator taxonomy of
:mod:`repro.util.errors` only adds codes on top (5 = interrupted).

Frozen-reference discipline::

    repro-lint --check-frozen            # digests + reverse reconciliation
    repro-lint --update-frozen           # deliberately re-freeze (writes manifest)

Code-scanning integration::

    repro-lint src/repro --format sarif --output repro-lint.sarif
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.manifest import (
    DEFAULT_MANIFEST_PATH,
    ManifestError,
    save_manifest,
)
from repro.lint.registry import all_rules
from repro.lint.runner import LintResult, collect_frozen_digests, lint_paths
from repro.util.cache import atomic_write_text
from repro.util.errors import run_cli


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based enforcement of the repro conventions: linear-unit "
            "discipline, RNG determinism, boundary validation, "
            "multiprocessing determinism hygiene and fast-path/"
            "frozen-reference parity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files and/or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help=(
            "write the report to FILE instead of stdout; the text "
            "summary still prints, so CI logs stay readable while the "
            "SARIF/JSON artifact is captured"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help=(
            "comma-separated rule codes or family prefixes to run "
            "exclusively (e.g. RPR001,RPR4)"
        ),
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes or family prefixes to skip",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        default=str(DEFAULT_MANIFEST_PATH),
        help=(
            "frozen-reference digest manifest checked by RPR402 "
            "(default: the manifest shipped in repro.lint)"
        ),
    )
    parser.add_argument(
        "--check-frozen",
        action="store_true",
        help=(
            "strict frozen-reference mode: a missing manifest fails, and "
            "manifest entries whose *_scalar function vanished from the "
            "linted tree fail too"
        ),
    )
    parser.add_argument(
        "--update-frozen",
        action="store_true",
        help=(
            "regenerate the frozen manifest from the linted tree and "
            "exit; the manifest diff is the reviewable record of a "
            "deliberate re-freeze"
        ),
    )
    parser.add_argument(
        "--tests-dir",
        metavar="DIR",
        default=None,
        help=(
            "test tree scanned for golden-test references (RPR404); "
            "defaults to ./tests when it exists"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule code and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _format_text(result: LintResult) -> str:
    return "\n".join(
        v.format_text() for v in (*result.errors, *result.violations)
    )


def _summary_line(result: LintResult) -> str:
    total = len(result.violations)
    noun = "violation" if total == 1 else "violations"
    status = f"{total} {noun} in {result.files_checked} files"
    if result.errors:
        status += f" ({len(result.errors)} unparsable)"
    return status


def _format_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "violations": [v.as_dict() for v in result.violations],
        "errors": [v.as_dict() for v in result.errors],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render(result: LintResult, fmt: str) -> str:
    if fmt == "json":
        return _format_json(result)
    if fmt == "sarif":
        # Local import: sarif pulls in the registry, and the CLI must
        # stay importable even if a third-party rule module is broken.
        from repro.lint.sarif import format_sarif

        return format_sarif(result, all_rules())
    return _format_text(result)


def _update_frozen(paths: List[Path], manifest: Path) -> int:
    try:
        digests = collect_frozen_digests(paths)
    except ManifestError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    save_manifest(manifest, digests)
    noun = "reference" if len(digests) == 1 else "references"
    print(f"froze {len(digests)} {noun} -> {manifest}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path does not exist: {', '.join(missing)}")
    paths = [Path(p) for p in args.paths]
    manifest = Path(args.manifest)

    if args.update_frozen:
        return _update_frozen(paths, manifest)

    tests_dir: Optional[Path] = None
    if args.tests_dir is not None:
        tests_dir = Path(args.tests_dir)
        if not tests_dir.is_dir():
            parser.error(f"tests dir does not exist: {tests_dir}")
    elif Path("tests").is_dir():
        tests_dir = Path("tests")

    try:
        result = lint_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            manifest=manifest,
            check_frozen=args.check_frozen,
            tests_dir=tests_dir,
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    report = _render(result, args.format)
    if args.output:
        atomic_write_text(Path(args.output), report + "\n")
        text = _format_text(result)
        if text:
            print(text)
    elif report:
        print(report)
    if (args.format == "text" or args.output) and not args.quiet:
        print(_summary_line(result))
    return result.exit_code()


def entry() -> int:
    """Console-script entry: :func:`main` under the operator taxonomy."""
    return run_cli("repro-lint", main)


if __name__ == "__main__":
    sys.exit(entry())
