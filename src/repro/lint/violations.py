"""The one datum every rule produces: a located, coded violation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

#: Pseudo-code attached to files the linter could not parse.  It cannot
#: be suppressed inline (there is no AST to attach a pragma to) and makes
#: the CLI exit with status 2 rather than 1.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col: CODE message``.

    Ordering is lexicographic on (path, line, col, code) so reports are
    stable across runs and rule-execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
