"""``repro.lint`` — AST-based enforcement of the repo's reproducibility conventions.

The back-of-the-envelope analysis rests on invariants the code states in
prose but cannot enforce by construction:

* all internal math happens in *linear* units; dB/dBm appear only at API
  boundaries through :mod:`repro.util.units`;
* every stochastic path is seeded through :mod:`repro.util.rng` — nothing
  touches the legacy global numpy state or draws OS entropy mid-pipeline;
* public numeric entry points validate their inputs at the boundary via
  :mod:`repro.util.validation`;
* the multiprocessing engines stay deterministic (no wall-clock or OS
  entropy in result paths).

This package machine-checks those invariants.  Rules are small classes
registered in :mod:`repro.lint.registry` under stable ``RPRxxx`` codes;
:func:`repro.lint.runner.lint_paths` parses a file set once, builds a
project-wide signature/validation index and runs every rule; the
``repro-lint`` console script (:mod:`repro.lint.cli`) wires it into CI.

Violations can be silenced per line with ``# repro-lint: disable=RPR001``
(comma-separate several codes, or ``disable=all``).
"""

from __future__ import annotations

from repro.lint.registry import Rule, all_rules
from repro.lint.runner import LintResult, lint_paths
from repro.lint.violations import Violation

__all__ = [
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
]
