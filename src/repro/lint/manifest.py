"""The frozen-reference manifest: committed digests of every ``*_scalar``.

The manifest is a JSON file mapping ``module::qualname`` keys to the
AST-normalised SHA-256 digest (:func:`repro.lint.index.frozen_digest`)
of each frozen golden reference.  It is regenerated only through
``repro-lint --update-frozen``, so any behavioural edit to a frozen
reference shows up in review as a manifest diff — never as a silent
drive-by inside a speedup PR.

``repro-lint --check-frozen`` compares the linted tree against the
manifest both ways: drifted or unregistered references fire RPR402 at
their definition; manifest entries whose function no longer exists fire
RPR402 at the manifest itself (a frozen reference must not quietly
disappear either).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping

#: The committed manifest, shipped inside the package so the installed
#: console script checks the same frozen set the repo pinned.
MANIFEST_FILENAME = "frozen_manifest.json"
DEFAULT_MANIFEST_PATH = Path(__file__).resolve().parent / MANIFEST_FILENAME

_FORMAT_VERSION = 1


class ManifestError(ValueError):
    """The manifest file exists but cannot be used."""


def load_manifest(path: Path) -> Dict[str, str]:
    """Read ``key -> digest`` from ``path``; raises :class:`ManifestError`."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"cannot read frozen manifest {path}: {exc}")
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _FORMAT_VERSION
        or not isinstance(payload.get("frozen"), dict)
    ):
        raise ManifestError(
            f"frozen manifest {path} is not a version-{_FORMAT_VERSION} "
            f"manifest (expected {{'version': {_FORMAT_VERSION}, "
            f"'frozen': {{...}}}})"
        )
    frozen = payload["frozen"]
    for key, digest in frozen.items():
        if not isinstance(key, str) or not isinstance(digest, str):
            raise ManifestError(
                f"frozen manifest {path}: entry {key!r} is malformed"
            )
    return dict(frozen)


def save_manifest(path: Path, digests: Mapping[str, str]) -> None:
    """Write a sorted, stable-diff manifest to ``path``."""
    payload = {
        "_comment": (
            "AST-normalised SHA-256 digests of the frozen *_scalar golden "
            "references. Regenerate ONLY via 'repro-lint --update-frozen' "
            "and justify the diff: frozen references are behaviourally "
            "immutable (see docs/conventions.md, 'Freezing a reference')."
        ),
        "version": _FORMAT_VERSION,
        "frozen": {key: digests[key] for key in sorted(digests)},
    }
    # Atomic publish: a crash mid-freeze must not leave a torn manifest
    # that RPR402 would then read as "everything drifted".
    from repro.util.cache import atomic_write_text

    atomic_write_text(path,
                      json.dumps(payload, indent=2, sort_keys=False) + "\n")
