"""Parse a file set once, build the project index, run every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex
from repro.lint.manifest import ManifestError, load_manifest
from repro.lint.registry import select_rules
from repro.lint.violations import PARSE_ERROR_CODE, Violation

#: Code shared with the in-file frozen checks of :mod:`rules.parity`.
FROZEN_DRIFT_CODE = "RPR402"


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    #: Files that failed to parse (code ``RPR000``); these make the CLI
    #: exit with status 2 since unparsed code is unchecked code.
    errors: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def collect_test_names(tests_dir: Path) -> FrozenSet[str]:
    """Every identifier referenced anywhere under the test tree.

    RPR404 asks "does *any* test touch this frozen ``*_scalar``
    reference?", so the scan is deliberately coarse: bare names,
    attribute accesses and import aliases all count.  Unparsable test
    files contribute nothing (pytest itself will fail on them long
    before the linter matters).
    """
    names: Set[str] = set()
    for path in iter_python_files([tests_dir]):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[-1])
    return frozenset(names)


def parse_contexts(
    paths: Sequence[Path],
) -> Tuple[List[FileContext], List[Violation]]:
    """``(contexts, errors)`` for a file set — shared by lint and freeze."""
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for path in iter_python_files(Path(p) for p in paths):
        try:
            contexts.append(FileContext.from_path(path))
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            offset = getattr(exc, "offset", None) or 0
            errors.append(
                Violation(
                    path=str(path),
                    line=int(line),
                    col=int(offset),
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc}",
                )
            )
        except OSError as exc:
            errors.append(
                Violation(
                    path=str(path),
                    line=1,
                    col=0,
                    code=PARSE_ERROR_CODE,
                    message=f"could not read file: {exc}",
                )
            )
    return contexts, errors


def collect_frozen_digests(paths: Sequence[Path]) -> Dict[str, str]:
    """``module::qualname -> digest`` for every ``*_scalar`` in ``paths``.

    The ``--update-frozen`` source of truth; raises on unparsable files
    (a manifest must never be regenerated around broken code).
    """
    contexts, errors = parse_contexts(paths)
    if errors:
        raise ManifestError(
            "cannot freeze references with unparsable files: "
            + "; ".join(e.format_text() for e in errors)
        )
    index = ProjectIndex.build((ctx.module, ctx.tree) for ctx in contexts)
    return {d.key: d.digest for d in index.scalar_defs()}


def _reconcile_manifest(
    manifest_path: Path,
    manifest: Dict[str, str],
    index: ProjectIndex,
) -> List[Violation]:
    """Manifest entries whose frozen function vanished from the tree."""
    live_keys = {d.key for d in index.scalar_defs()}
    stale = sorted(set(manifest) - live_keys)
    return [
        Violation(
            path=str(manifest_path),
            line=1,
            col=0,
            code=FROZEN_DRIFT_CODE,
            message=(
                f"manifest entry '{key}' has no matching *_scalar "
                f"definition in the linted tree; a frozen reference was "
                f"deleted or renamed — re-freeze deliberately with "
                f"'repro-lint --update-frozen'"
            ),
        )
        for key in stale
    ]


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    *,
    manifest: Optional[Path] = None,
    check_frozen: bool = False,
    tests_dir: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` (files and/or directories) with the selected rules.

    The project index — callee signatures, the validation closure and
    the fast-path/frozen-reference parity pairs — is built over exactly
    this file set, so cross-file rules see the same "package" the caller
    asked to lint.

    ``manifest`` names the frozen-digest manifest and arms RPR402 for
    every ``*_scalar`` definition encountered; with ``check_frozen``
    the reconciliation also runs in reverse (manifest entries whose
    function vanished fail, anchored at the manifest file).
    ``tests_dir`` arms RPR404 with the identifiers referenced under the
    test tree.  Both default to ``None`` — fixture-level linting stays
    self-contained.
    """
    contexts, errors = parse_contexts(paths)

    manifest_digests: Optional[Dict[str, str]] = None
    if manifest is not None:
        if manifest.exists():
            try:
                manifest_digests = load_manifest(manifest)
            except ManifestError as exc:
                errors.append(
                    Violation(
                        path=str(manifest),
                        line=1,
                        col=0,
                        code=PARSE_ERROR_CODE,
                        message=str(exc),
                    )
                )
        elif check_frozen:
            errors.append(
                Violation(
                    path=str(manifest),
                    line=1,
                    col=0,
                    code=PARSE_ERROR_CODE,
                    message=(
                        "frozen manifest not found; generate it with "
                        "'repro-lint --update-frozen'"
                    ),
                )
            )

    test_names: Optional[FrozenSet[str]] = None
    if tests_dir is not None and tests_dir.is_dir():
        test_names = collect_test_names(tests_dir)

    index = ProjectIndex.build(
        ((ctx.module, ctx.tree) for ctx in contexts),
        manifest=manifest_digests,
        test_names=test_names,
    )
    rules = select_rules(select=select, ignore=ignore)

    violations: List[Violation] = []
    for ctx in contexts:
        for rule in rules:
            for violation in rule.check(ctx, index):
                if not ctx.is_suppressed(violation):
                    violations.append(violation)

    if check_frozen and manifest is not None and manifest_digests is not None:
        if any(r.code == FROZEN_DRIFT_CODE for r in rules):
            violations.extend(
                _reconcile_manifest(manifest, manifest_digests, index)
            )

    return LintResult(
        violations=sorted(violations),
        errors=sorted(errors),
        files_checked=len(contexts),
    )
