"""Parse a file set once, build the project index, run every rule."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.context import FileContext
from repro.lint.index import ProjectIndex
from repro.lint.registry import select_rules
from repro.lint.violations import PARSE_ERROR_CODE, Violation


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    #: Files that failed to parse (code ``RPR000``); these make the CLI
    #: exit with status 2 since unparsed code is unchecked code.
    errors: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint ``paths`` (files and/or directories) with the selected rules.

    The project index — callee signatures and the validation closure —
    is built over exactly this file set, so cross-file rules see the
    same "package" the caller asked to lint.
    """
    files = iter_python_files(Path(p) for p in paths)
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for path in files:
        try:
            contexts.append(FileContext.from_path(path))
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            offset = getattr(exc, "offset", None) or 0
            errors.append(
                Violation(
                    path=str(path),
                    line=int(line),
                    col=int(offset),
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc}",
                )
            )
        except OSError as exc:
            errors.append(
                Violation(
                    path=str(path),
                    line=1,
                    col=0,
                    code=PARSE_ERROR_CODE,
                    message=f"could not read file: {exc}",
                )
            )

    index = ProjectIndex.build((ctx.module, ctx.tree) for ctx in contexts)
    rules = select_rules(select=select, ignore=ignore)

    violations: List[Violation] = []
    for ctx in contexts:
        for rule in rules:
            for violation in rule.check(ctx, index):
                if not ctx.is_suppressed(violation):
                    violations.append(violation)

    return LintResult(
        violations=sorted(violations),
        errors=sorted(errors),
        files_checked=len(contexts),
    )
