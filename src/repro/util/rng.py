"""Random-number-generator plumbing.

Reproducibility rules used throughout the library:

* every stochastic entry point takes either an integer ``seed`` or an
  already-constructed :class:`numpy.random.Generator`;
* nothing ever touches the legacy global ``numpy.random`` state;
* independent sub-streams (e.g. one per Monte-Carlo worker or per trace
  day) are derived with :func:`spawn_rngs`, which uses numpy's
  ``SeedSequence.spawn`` so streams never collide.
"""

from __future__ import annotations

import copy
from typing import List, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an int, an existing ``Generator`` (returned as-is so
    that callers can thread one generator through a pipeline), a
    ``SeedSequence``, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce any :data:`SeedLike` into a ``SeedSequence``.

    A ``Generator`` contributes its own seed sequence when it exposes
    one, and otherwise seeds a fresh sequence from a draw (consuming
    one value from the generator's stream).
    """
    if isinstance(seed, np.random.Generator):
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            return seed_seq
        # Fall back to seeding a fresh sequence from the generator.
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seed_sequences(seed: SeedLike,
                         count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent child ``SeedSequence`` objects.

    Unlike :func:`spawn_rngs` the children are returned before being
    turned into generators, which keeps them both picklable (so they
    can cross a multiprocessing boundary) and hashable-by-content (so
    result caches can key on them) — the two properties the chunked
    Monte-Carlo engines rely on.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return as_seed_sequence(seed).spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Spawning via ``SeedSequence`` guarantees non-overlapping streams,
    which matters when Monte-Carlo batches are compared against each other
    (a shared stream would correlate "independent" topologies).
    """
    return [np.random.default_rng(child)
            for child in spawn_seed_sequences(seed, count)]


def rng_fingerprint(rng: np.random.Generator,
                    draws: int = 4) -> Tuple[float, ...]:
    """Return a small tuple of draws from a *copy* of ``rng``.

    Used by tests to assert that two generators are (or are not) in the
    same state without disturbing the originals.
    """
    clone = copy.deepcopy(rng)
    return tuple(float(x) for x in clone.random(draws))
