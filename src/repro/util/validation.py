"""Argument-validation helpers.

Every public entry point of the library validates its numeric inputs with
these helpers so that errors surface at the boundary (with the offending
parameter named) rather than as NaNs deep inside a Monte-Carlo sweep.
"""

from __future__ import annotations

import math
from typing import Optional


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite positive number; raise otherwise."""
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number >= 0; raise otherwise."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number; raise otherwise."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies inside ``[low, high]`` (or ``(low, high)``)."""
    value = check_finite(name, value)
    if inclusive:
        if low is not None and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if high is not None and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
    else:
        if low is not None and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
        if high is not None and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it is a valid probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)
