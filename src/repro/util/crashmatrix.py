"""Crash-point matrix: kill the process at every durable-write site.

The persistence layer claims that a process may die at *any* I/O
boundary — mid tmp-write, between publish and sidecar, during a
quarantine move — and a restarted run still converges to bit-identical
results with nothing deleted.  This module turns that claim into an
enumerable, machine-checked matrix:

* **rows** — every named I/O site in :class:`repro.util.cache.ResultCache`
  and :class:`repro.util.checkpoint.CheckpointStore` (tmp writes,
  atomic publishes, quarantine moves);
* **columns** — every fault kind valid at that site
  (:data:`~repro.util.iofaults.WRITE_KINDS` for ``.write`` sites,
  :data:`~repro.util.iofaults.REPLACE_KINDS` for ``.replace`` sites,
  including the torn-publish kind that defeats naive atomicity);
* **cell** — run a small deterministic workload with exactly that one
  fault injected, then "restart" (fresh store objects, no injector,
  stale tmp litter planted on disk) and verify three invariants:

  1. *bit-identity*: the recovered run's arrays equal the fault-free
     reference exactly — resume-vs-fresh never changes results;
  2. *no poisoning*: partial state left by the death is either served
     intact or quarantined and recomputed, never merged wrong;
  3. *quarantine monotonicity*: files under ``corrupt/`` only ever
     accumulate — recovery must not delete post-mortem evidence.

Enumeration is **verified, not trusted**: a fault-free probe workload
runs under a recording injector and the set of sites it observes must
equal the matrix's enumerated rows exactly.  Adding a durable write
without a site (or renaming one) fails the matrix before it can hide;
the RPR306 lint rule independently rejects raw writes that bypass the
site machinery altogether.

Checkpoint cells target the *second* chunk (``call_index=1``) so every
recovery exercises the mixed case: one chunk resumed from disk, the
rest recomputed, merged bit-identically.

Run ``python -m repro.util.crashmatrix --out CRASH_MATRIX.json`` for
the operator/CI entry point; the ``chaos`` test subset asserts the
matrix passes.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.util import iofaults
from repro.util.cache import (
    QUARANTINE_DIRNAME,
    ResultCache,
    atomic_write_text,
    stable_hash,
)
from repro.util.checkpoint import CheckpointStore
from repro.util.errors import EXIT_FATAL, EXIT_OK, run_cli
from repro.util.iofaults import (
    REPLACE_KINDS,
    WRITE_KINDS,
    IoFaultInjector,
    IoFaultRule,
    SimulatedCrash,
)

#: Every named I/O site of the result cache, with its site type.
CACHE_SITES: Dict[str, str] = {
    "cache.payload.write": "write",
    "cache.payload.replace": "replace",
    "cache.sidecar.write": "write",
    "cache.sidecar.replace": "replace",
    "cache.quarantine.replace": "replace",
}

#: Every named I/O site of the checkpoint store, with its site type.
CHECKPOINT_SITES: Dict[str, str] = {
    "checkpoint.manifest.write": "write",
    "checkpoint.manifest.replace": "replace",
    "checkpoint.payload.write": "write",
    "checkpoint.payload.replace": "replace",
    "checkpoint.sidecar.write": "write",
    "checkpoint.sidecar.replace": "replace",
    "checkpoint.quarantine.replace": "replace",
}

ALL_SITES: Dict[str, str] = {**CACHE_SITES, **CHECKPOINT_SITES}


def kinds_for(site_type: str) -> Tuple[str, ...]:
    """The fault kinds injectable at a site of this type."""
    return WRITE_KINDS if site_type == "write" else REPLACE_KINDS


# ---------------------------------------------------------------------------
# The deterministic workloads
# ---------------------------------------------------------------------------

_KEY = {"engine": "crashmatrix", "seed": 7, "config": {"n": 32}}
_RUN_KEY = {"engine": "crashmatrix", "seed": 7, "chunks": 3}
_N_CHUNKS = 3


def _reference_arrays(seed: int = 2010) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"gains": rng.standard_normal(32),
            "hits": (np.arange(32) % 3 == 0)}


def _chunk_arrays(index: int, seed: int = 900) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed + index)
    return {"x": rng.standard_normal(16)}


def _merged(chunks: List[Mapping[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    return {"x": np.concatenate([chunk["x"] for chunk in chunks])}


def _arrays_equal(left: Mapping[str, np.ndarray],
                  right: Mapping[str, np.ndarray]) -> bool:
    if set(left) != set(right):
        return False
    return all(left[name].dtype == right[name].dtype
               and np.array_equal(left[name], right[name])
               for name in left)


def _corrupt_names(root: Path) -> FrozenSet[str]:
    quarantine_dir = root / QUARANTINE_DIRNAME
    if not quarantine_dir.is_dir():
        return frozenset()
    return frozenset(p.name for p in quarantine_dir.iterdir())


def _plant_tmp_litter(directory: Path) -> None:
    """Drop stale tmp files a real death would have left behind.

    In-process fault simulation is kinder than a SIGKILL: ``finally``
    blocks still unlink tmp files.  Recovery must tolerate the litter a
    real crash leaves, so every cell plants some before restarting.
    """
    directory.mkdir(parents=True, exist_ok=True)
    # Deliberately raw: this *is* the simulated wreckage of a dead writer.
    (directory / "deadbeef.npz.tmp4242").write_bytes(  # repro-lint: disable=RPR306
        b"\x00partial")
    (directory / "chunk_000001.json.tmp4242").write_text(  # repro-lint: disable=RPR306
        "{\"chunk_index\": 1")


def _corrupt_file(path: Path) -> None:
    # Simulating on-disk damage, not performing a durable write.
    path.write_bytes(b"crashmatrix garbage")  # repro-lint: disable=RPR306


# ---------------------------------------------------------------------------
# Cell results and the report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellResult:
    """One ``(site, kind)`` cell of the matrix and its three verdicts."""

    store: str
    site: str
    kind: str
    call_index: int
    fault_fired: bool
    crashed: bool
    recovered_identical: bool
    quarantine_monotone: bool

    @property
    def ok(self) -> bool:
        return (self.fault_fired and self.recovered_identical
                and self.quarantine_monotone)

    def as_dict(self) -> Dict[str, object]:
        return {"store": self.store, "site": self.site, "kind": self.kind,
                "call_index": self.call_index,
                "fault_fired": self.fault_fired, "crashed": self.crashed,
                "recovered_identical": self.recovered_identical,
                "quarantine_monotone": self.quarantine_monotone,
                "ok": self.ok}


@dataclass(frozen=True)
class MatrixReport:
    """The full matrix run: every cell plus the enumeration check."""

    cells: Tuple[CellResult, ...]
    enumerated_sites: FrozenSet[str]
    observed_sites: FrozenSet[str]

    @property
    def enumeration_complete(self) -> bool:
        return self.enumerated_sites == self.observed_sites

    @property
    def passed(self) -> bool:
        return self.enumeration_complete and all(c.ok for c in self.cells)

    def failures(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "n_cells": len(self.cells),
            "n_failed": len(self.failures()),
            "enumeration_complete": self.enumeration_complete,
            "enumerated_sites": sorted(self.enumerated_sites),
            "observed_sites": sorted(self.observed_sites),
            "unenumerated": sorted(self.observed_sites
                                   - self.enumerated_sites),
            "unobserved": sorted(self.enumerated_sites
                                 - self.observed_sites),
            "cells": [cell.as_dict() for cell in self.cells],
        }


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------

def _single_fault(site: str, kind: str, call_index: int) -> IoFaultInjector:
    return IoFaultInjector(rules=(IoFaultRule(site, call_index, kind),))


def _run_cache_cell(root: Path, site: str, kind: str) -> CellResult:
    """One cache cell: die at ``site`` during put (or quarantine), recover."""
    reference = _reference_arrays()
    cache = ResultCache(root)
    via_quarantine = site == "cache.quarantine.replace"
    if via_quarantine:
        # Seed a healthy entry fault-free, then damage its payload so
        # the workload's get() walks into the quarantine move.
        cache.put(_KEY, reference)
        (entry,) = root.glob("*.npz")
        _corrupt_file(entry)
    injector = _single_fault(site, kind, call_index=0)
    crashed = False
    try:
        with iofaults.inject(injector):
            if via_quarantine:
                cache.get(_KEY)
            else:
                cache.put(_KEY, reference)
    except SimulatedCrash:
        crashed = True
    except OSError:
        pass
    corrupt_before = _corrupt_names(root)
    _plant_tmp_litter(root)

    # "Restart": fresh objects, no injector — the post-mortem process.
    recovered = ResultCache(root)
    loaded = recovered.get(_KEY)
    if loaded is None:  # damaged or absent: recompute, as a caller would
        recovered.put(_KEY, reference)
        loaded = recovered.get(_KEY)
    identical = loaded is not None and _arrays_equal(loaded, reference)
    monotone = corrupt_before <= _corrupt_names(root)
    return CellResult("cache", site, kind, 0, bool(injector.fired()),
                      crashed, identical, monotone)


def _run_checkpoint_cell(root: Path, site: str, kind: str) -> CellResult:
    """One checkpoint cell: die mid-sweep at ``site``, resume, re-merge."""
    reference = _merged([_chunk_arrays(i) for i in range(_N_CHUNKS)])
    run_dir = root / stable_hash(_RUN_KEY)
    via_quarantine = site == "checkpoint.quarantine.replace"
    # Manifest sites fire once per store build; chunk sites fire once per
    # chunk — target call 1 there so recovery mixes resumed + recomputed.
    call_index = 1 if (".payload." in site or ".sidecar." in site) else 0
    if via_quarantine:
        seeded = CheckpointStore(root, _RUN_KEY, _N_CHUNKS)
        for index in range(_N_CHUNKS):
            seeded.put_chunk(index, _chunk_arrays(index))
        _corrupt_file(run_dir / "chunk_000001.npz")
    injector = _single_fault(site, kind, call_index)
    crashed = False
    try:
        with iofaults.inject(injector):
            store = CheckpointStore(root, _RUN_KEY, _N_CHUNKS)
            for index in range(_N_CHUNKS):
                if store.get_chunk(index) is None:
                    store.put_chunk(index, _chunk_arrays(index))
    except SimulatedCrash:
        crashed = True
    except OSError:
        pass
    corrupt_before = _corrupt_names(run_dir)
    _plant_tmp_litter(run_dir)

    # "Restart": resume loop — reload what survived, recompute the rest.
    store = CheckpointStore(root, _RUN_KEY, _N_CHUNKS)
    chunks: List[Mapping[str, np.ndarray]] = []
    for index in range(_N_CHUNKS):
        arrays = store.get_chunk(index)
        if arrays is None:
            arrays = _chunk_arrays(index)
            store.put_chunk(index, arrays)
        chunks.append(arrays)
    identical = _arrays_equal(_merged(chunks), reference)
    monotone = corrupt_before <= _corrupt_names(run_dir)
    return CellResult("checkpoint", site, kind, call_index,
                      bool(injector.fired()), crashed, identical, monotone)


def _probe_sites(workdir: Path) -> FrozenSet[str]:
    """Record every site a full healthy-plus-quarantine workload touches."""
    recorder = IoFaultInjector()
    with iofaults.inject(recorder):
        cache_root = workdir / "probe_cache"
        cache = ResultCache(cache_root)
        cache.put(_KEY, _reference_arrays())
        (entry,) = cache_root.glob("*.npz")
        _corrupt_file(entry)
        cache.get(_KEY)

        store = CheckpointStore(workdir / "probe_ckpt", _RUN_KEY, _N_CHUNKS)
        store.put_chunk(0, _chunk_arrays(0))
        _corrupt_file(store.run_dir / "chunk_000000.npz")
        store.get_chunk(0)
    return recorder.observed_sites()


def run_matrix(workdir: Optional[Path] = None) -> MatrixReport:
    """Execute every matrix cell plus the enumeration check.

    ``workdir`` (a scratch directory) is created when omitted; each
    cell runs in its own subdirectory, so cells never share state.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="crashmatrix.") as scratch:
            return run_matrix(Path(scratch))
    cells: List[CellResult] = []
    for site, site_type in ALL_SITES.items():
        runner = (_run_cache_cell if site in CACHE_SITES
                  else _run_checkpoint_cell)
        for kind in kinds_for(site_type):
            cell_dir = workdir / f"{site.replace('.', '_')}__{kind}"
            cell_dir.mkdir(parents=True, exist_ok=True)
            cells.append(runner(cell_dir, site, kind))
    observed = _probe_sites(workdir / "probe")
    return MatrixReport(tuple(cells), frozenset(ALL_SITES), observed)


# ---------------------------------------------------------------------------
# CLI — the CI artifact producer
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-crashmatrix",
        description="Simulate process death at every durable-write site "
                    "and verify recovery is bit-identical.")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="write the full JSON report here (atomic)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every cell, not only failures")
    args = parser.parse_args(argv)

    report = run_matrix()
    for cell in report.cells:
        if args.verbose or not cell.ok:
            status = "ok" if cell.ok else "FAIL"
            print(f"{status:4s} {cell.store:10s} {cell.site:28s} "
                  f"{cell.kind:7s} call={cell.call_index} "
                  f"fired={cell.fault_fired} crash={cell.crashed} "
                  f"identical={cell.recovered_identical} "
                  f"monotone={cell.quarantine_monotone}")
    if not report.enumeration_complete:
        print("enumeration mismatch:", file=sys.stderr)
        print(f"  unenumerated: {sorted(report.observed_sites - report.enumerated_sites)}",
              file=sys.stderr)
        print(f"  unobserved:   {sorted(report.enumerated_sites - report.observed_sites)}",
              file=sys.stderr)
    print(f"crash matrix: {len(report.cells)} cells, "
          f"{len(report.failures())} failed, enumeration "
          f"{'complete' if report.enumeration_complete else 'INCOMPLETE'}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.out,
                          json.dumps(report.as_dict(), indent=1,
                                     sort_keys=True))
        print(f"report written to {args.out}")
    return EXIT_OK if report.passed else EXIT_FATAL


def entry() -> int:
    """Console-script entry: :func:`main` under the operator taxonomy."""
    return run_cli("repro-crashmatrix", main)


if __name__ == "__main__":
    sys.exit(entry())
