"""Per-chunk checkpointing for interrupted Monte-Carlo sweeps.

A production-size sweep should survive its process dying at 90 %.  The
supervised executor (:mod:`repro.experiments.runner`) persists every
completed chunk into a **run directory** keyed by
``(engine, config, seed, chunking, code version)``; an interrupted
sweep resumed with the same key reloads the finished chunks and
recomputes only the missing ones.  Because chunk results are pure
functions of ``(config, chunk seed, chunk size)``, a resumed run is
bit-identical to an uninterrupted one — resume-vs-fresh never changes
results.

Layout under the checkpoint root (``REPRO_CHECKPOINT_DIR`` or an
explicit argument)::

    <root>/<run-hash>/manifest.json      # canonical run key + chunk count
    <root>/<run-hash>/chunk_000007.npz   # arrays of chunk 7
    <root>/<run-hash>/chunk_000007.json  # sidecar: index + content digest
    <root>/<run-hash>/corrupt/           # quarantined entries (never deleted)

Every write is tmp-file + ``os.replace`` atomic; every read verifies
the sidecar's SHA-256 content digest (:func:`repro.util.cache.array_digest`)
and quarantines mismatches into ``corrupt/`` exactly like the result
cache does.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.util.cache import (
    _canonical,
    array_digest,
    atomic_write_npz,
    atomic_write_text,
    quarantine_paths,
    stable_hash,
)

#: Environment variable naming the checkpoint root (enables resume).
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_FORMAT = 1

_LOAD_ERRORS = (OSError, ValueError, EOFError, zipfile.BadZipFile, KeyError)


def checkpoint_dir_from_env() -> Optional[Path]:
    """The configured checkpoint root, or ``None`` when unset."""
    configured = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    return Path(configured) if configured else None


class CheckpointStore:
    """One sweep's chunk checkpoints under ``root/<run-hash>/``.

    ``run_key`` is the same mapping the result cache hashes, so a run
    is resumable exactly when it is cacheable (integer or
    ``SeedSequence`` seeds; never OS entropy).  All filesystem errors
    on ``put`` are swallowed — checkpointing is an optimisation and
    must never take the computation down with it.
    """

    def __init__(self, root: os.PathLike,
                 run_key: Mapping[str, object], n_chunks: int) -> None:
        if n_chunks < 1:
            raise ValueError("a run has at least one chunk")
        self.root = Path(root)
        self.run_key = run_key
        self.n_chunks = n_chunks
        self.run_dir = self.root / stable_hash(run_key)
        #: Chunks this instance moved to ``corrupt/``.
        self.quarantined = 0
        self._write_manifest()

    # -- layout -----------------------------------------------------------

    def _chunk_paths(self, chunk_index: int) -> Tuple[Path, Path]:
        stem = f"chunk_{chunk_index:06d}"
        return (self.run_dir / f"{stem}.npz", self.run_dir / f"{stem}.json")

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    def _write_manifest(self) -> None:
        try:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            if self.manifest_path.exists() and not self._manifest_usable():
                # A torn or foreign manifest must not shadow the run
                # metadata forever: set it aside and write a fresh one.
                self._quarantine(self.manifest_path)
            if not self.manifest_path.exists():
                manifest = {"format": MANIFEST_FORMAT,
                            "n_chunks": self.n_chunks,
                            "key": _canonical(self.run_key)}
                atomic_write_text(
                    self.manifest_path,
                    json.dumps(manifest, sort_keys=True, indent=1),
                    site="checkpoint.manifest")
        except OSError:
            pass

    def _manifest_usable(self) -> bool:
        """Whether the on-disk manifest parses and matches this run."""
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return (isinstance(manifest, dict)
                and manifest.get("format") == MANIFEST_FORMAT
                and manifest.get("n_chunks") == self.n_chunks)

    # -- chunk persistence ------------------------------------------------

    def put_chunk(self, chunk_index: int,
                  arrays: Mapping[str, np.ndarray]) -> None:
        """Persist one completed chunk atomically (payload + sidecar)."""
        self._check_index(chunk_index)
        data_path, meta_path = self._chunk_paths(chunk_index)
        try:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_npz(data_path, arrays, site="checkpoint.payload")
            sidecar = {"chunk_index": chunk_index,
                       "sha256": array_digest(arrays)}
            atomic_write_text(meta_path,
                              json.dumps(sidecar, sort_keys=True, indent=1),
                              site="checkpoint.sidecar")
        except OSError:
            return

    def get_chunk(self, chunk_index: int
                  ) -> Optional[Dict[str, np.ndarray]]:
        """Reload one chunk, or ``None`` when absent or quarantined.

        A chunk whose payload fails to load, whose sidecar is missing
        or unreadable, or whose content digest mismatches is moved to
        ``corrupt/`` and reported missing, so the supervisor recomputes
        it instead of poisoning the merged sweep.  Orphaned halves go
        the same way in both orientations: payload without sidecar
        *and* sidecar without payload are quarantined.
        """
        self._check_index(chunk_index)
        data_path, meta_path = self._chunk_paths(chunk_index)
        if not data_path.exists():
            if meta_path.exists():  # orphaned sidecar: quarantine, miss
                self._quarantine(meta_path)
            return None
        expected = self._sidecar_digest(meta_path)
        try:
            with np.load(data_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except _LOAD_ERRORS:
            self._quarantine(data_path, meta_path)
            return None
        if expected is None or array_digest(arrays) != expected:
            self._quarantine(data_path, meta_path)
            return None
        return arrays

    def completed_chunks(self) -> List[int]:
        """Indices whose payload file exists (unverified fast path)."""
        present = []
        for index in range(self.n_chunks):
            data_path, _ = self._chunk_paths(index)
            if data_path.exists():
                present.append(index)
        return present

    # -- helpers ----------------------------------------------------------

    def _check_index(self, chunk_index: int) -> None:
        if not 0 <= chunk_index < self.n_chunks:
            raise IndexError(
                f"chunk {chunk_index} outside run of {self.n_chunks} chunks")

    def _sidecar_digest(self, meta_path: Path) -> Optional[str]:
        try:
            sidecar = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        digest = sidecar.get("sha256") if isinstance(sidecar, dict) else None
        return digest if isinstance(digest, str) else None

    def _quarantine(self, *paths: Path) -> None:
        if quarantine_paths(self.run_dir, *paths,
                            site="checkpoint.quarantine"):
            self.quarantined += 1
