"""Lightweight phase timers for scheduler performance observability.

The scheduler stack has three distinct phases per call — cost-graph
construction, blossom matching, schedule assembly — whose relative
weight shifts with the backlog size.  :class:`PhaseTimer` accumulates
wall-clock seconds per named phase so experiments and benchmarks can
report where the time went without threading ad-hoc ``perf_counter``
pairs through every layer.

Timers only ever *measure*; they never feed results, so they use
``time.perf_counter`` (monotonic, RPR301-safe).  The clock is
injectable for tests.

Accumulation is thread-safe: the suite engine runs one figure per
thread, each charging phases into its own timer, then folds them into
one suite-level timer via :meth:`PhaseTimer.merge`.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Lock
from time import perf_counter
from typing import Callable, Dict, Iterator, Optional


class PhaseTimer:
    """Accumulates elapsed seconds and call counts per named phase.

    >>> timer = PhaseTimer()
    >>> with timer.phase("matching"):
    ...     pass
    >>> timer.count("matching")
    1

    Nested and repeated phases simply accumulate; a phase re-entered
    recursively counts its wall-clock span once per entry.
    """

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self._lock = Lock()
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager charging its body's elapsed time to ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            with self._lock:
                self._totals[name] = self._totals.get(name, 0.0) + elapsed
                self._counts[name] = self._counts.get(name, 0) + 1

    def total_s(self, name: str) -> float:
        """Accumulated seconds charged to ``name`` (0.0 if never entered)."""
        with self._lock:
            return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many times ``name`` was entered."""
        with self._lock:
            return self._counts.get(name, 0)

    @property
    def phases(self) -> Dict[str, float]:
        """Snapshot of per-phase totals, in phase-first-seen order."""
        with self._lock:
            return dict(self._totals)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly dump: ``{phase: {"total_s": ..., "count": ...}}``."""
        with self._lock:
            return {
                name: {"total_s": self._totals[name],
                       "count": float(self._counts[name])}
                for name in self._totals
            }

    def merge(self, other: "PhaseTimer", prefix: str = "") -> None:
        """Fold another timer's totals and counts into this one.

        ``prefix`` namespaces the incoming phases (the suite engine
        merges each figure's timer under ``"figN."``).  The other timer
        is snapshotted first, so merging a timer into itself is safe.
        """
        with other._lock:
            totals = dict(other._totals)
            counts = dict(other._counts)
        with self._lock:
            for name, total in totals.items():
                key = prefix + name
                self._totals[key] = self._totals.get(key, 0.0) + total
                self._counts[key] = self._counts.get(key, 0) + counts[name]

    def reset(self) -> None:
        """Drop all accumulated totals and counts."""
        with self._lock:
            self._totals.clear()
            self._counts.clear()


@contextmanager
def maybe_phase(timer: Optional[PhaseTimer], name: str) -> Iterator[None]:
    """``timer.phase(name)`` when a timer is given, else a no-op.

    Lets instrumented code take an ``Optional[PhaseTimer]`` without
    branching at every phase boundary.
    """
    if timer is None:
        yield
    else:
        with timer.phase(name):
            yield
