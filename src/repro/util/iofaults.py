"""Deterministic filesystem fault injection for the persistence layer.

PR 3 made *compute* fault-tolerant; this module makes the *storage*
claims testable.  Every durable write in :mod:`repro.util.cache` and
:mod:`repro.util.checkpoint` goes through two named **sites** — a
``<thing>.write`` site (the tmp-file write) and a ``<thing>.replace``
site (the atomic ``os.replace`` publish) — plus a ``.quarantine.replace``
site per store for the corrupt-entry moves.  An active
:class:`IoFaultInjector` intercepts those sites and injects one of the
failure modes long-running sweeps actually die of:

* :data:`ENOSPC` — ``OSError(errno.ENOSPC)`` (disk full);
* :data:`EACCES` — ``PermissionError`` (root became read-only / ACL flip);
* :data:`CRASH` — :class:`SimulatedCrash`, modelling the process dying
  *at* that syscall boundary (SIGKILL, OOM, power loss): nothing after
  the site runs, including ``except OSError`` cleanup;
* :data:`TORN` — a torn publish: the payload is truncated to half its
  bytes, the ``os.replace`` **still happens**, then the process dies.
  This models a crash on a filesystem that reordered data writes
  against the rename — the classic way "atomic" writes go wrong — and
  is exactly what the content-digest verification must catch;
* :data:`IOERROR` — a generic ``OSError`` at the site (transient media
  error), exercising the swallowed-error recovery paths.

Determinism: faults are planned as explicit ``(site, call_index,
kind)`` rules, or drawn from a SHA-256 hash of ``(seed, site,
call_index)`` — the same keyed-hash style as
:class:`repro.util.faults.FaultInjector`.  No wall clock, no global
randomness: a fault schedule replays bit-for-bit, so every crash-point
test is reproducible.

The injector also **records** every site invocation (faulted or not),
which is how the crash-point matrix harness
(:mod:`repro.util.crashmatrix`) machine-checks that its enumeration of
write/replace sites matches the sites the code actually executes — a
new, uninstrumented durable write cannot slip in silently.

`SimulatedCrash` deliberately subclasses :class:`BaseException`: the
persistence layer swallows ``OSError`` by design (a failed cache write
must not kill the sweep), and a simulated process death must not be
swallowable by those same handlers.
"""

from __future__ import annotations

import errno
import hashlib
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from contextlib import contextmanager

#: Fault kinds injectable at a ``.write`` site (before any bytes land).
ENOSPC = "enospc"
EACCES = "eacces"
CRASH = "crash"
IOERROR = "ioerror"
#: Fault kind injectable at a ``.replace`` site only: truncate the
#: tmp payload, publish it anyway, then die.
TORN = "torn"

#: Kinds valid at tmp-write sites.
WRITE_KINDS: Tuple[str, ...] = (ENOSPC, EACCES, IOERROR, CRASH)
#: Kinds valid at replace/publish sites.
REPLACE_KINDS: Tuple[str, ...] = (IOERROR, CRASH, TORN)

_ALL_KINDS = frozenset(WRITE_KINDS) | frozenset(REPLACE_KINDS)


class SimulatedCrash(BaseException):
    """Process death injected at an I/O site.

    A ``BaseException`` on purpose: ``except OSError`` / ``except
    Exception`` recovery code must not be able to "survive" a simulated
    SIGKILL — the crash propagates to the crash-matrix harness exactly
    like real death ends the process.
    """

    def __init__(self, site: str, call_index: int, kind: str) -> None:
        self.site = site
        self.call_index = call_index
        self.kind = kind
        super().__init__(
            f"simulated process death at I/O site {site!r} "
            f"(call {call_index}, fault {kind!r})")


def io_fault_draw(seed: int, site: str, call_index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one site invocation.

    Same keyed-SHA-256 construction as
    :func:`repro.util.faults.fault_draw`: independent of call order
    across sites, process, and platform.
    """
    payload = f"{seed}:{site}:{call_index}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class IoFaultRule:
    """Fail call ``call_index`` (0-based, per site) of ``site`` with ``kind``."""

    site: str
    call_index: int
    kind: str

    def __post_init__(self) -> None:
        if self.call_index < 0:
            raise ValueError("call_index must be non-negative")
        if self.kind not in _ALL_KINDS:
            raise ValueError(f"unknown I/O fault kind {self.kind!r}")


class IoFaultInjector:
    """Deterministically fail filesystem sites; record every invocation.

    ``rules`` are explicit ``(site, call_index, kind)`` triples — the
    crash-point matrix uses exactly one per cell.  ``error_rate`` (with
    ``seed``) adds keyed-hash Bernoulli ``IOERROR`` faults for
    soak-style testing of the swallowed-error paths; rates never inject
    crashes, so a soak run still terminates.

    Per-site call counters are plain in-process state: the persistence
    layer's site order is deterministic for a given workload, so the
    ``(site, call_index)`` key replays exactly.  A lock keeps counters
    coherent when worker threads share the injector.
    """

    def __init__(self, rules: Tuple[IoFaultRule, ...] = (),
                 error_rate: float = 0.0, seed: int = 0,
                 sites: Optional[FrozenSet[str]] = None) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        self.rules = tuple(rules)
        self.error_rate = error_rate
        self.seed = seed
        #: When given, rate-based faults only fire at these sites.
        self.sites = sites
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: Every site invocation seen: ``(site, call_index, kind-or-None)``.
        self.observed: List[Tuple[str, int, Optional[str]]] = []

    # -- bookkeeping -------------------------------------------------------

    def observed_sites(self) -> FrozenSet[str]:
        """Every distinct site this injector intercepted."""
        return frozenset(site for site, _, _ in self.observed)

    def fired(self) -> List[Tuple[str, int, str]]:
        """The invocations that actually faulted."""
        return [(site, index, kind)
                for site, index, kind in self.observed if kind is not None]

    def _decide(self, site: str, call_index: int) -> Optional[str]:
        for rule in self.rules:
            if rule.site == site and rule.call_index == call_index:
                return rule.kind
        if self.error_rate > 0.0 and (self.sites is None or site in self.sites):
            if io_fault_draw(self.seed, site, call_index) < self.error_rate:
                return IOERROR
        return None

    # -- the interception points ------------------------------------------

    def on_write(self, site: str, path: Path) -> None:
        """Called before a tmp-file write; raises the planned fault."""
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            kind = self._decide(site, index)
            self.observed.append((site, index, kind))
        if kind is None:
            return
        if kind == ENOSPC:
            raise OSError(errno.ENOSPC,
                          "injected: no space left on device", str(path))
        if kind == EACCES:
            raise PermissionError(errno.EACCES,
                                  "injected: permission denied", str(path))
        if kind == IOERROR:
            raise OSError(errno.EIO, "injected: input/output error",
                          str(path))
        if kind == CRASH:
            raise SimulatedCrash(site, index, kind)
        raise ValueError(f"fault kind {kind!r} not valid at write site {site!r}")

    def on_replace(self, site: str, src: Path, dst: Path) -> bool:
        """Called before ``os.replace(src, dst)``.

        Returns ``True`` when the caller must still perform the replace
        (no fault), ``False`` never — every fault raises.  The
        :data:`TORN` kind performs its own (torn) publish before dying.
        """
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            kind = self._decide(site, index)
            self.observed.append((site, index, kind))
        if kind is None:
            return True
        if kind == IOERROR:
            raise OSError(errno.EIO, "injected: input/output error",
                          str(dst))
        if kind == CRASH:
            raise SimulatedCrash(site, index, kind)
        if kind == TORN:
            # Model a crash on a filesystem that reordered the data
            # write against the rename: half the payload became
            # visible under the final name, then the process died.
            payload = src.read_bytes()
            # Deliberately raw: this write IS the injected torn publish.
            src.write_bytes(payload[: len(payload) // 2])  # repro-lint: disable=RPR306
            os.replace(src, dst)
            raise SimulatedCrash(site, index, kind)
        raise ValueError(
            f"fault kind {kind!r} not valid at replace site {site!r}")


# ---------------------------------------------------------------------------
# Activation — a module-level injection point the persistence layer polls
# ---------------------------------------------------------------------------

_ACTIVE: Optional[IoFaultInjector] = None


def active_injector() -> Optional[IoFaultInjector]:
    """The currently installed injector (``None`` in production)."""
    return _ACTIVE


@contextmanager
def inject(injector: IoFaultInjector) -> Iterator[IoFaultInjector]:
    """Install ``injector`` for the duration of the ``with`` block.

    Nested injection is a bug (two fault plans would race for the same
    sites) and raises immediately.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("an IoFaultInjector is already active")
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


def trip_write(site: str, path: Path) -> None:
    """Site hook before a tmp-file write (no-op without an injector)."""
    injector = _ACTIVE
    if injector is not None:
        injector.on_write(site, path)


def checked_replace(site: str, src: Path, dst: Path) -> None:
    """``os.replace`` through the active injector's replace site."""
    injector = _ACTIVE
    if injector is not None and not injector.on_replace(site, src, dst):
        return
    os.replace(src, dst)


def single_fault(site: str, kind: str,
                 call_index: int = 0) -> IoFaultInjector:
    """An injector failing exactly one ``(site, call_index)`` cell."""
    return IoFaultInjector(rules=(IoFaultRule(site, call_index, kind),))
