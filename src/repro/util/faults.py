"""Deterministic fault-tolerance primitives for the chunked engines.

Long Monte-Carlo sweeps die for boring reasons: an OOM-killed worker, a
wedged process pool, a truncated cache entry.  The supervised executor
(:mod:`repro.experiments.runner`) recovers from all of them, and this
module supplies the two primitives it builds on:

* :class:`RetryPolicy` — a bounded retry budget with *deterministic*
  exponential backoff.  The sleep hook is injectable (and ``None`` by
  default), so no retry path ever touches the wall clock on its own;
  tests pass a recording stub, production callers may pass
  ``time.sleep``.
* :class:`FaultInjector` — deterministically fails chosen chunk
  invocations and pool rounds.  Decisions are keyed on
  ``(engine, chunk_index, attempt)`` and hashed together with a seed —
  no wall clock, no global randomness — so every recovery path is
  replayable in tests, bit for bit.

Both objects are frozen dataclasses: hashable, picklable (they cross
the ``ProcessPoolExecutor`` boundary next to the chunk payload), and
safe to share between supervisor and workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Tuple


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` in place of a real worker crash."""


def fault_draw(seed: int, engine: str, chunk_index: int, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one chunk invocation.

    A SHA-256 of ``(seed, engine, chunk_index, attempt)`` keeps the
    decision independent of call order, process, and platform — the
    injector makes the same choice on every replay.
    """
    payload = f"{seed}:{engine}:{chunk_index}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts *total* invocations of a chunk (so ``1``
    means "never retry").  The backoff after failed attempt ``k``
    (1-based) is ``backoff_base_s * backoff_factor ** (k - 1)`` capped
    at ``backoff_max_s``; with the default ``backoff_base_s = 0`` no
    waiting happens at all.  Waiting is delegated to the injectable
    ``sleep`` callable — ``None`` (the default) skips sleeping entirely,
    which keeps the policy clock-free unless a caller opts in.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    sleep: Optional[Callable[[float], None]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_max_s < 0.0:
            raise ValueError("backoff_max_s must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retrying after failed ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return min(self.backoff_max_s, delay)

    def wait(self, attempt: int) -> float:
        """Sleep (via the injected hook) before retry; returns the delay."""
        delay = self.backoff_s(attempt)
        if delay > 0.0 and self.sleep is not None:
            self.sleep(delay)
        return delay


@dataclass(frozen=True)
class FaultInjector:
    """Deterministically fail chunk invocations and pool rounds.

    Three failure sources compose (any of them firing fails the
    invocation), each keyed on ``(engine, chunk_index, attempt)``:

    * ``fail_first_attempts`` — every chunk fails its first N attempts
      ("kill every chunk once" is ``fail_first_attempts=1``);
    * ``failures`` — an explicit set of
      ``(engine, chunk_index, attempt)`` triples;
    * ``chunk_failure_rate`` — a seeded hash-based Bernoulli draw per
      invocation (:func:`fault_draw`), for soak-style testing.

    ``pool_break_rounds`` names the (0-based) pool rounds the supervisor
    must treat as a crashed ``ProcessPoolExecutor``; each break consumes
    one rebuild from the executor's budget.
    """

    seed: int = 0
    fail_first_attempts: int = 0
    failures: FrozenSet[Tuple[str, int, int]] = frozenset()
    chunk_failure_rate: float = 0.0
    pool_break_rounds: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.fail_first_attempts < 0:
            raise ValueError("fail_first_attempts must be non-negative")
        if not 0.0 <= self.chunk_failure_rate <= 1.0:
            raise ValueError("chunk_failure_rate must be within [0, 1]")
        object.__setattr__(self, "failures", frozenset(self.failures))
        object.__setattr__(
            self, "pool_break_rounds", frozenset(self.pool_break_rounds))

    def should_fail(self, engine: str, chunk_index: int, attempt: int) -> bool:
        """Whether this chunk invocation must fail (pure, replayable)."""
        if attempt <= self.fail_first_attempts:
            return True
        if (engine, chunk_index, attempt) in self.failures:
            return True
        if self.chunk_failure_rate > 0.0:
            draw = fault_draw(self.seed, engine, chunk_index, attempt)
            return draw < self.chunk_failure_rate
        return False

    def check_chunk(self, engine: str, chunk_index: int, attempt: int) -> None:
        """Raise :class:`InjectedFault` when this invocation must fail."""
        if self.should_fail(engine, chunk_index, attempt):
            raise InjectedFault(
                f"injected fault: engine={engine!r} chunk={chunk_index} "
                f"attempt={attempt}")

    def should_break_pool(self, round_index: int) -> bool:
        """Whether pool round ``round_index`` (0-based) must crash."""
        return round_index in self.pool_break_rounds


def always_failing(engine: str, chunk_index: int,
                   max_attempts: int = 3) -> FaultInjector:
    """An injector that fails every attempt of one chunk.

    Convenience for interruption tests: the chunk exhausts any retry
    budget up to ``max_attempts`` while every other chunk succeeds.
    """
    triples = frozenset((engine, chunk_index, attempt)
                        for attempt in range(1, max_attempts + 1))
    return FaultInjector(failures=triples)
