"""Deterministic on-disk cache for Monte-Carlo results.

The batched Monte-Carlo engines are pure functions of
``(engine name, config, seed, code version)``: running one twice with
the same key always yields bit-identical arrays.  That makes their
results safe to memoise on disk — figure modules and benchmarks can
reuse the 10 000-draw sample sets instead of recomputing them.

Keys are built from a canonical JSON rendering of the key parts and
hashed with SHA-256; each entry is one ``<hash>.npz`` file (the arrays)
plus one ``<hash>.json`` sidecar (the human-readable key, for cache
inspection and debugging).  Invalidation is by construction: any change
to the config, the seed, or the engine's ``code_version`` constant
changes the hash, so stale entries are simply never read again.

The cache root resolves in this order:

1. an explicit ``root`` argument;
2. the ``REPRO_CACHE_DIR`` environment variable;
3. disabled (``ResultCache.from_env()`` returns an inert cache), so
   nothing is written unless the user opted in.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional

import numpy as np

#: Environment variable naming the cache directory (enables caching).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _canonical(value):
    """Reduce a key part to JSON-serialisable canonical form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.random.SeedSequence):
        return {"entropy": _canonical(value.entropy),
                "spawn_key": list(value.spawn_key)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unhashable cache key part: {value!r}")


def stable_hash(key_parts: Mapping[str, object]) -> str:
    """SHA-256 of the canonical JSON rendering of ``key_parts``."""
    payload = json.dumps(_canonical(key_parts), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of named float arrays.

    ``root=None`` builds an *inert* cache: ``get`` always misses and
    ``put`` is a no-op, so callers can thread one object through
    unconditionally.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Cache rooted at ``$REPRO_CACHE_DIR``; inert when unset."""
        configured = os.environ.get(CACHE_DIR_ENV, "").strip()
        return cls(configured or None)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _paths(self, key_parts: Mapping[str, object]):
        digest = stable_hash(key_parts)
        return (self.root / f"{digest}.npz", self.root / f"{digest}.json")

    def get(self, key_parts: Mapping[str, object]
            ) -> Optional[Dict[str, np.ndarray]]:
        """The stored arrays for this key, or ``None`` on a miss."""
        if not self.enabled:
            return None
        data_path, _ = self._paths(key_parts)
        if not data_path.exists():
            return None
        try:
            with np.load(data_path) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            return None  # truncated/corrupt entry: treat as a miss

    def put(self, key_parts: Mapping[str, object],
            arrays: Mapping[str, np.ndarray]) -> None:
        """Store ``arrays`` under the key (atomic via rename).

        Filesystem failures (unwritable root, disk full, ...) are
        swallowed: the cache is an optimisation, and a failed write
        must never destroy the freshly computed result.
        """
        if not self.enabled:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            data_path, meta_path = self._paths(key_parts)
            tmp_path = data_path.with_suffix(f".tmp{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    np.savez_compressed(handle, **dict(arrays))
                os.replace(tmp_path, data_path)
            finally:
                if tmp_path.exists():
                    tmp_path.unlink()
            meta_path.write_text(
                json.dumps(_canonical(key_parts), sort_keys=True, indent=1))
        except OSError:
            return

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        if not self.enabled or not self.root.exists():
            return 0
        removed = 0
        for path in self.root.iterdir():
            if path.suffix in (".npz", ".json"):
                path.unlink()
                removed += 1
        return removed
