"""Deterministic on-disk cache for Monte-Carlo results.

The batched Monte-Carlo engines are pure functions of
``(engine name, config, seed, code version)``: running one twice with
the same key always yields bit-identical arrays.  That makes their
results safe to memoise on disk — figure modules and benchmarks can
reuse the 10 000-draw sample sets instead of recomputing them.

Keys are built from a canonical JSON rendering of the key parts and
hashed with SHA-256; each entry is one ``<hash>.npz`` file (the arrays)
plus one ``<hash>.json`` sidecar (the human-readable key and the
entry's content digest).  Invalidation is by construction: any change
to the config, the seed, or the engine's ``code_version`` constant
changes the hash, so stale entries are simply never read again.

Integrity: every ``put`` stores a SHA-256 digest of the array
*contents* (:func:`array_digest`) in the sidecar, and every ``get``
verifies it after loading.  An entry that fails to load or fails
verification is **quarantined** — moved (never deleted) into a
``corrupt/`` subdirectory for post-mortem inspection — counted on
:attr:`ResultCache.quarantined`, and reported as a miss so callers
recompute.  Quarantined files are renamed with a short digest of their
content, so quarantining the same entry name twice (e.g. across two
resumed runs) preserves both generations instead of clobbering.
Orphaned halves are corrupt too: a payload whose sidecar file vanished,
or a sidecar whose payload vanished, is quarantined and recomputed — a
sidecar that exists but predates content digests still loads
unverified, so old caches never hit a flag day.  Both the payload and
the sidecar are written via tmp-file + ``os.replace``, so a crash
mid-write can never leave a half-written entry that later reads as
valid.

Every durable write and publish runs through a named **I/O site**
(``cache.payload.write``, ``cache.payload.replace``, ...) intercepted
by :mod:`repro.util.iofaults`, which is how the crash-point matrix
(:mod:`repro.util.crashmatrix`) simulates torn writes, ``ENOSPC`` and
process death at every one of these boundaries.

The cache root resolves in this order:

1. an explicit ``root`` argument;
2. the ``REPRO_CACHE_DIR`` environment variable;
3. disabled (``ResultCache.from_env()`` returns an inert cache), so
   nothing is written unless the user opted in.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.util import iofaults

#: Environment variable naming the cache directory (enables caching).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (of a cache/checkpoint root) holding quarantined entries.
QUARANTINE_DIRNAME = "corrupt"

#: Exceptions ``np.load`` raises on truncated or non-npz payloads.
_LOAD_ERRORS = (OSError, ValueError, EOFError, zipfile.BadZipFile, KeyError)


def _canonical(value):
    """Reduce a key part to JSON-serialisable canonical form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.random.SeedSequence):
        return {"entropy": _canonical(value.entropy),
                "spawn_key": list(value.spawn_key)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unhashable cache key part: {value!r}")


def stable_hash(key_parts: Mapping[str, object]) -> str:
    """SHA-256 of the canonical JSON rendering of ``key_parts``."""
    payload = json.dumps(_canonical(key_parts), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def array_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the *contents* of named arrays.

    Hashes ``(name, dtype, shape, raw bytes)`` in name order, so the
    digest is independent of container metadata (npz timestamps,
    compression level) — two writes of the same arrays always agree,
    which keeps concurrent writers of one key digest-consistent.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        data = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(data.dtype.str.encode("ascii"))
        digest.update(repr(data.shape).encode("ascii"))
        digest.update(data.tobytes())
    return digest.hexdigest()


def atomic_write_bytes(path: Path, payload: bytes,
                       site: str = "io") -> None:
    """Write ``payload`` to ``path`` via tmp file + atomic ``os.replace``.

    ``site`` names the I/O boundary for fault injection: the tmp write
    runs through ``<site>.write`` and the publish through
    ``<site>.replace`` (see :mod:`repro.util.iofaults`).
    """
    tmp_path = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        iofaults.trip_write(f"{site}.write", tmp_path)
        # The atomic-write helper is the one legitimate raw write site.
        tmp_path.write_bytes(payload)  # repro-lint: disable=RPR306
        iofaults.checked_replace(f"{site}.replace", tmp_path, path)
    finally:
        _unlink_quietly(tmp_path)


def atomic_write_text(path: Path, text: str, site: str = "io") -> None:
    """Text flavour of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"), site=site)


def atomic_write_npz(path: Path, arrays: Mapping[str, np.ndarray],
                     site: str = "io") -> None:
    """Write named arrays as one npz via tmp file + atomic ``os.replace``.

    Shared by the result cache and the checkpoint store so both expose
    the same ``<site>.write`` / ``<site>.replace`` fault-injection
    boundaries around their payloads.
    """
    tmp_path = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        iofaults.trip_write(f"{site}.write", tmp_path)
        # Streaming into the tmp half of an atomic publish.
        with open(tmp_path, "wb") as handle:  # repro-lint: disable=RPR306
            np.savez_compressed(handle, **dict(arrays))
        iofaults.checked_replace(f"{site}.replace", tmp_path, path)
    finally:
        _unlink_quietly(tmp_path)


def _quarantine_name(path: Path) -> str:
    """Collision-proof quarantine filename: tag with a content digest.

    ``chunk_000001.npz`` quarantined twice across two resumed runs must
    not clobber the first post-mortem copy, so the destination carries
    the first 12 hex digits of the file's SHA-256.  Identical content
    maps to an identical name (overwriting a byte-identical copy is
    harmless); unreadable files fall back to a stable tag and are
    disambiguated by :func:`quarantine_paths` if needed.
    """
    try:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
    except OSError:
        digest = "unreadable"
    return f"{path.stem}.{digest}{path.suffix}"


def quarantine_paths(root: Path, *paths: Path,
                     site: str = "quarantine") -> int:
    """Move ``paths`` into ``root/corrupt/`` (never delete); count moves.

    Destination names carry a content-digest tag
    (:func:`_quarantine_name`), so repeat quarantines of the same entry
    name preserve every distinct generation.  Concurrent quarantines of
    the same entry tolerate each other: a path that vanished mid-move
    is simply skipped.  The move publishes through the ``<site>.replace``
    fault-injection boundary.
    """
    quarantine_dir = root / QUARANTINE_DIRNAME
    moved = 0
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return 0
    for path in paths:
        destination = quarantine_dir / _quarantine_name(path)
        if destination.exists() and ".unreadable" in destination.name:
            serial = 2
            while destination.exists():
                destination = quarantine_dir / (
                    f"{path.stem}.unreadable{serial}{path.suffix}")
                serial += 1
        try:
            iofaults.checked_replace(f"{site}.replace", path, destination)
            moved += 1
        except OSError:
            continue
    return moved


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


@dataclass(frozen=True)
class ClearResult:
    """Counts from :meth:`ResultCache.clear`, quarantine kept separate."""

    removed: int
    quarantined: int


class ResultCache:
    """Content-addressed store of named float arrays.

    ``root=None`` builds an *inert* cache: ``get`` always misses and
    ``put`` is a no-op, so callers can thread one object through
    unconditionally.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None
        #: Entries this instance moved to ``corrupt/`` (digest mismatch
        #: or unreadable payload).
        self.quarantined = 0

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Cache rooted at ``$REPRO_CACHE_DIR``; inert when unset."""
        configured = os.environ.get(CACHE_DIR_ENV, "").strip()
        return cls(configured or None)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _paths(self, key_parts: Mapping[str, object]) -> Tuple[Path, Path]:
        digest = stable_hash(key_parts)
        assert self.root is not None
        return (self.root / f"{digest}.npz", self.root / f"{digest}.json")

    def _expected_digest(self, meta_path: Path) -> Optional[str]:
        """The content digest recorded in the sidecar, if any.

        Entries whose sidecar predates content digests (present and
        readable, no ``sha256`` field) return ``None`` and are loaded
        unverified — integrity is opt-in per entry, never a flag-day
        for existing caches.  A *missing or unreadable* sidecar is the
        orphaned-payload case and is handled as corrupt by ``get``.
        """
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        digest = meta.get("sha256") if isinstance(meta, dict) else None
        return digest if isinstance(digest, str) else None

    def _quarantine(self, *paths: Path) -> None:
        assert self.root is not None
        if quarantine_paths(self.root, *paths, site="cache.quarantine"):
            self.quarantined += 1

    def get(self, key_parts: Mapping[str, object]
            ) -> Optional[Dict[str, np.ndarray]]:
        """The stored arrays for this key, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss.  Corrupt
        means: unreadable npz, content digest differing from the
        sidecar's, or an orphaned half — payload without its sidecar
        *file* (a crash between the two publishes), or sidecar without
        its payload.  Both halves are quarantined together so no stale
        remnant can pair up with a later write.
        """
        if not self.enabled:
            return None
        data_path, meta_path = self._paths(key_parts)
        if not data_path.exists():
            if meta_path.exists():  # orphaned sidecar: quarantine, miss
                self._quarantine(meta_path)
            return None
        if not meta_path.exists():  # orphaned payload: quarantine, miss
            self._quarantine(data_path)
            return None
        try:
            with np.load(data_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except _LOAD_ERRORS:
            self._quarantine(data_path, meta_path)
            return None
        expected = self._expected_digest(meta_path)
        if expected is not None and array_digest(arrays) != expected:
            self._quarantine(data_path, meta_path)
            return None
        return arrays

    def put(self, key_parts: Mapping[str, object],
            arrays: Mapping[str, np.ndarray]) -> None:
        """Store ``arrays`` under the key (payload *and* sidecar atomic).

        Filesystem failures (unwritable root, disk full, ...) are
        swallowed: the cache is an optimisation, and a failed write
        must never destroy the freshly computed result.
        """
        if not self.enabled:
            return
        assert self.root is not None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            data_path, meta_path = self._paths(key_parts)
            atomic_write_npz(data_path, arrays, site="cache.payload")
            meta = dict(_canonical(key_parts))
            meta["sha256"] = array_digest(arrays)
            atomic_write_text(meta_path,
                              json.dumps(meta, sort_keys=True, indent=1),
                              site="cache.sidecar")
        except OSError:
            return

    def clear(self) -> ClearResult:
        """Delete every entry; quarantined entries counted separately.

        Skips subdirectories and foreign files, and tolerates entries
        deleted concurrently by another process.
        """
        if not self.enabled or not self.root.exists():
            return ClearResult(0, 0)
        removed = _clear_entries(self.root)
        quarantined = _clear_entries(self.root / QUARANTINE_DIRNAME)
        return ClearResult(removed, quarantined)


def _clear_entries(directory: Path) -> int:
    """Unlink the ``.npz``/``.json`` files of ``directory``; count them."""
    try:
        entries = sorted(directory.iterdir())
    except OSError:  # missing or unreadable directory
        return 0
    removed = 0
    for path in entries:
        if path.suffix not in (".npz", ".json") or not path.is_file():
            continue
        try:
            path.unlink()
        except FileNotFoundError:  # lost a race with a concurrent clear
            continue
        removed += 1
    return removed
