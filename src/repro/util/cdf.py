"""Empirical CDFs and gain-distribution summaries.

Most of the paper's evaluation figures (Figs. 6, 11, 13, 14) are CDFs of
a *relative gain* metric over a population of topologies.  This module
provides the CDF machinery those experiments share, plus the summary
statistics the paper quotes in prose ("over 20 % gain in 40 % of the
topologies").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical cumulative distribution built from samples.

    The CDF is right-continuous: ``cdf(x)`` is the fraction of samples
    ``<= x``.  Instances are immutable and cheap to evaluate repeatedly.
    """

    sorted_samples: np.ndarray = field(repr=False)

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalCdf":
        arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples,
                         dtype=float)
        if arr.size == 0:
            raise ValueError("cannot build an empirical CDF from zero samples")
        if not np.all(np.isfinite(arr)):
            raise ValueError("samples must all be finite")
        return cls(sorted_samples=np.sort(arr))

    def __len__(self) -> int:
        return int(self.sorted_samples.size)

    def __call__(self, x: float) -> float:
        """Fraction of samples <= x."""
        return float(np.searchsorted(self.sorted_samples, x, side="right")) / len(self)

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 <= q <= 1) of the sample distribution.

        Uses the inverted-CDF definition (no interpolation), so the
        result is always an actual sample and ``cdf(quantile(q)) >= q``
        holds exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_samples, q,
                                 method="inverted_cdf"))

    def survival(self, x: float) -> float:
        """Fraction of samples strictly greater than x (1 - CDF)."""
        return 1.0 - self(x)

    @property
    def mean(self) -> float:
        return float(self.sorted_samples.mean())

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        return float(self.sorted_samples[0])

    @property
    def max(self) -> float:
        return float(self.sorted_samples[-1])

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` arrays suitable for a step plot."""
        n = len(self)
        return self.sorted_samples.copy(), np.arange(1, n + 1, dtype=float) / n


def fraction_at_least(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples >= threshold.

    This is the statistic the paper quotes, e.g. "gains over 20 % in 40 %
    of the topologies" == ``fraction_at_least(gains, 1.20) == 0.40``.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    return float(np.count_nonzero(arr >= threshold)) / arr.size


def ascii_cdf(samples: Sequence[float], width: int = 56, height: int = 12,
              x_min: float = None, x_max: float = None,
              label: str = "") -> str:
    """Render an empirical CDF as an ASCII step plot.

    Mirrors the CDF figures of the paper (Figs. 6, 11, 13, 14): x is
    the gain, y the cumulative fraction.  Used by the benchmark
    harness so `pytest -s` shows the curve, not just summary numbers.
    """
    cdf = EmpiricalCdf.from_samples(samples)
    lo = cdf.min if x_min is None else x_min
    hi = cdf.max if x_max is None else x_max
    if hi <= lo:
        hi = lo + 1.0
    rows = []
    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        x = lo + (hi - lo) * col / (width - 1)
        y = cdf(x)
        row = min(height - 1, int(y * (height - 1) + 0.5))
        grid[height - 1 - row][col] = "*"
    for r, line in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        rows.append(f"{frac:5.2f} |" + "".join(line))
    rows.append("      +" + "-" * width)
    left = f"{lo:.2f}"
    right = f"{hi:.2f}"
    pad = width - len(left) - len(right)
    rows.append("       " + left + " " * max(1, pad) + right)
    if label:
        rows.append(f"       ({label})")
    return "\n".join(rows)


def gain_cdf_summary(gains: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a gain distribution (gain = old_time/new_time).

    Returns the fractions the paper's prose cites plus basic moments.
    A gain of 1.0 means "no improvement"; the paper treats anything within
    numerical noise of 1.0 as "no gain".
    """
    cdf = EmpiricalCdf.from_samples(gains)
    return {
        "n": float(len(cdf)),
        "mean": cdf.mean,
        "median": cdf.median,
        "max": cdf.max,
        "min": cdf.min,
        "frac_no_gain": cdf(1.0 + 1e-9),
        "frac_gain_over_10pct": cdf.survival(1.10),
        "frac_gain_over_20pct": cdf.survival(1.20),
        "frac_gain_over_50pct": cdf.survival(1.50),
    }
