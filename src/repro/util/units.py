"""Unit conversions between linear power, decibels, and dBm.

All internal computation in this library happens in *linear* units
(watts for power, Hz for bandwidth, bits/s for rate).  Decibels appear
only at API boundaries — topology generators accept dBm transmit powers,
experiment modules plot SNR axes in dB — and these helpers are the single
place where the conversions live.

The functions accept scalars or numpy arrays and return the same shape;
scalar inputs come back as Python floats.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]


def _as_result(value: np.ndarray) -> Union[float, np.ndarray]:
    """Collapse 0-d numpy results back to Python floats."""
    if np.ndim(value) == 0:
        return float(value)
    return value


def db_to_linear(value_db: ArrayLike) -> Union[float, np.ndarray]:
    """Convert a decibel quantity to its linear ratio.

    >>> db_to_linear(10.0)
    10.0
    >>> db_to_linear(0.0)
    1.0
    """
    return _as_result(np.power(10.0, np.asarray(value_db, dtype=float) / 10.0))


def linear_to_db(value: ArrayLike) -> Union[float, np.ndarray]:
    """Convert a linear ratio to decibels.

    Raises :class:`ValueError` for non-positive inputs, which have no dB
    representation — a silent ``-inf`` here has historically hidden bugs
    in path-loss code, so we fail loudly instead.
    """
    arr = np.asarray(value, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError(f"linear value must be positive to convert to dB, got {value!r}")
    return _as_result(10.0 * np.log10(arr))


def dbm_to_watts(value_dbm: ArrayLike) -> Union[float, np.ndarray]:
    """Convert dBm (dB relative to 1 mW) to watts.

    >>> dbm_to_watts(30.0)
    1.0
    >>> dbm_to_watts(0.0)
    0.001
    """
    return _as_result(np.power(10.0, (np.asarray(value_dbm, dtype=float) - 30.0) / 10.0))


def watts_to_dbm(value_w: ArrayLike) -> Union[float, np.ndarray]:
    """Convert watts to dBm.  Raises for non-positive power."""
    arr = np.asarray(value_w, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError(f"power must be positive to convert to dBm, got {value_w!r}")
    return _as_result(10.0 * np.log10(arr) + 30.0)


def ratio_db(numerator: ArrayLike, denominator: ArrayLike) -> Union[float, np.ndarray]:
    """dB value of ``numerator / denominator`` — e.g. an SNR from two powers."""
    num = np.asarray(numerator, dtype=float)
    den = np.asarray(denominator, dtype=float)
    if np.any(num <= 0.0) or np.any(den <= 0.0):
        raise ValueError("both operands of ratio_db must be positive")
    return _as_result(10.0 * np.log10(num / den))
