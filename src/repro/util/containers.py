"""Result containers shared by the experiment modules.

Each paper figure is regenerated as structured data rather than as a
plot; these containers are the common shapes (a 1-D parameter sweep and a
2-D grid/heatmap) plus pretty-printers used by the benchmark harness to
print the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class SweepResult:
    """A 1-D parameter sweep: one x-axis, several named y-series."""

    name: str
    x_label: str
    x: np.ndarray
    series: Dict[str, np.ndarray]
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, values in self.series.items():
            if np.shape(values) != np.shape(self.x):
                raise ValueError(
                    f"series {label!r} has shape {np.shape(values)}, "
                    f"expected {np.shape(self.x)} to match the x axis"
                )

    def row_strings(self, max_rows: int = 12) -> List[str]:
        """Human-readable rows, subsampled to at most ``max_rows``."""
        n = len(self.x)
        idx = np.linspace(0, n - 1, min(max_rows, n)).astype(int)
        labels = list(self.series)
        header = f"{self.x_label:>14} | " + " | ".join(f"{label:>14}" for label in labels)
        rows = [header, "-" * len(header)]
        for i in idx:
            cells = " | ".join(f"{self.series[label][i]:14.4g}" for label in labels)
            rows.append(f"{self.x[i]:14.4g} | {cells}")
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "x": self.x.tolist(),
            "series": {k: np.asarray(v).tolist() for k, v in self.series.items()},
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class GridResult:
    """A 2-D grid (heatmap): values indexed by two swept axes."""

    name: str
    x_label: str
    y_label: str
    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = (len(self.y), len(self.x))
        if self.values.shape != expected:
            raise ValueError(
                f"values shape {self.values.shape} does not match grid "
                f"(len(y), len(x)) = {expected}"
            )

    @property
    def max_value(self) -> float:
        return float(np.nanmax(self.values))

    @property
    def min_value(self) -> float:
        return float(np.nanmin(self.values))

    def argmax(self) -> Dict[str, float]:
        """Coordinates and value of the grid maximum."""
        flat = int(np.nanargmax(self.values))
        iy, ix = np.unravel_index(flat, self.values.shape)
        return {
            self.x_label: float(self.x[ix]),
            self.y_label: float(self.y[iy]),
            "value": float(self.values[iy, ix]),
        }

    def ridge_along_y(self) -> np.ndarray:
        """For each y, the x value that maximises the grid.

        Used to verify claims like "the gain peaks when SNR1(dB) is about
        twice SNR2(dB)" — the ridge should track ``x = 2 * y``.
        """
        return self.x[np.nanargmax(self.values, axis=1)]

    def summary_strings(self) -> List[str]:
        peak = self.argmax()
        return [
            f"{self.name}: grid {len(self.y)}x{len(self.x)} "
            f"({self.y_label} x {self.x_label})",
            f"  value range: [{self.min_value:.4g}, {self.max_value:.4g}]",
            "  peak at " + ", ".join(f"{k}={v:.4g}" for k, v in peak.items()),
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "values": self.values.tolist(),
            "meta": dict(self.meta),
        }


def ascii_heatmap(grid: GridResult, width: int = 40, height: int = 16,
                  charset: str = " .:-=+*#%@") -> str:
    """Render a :class:`GridResult` as a small ASCII heatmap.

    Lighter characters = lower values, denser characters = higher values,
    mirroring the shading convention of the paper's Figs. 3, 4 and 8.
    """
    ys = np.linspace(0, len(grid.y) - 1, min(height, len(grid.y))).astype(int)
    xs = np.linspace(0, len(grid.x) - 1, min(width, len(grid.x))).astype(int)
    sub = grid.values[np.ix_(ys, xs)]
    lo, hi = np.nanmin(sub), np.nanmax(sub)
    span = (hi - lo) if hi > lo else 1.0
    lines = []
    for row in sub[::-1]:  # highest y on top, like a plot
        chars = []
        for v in row:
            level = int((v - lo) / span * (len(charset) - 1))
            chars.append(charset[level])
        lines.append("".join(chars))
    return "\n".join(lines)
