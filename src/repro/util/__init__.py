"""Shared utilities: unit conversions, validation, RNG plumbing, CDFs.

These helpers are deliberately small and dependency-light; every other
subpackage builds on them.  The conventions they encode (power in watts
internally, dB only at the API boundary, explicit seeded RNGs everywhere)
are what keep the rest of the reproduction numerically honest.
"""

from repro.util.cache import ResultCache, array_digest, stable_hash
from repro.util.cdf import EmpiricalCdf, fraction_at_least, gain_cdf_summary
from repro.util.checkpoint import CheckpointStore
from repro.util.containers import GridResult, SweepResult
from repro.util.faults import FaultInjector, InjectedFault, RetryPolicy
from repro.util.rng import make_rng, spawn_rngs, spawn_seed_sequences
from repro.util.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    ratio_db,
    watts_to_dbm,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
)

__all__ = [
    "CheckpointStore",
    "EmpiricalCdf",
    "FaultInjector",
    "GridResult",
    "InjectedFault",
    "ResultCache",
    "RetryPolicy",
    "SweepResult",
    "array_digest",
    "check_finite",
    "check_in_range",
    "check_positive",
    "db_to_linear",
    "dbm_to_watts",
    "fraction_at_least",
    "gain_cdf_summary",
    "linear_to_db",
    "make_rng",
    "ratio_db",
    "spawn_rngs",
    "spawn_seed_sequences",
    "stable_hash",
    "watts_to_dbm",
]
