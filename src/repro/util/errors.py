"""Operator-grade failure semantics: taxonomy, exit codes, signals.

A production sweep is driven by schedulers and shell scripts, not by a
human reading tracebacks.  Every repro CLI therefore classifies the way
it ends into a small **failure taxonomy** and maps each class to a
distinct exit code:

===============  ====  =====================================================
class            exit  meaning / operator action
===============  ====  =====================================================
ok                 0   completed; artifacts are trustworthy
fatal              1   a bug or impossible request; retrying cannot help
usage              2   bad invocation (argparse's convention, kept)
transient          3   an environmental failure (retry budget exhausted,
                       broken pool, disk hiccup); rerunning may succeed
corrupt-state      4   on-disk state is damaged beyond self-healing
                       (torn trace file, unusable input); inspect before
                       rerunning
resumable          5   interrupted cleanly (SIGINT/SIGTERM) with
                       checkpoints flushed; rerun the same command to
                       resume where it stopped
===============  ====  =====================================================

The classes mirror the persistence layer's behaviour: *transient*
failures are what the supervised runner retries, *corrupt-state* is
what the quarantine machinery sets aside, and *resumable* is what the
checkpoint store makes cheap.

Signal handling: :func:`signals_as_resumable` converts SIGINT and
SIGTERM into :class:`ResumableInterrupt` — a ``BaseException`` (like
``KeyboardInterrupt``) so no ``except Exception`` recovery path can
swallow an operator's interrupt.  The supervised executor catches it
*once*, flushes every already-completed chunk to the checkpoint store,
and re-raises; the CLI wrapper (:func:`run_cli`) then prints a
structured one-liner with the resume hint and exits ``5``.
"""

from __future__ import annotations

import enum
import os
import signal
import sys
from types import FrameType
from typing import Callable, Dict, Iterator, Optional

from contextlib import contextmanager


class FailureKind(enum.Enum):
    """The operator-facing classification of how a run ended."""

    OK = "ok"
    FATAL = "fatal"
    USAGE = "usage"
    TRANSIENT = "transient"
    CORRUPT_STATE = "corrupt-state"
    RESUMABLE = "resumable"

    @property
    def exit_code(self) -> int:
        return _EXIT_CODES[self]


#: Exit codes, one per failure class (0/1/2 keep their POSIX/argparse
#: meanings; 3-5 are the repro-specific taxonomy).
EXIT_OK = 0
EXIT_FATAL = 1
EXIT_USAGE = 2
EXIT_TRANSIENT = 3
EXIT_CORRUPT_STATE = 4
EXIT_RESUMABLE = 5

_EXIT_CODES = {
    FailureKind.OK: EXIT_OK,
    FailureKind.FATAL: EXIT_FATAL,
    FailureKind.USAGE: EXIT_USAGE,
    FailureKind.TRANSIENT: EXIT_TRANSIENT,
    FailureKind.CORRUPT_STATE: EXIT_CORRUPT_STATE,
    FailureKind.RESUMABLE: EXIT_RESUMABLE,
}


class OperatorError(Exception):
    """Base for failures that carry their own taxonomy class.

    ``hint`` is an optional one-line operator action ("resume with
    ...", "inspect corrupt/ ...") printed after the error message.
    """

    kind: FailureKind = FailureKind.FATAL

    def __init__(self, message: str, hint: Optional[str] = None) -> None:
        self.hint = hint
        super().__init__(message)


class FatalError(OperatorError):
    """A bug or impossible request; retrying cannot help."""

    kind = FailureKind.FATAL


class TransientError(OperatorError):
    """An environmental failure; rerunning the same command may succeed."""

    kind = FailureKind.TRANSIENT


class CorruptStateError(OperatorError):
    """On-disk state is damaged beyond self-healing; inspect, then rerun."""

    kind = FailureKind.CORRUPT_STATE


class ResumableInterrupt(BaseException):
    """SIGINT/SIGTERM arrived; checkpoints were flushed, rerun to resume.

    A ``BaseException`` (like ``KeyboardInterrupt``) so that worker
    supervision and cache code — which legitimately swallow
    ``Exception`` subclasses — can never eat an operator's interrupt.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(
            f"interrupted by {signal.Signals(signum).name}; completed "
            "chunks are checkpointed — rerun the same command to resume")


def classify(exc: BaseException) -> FailureKind:
    """The taxonomy class of an arbitrary exception.

    ``OperatorError`` subclasses carry their class; interrupts are
    resumable; everything else is fatal (an unclassified exception is a
    bug by definition — environmental failures must be raised as
    :class:`TransientError` / :class:`CorruptStateError` at the point
    where the environment is known).
    """
    if isinstance(exc, OperatorError):
        return exc.kind
    if isinstance(exc, (ResumableInterrupt, KeyboardInterrupt)):
        return FailureKind.RESUMABLE
    return FailureKind.FATAL


# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------

#: Set once a handler installed by :func:`signals_as_resumable` fires;
#: long loops may poll it to stop at a clean boundary.
_INTERRUPTED: Optional[int] = None


def interrupt_requested() -> Optional[int]:
    """The signal number of a pending operator interrupt, or ``None``."""
    return _INTERRUPTED


def _raise_resumable(signum: int, frame: Optional[FrameType]) -> None:
    global _INTERRUPTED
    _INTERRUPTED = signum
    raise ResumableInterrupt(signum)


@contextmanager
def signals_as_resumable() -> Iterator[None]:
    """Convert SIGINT/SIGTERM into :class:`ResumableInterrupt`.

    Installed for the duration of a CLI run; previous handlers are
    restored on exit.  Outside the main thread (or on platforms without
    the signal) installation degrades to a no-op rather than failing —
    the CLI still works, just with default signal semantics.
    """
    global _INTERRUPTED
    _INTERRUPTED = None
    previous: Dict[int, object] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise_resumable)
        except (ValueError, OSError):  # non-main thread / unsupported
            continue
    try:
        yield
    finally:
        _INTERRUPTED = None
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                continue


# ---------------------------------------------------------------------------
# The CLI wrapper
# ---------------------------------------------------------------------------

def run_cli(prog: str, body: Callable[[], int]) -> int:
    """Run a CLI body under the failure taxonomy; return its exit code.

    ``body`` returns an exit code itself (0/1/2 conventions stay with
    the individual CLI); exceptions escaping it are classified, printed
    as one structured ``prog: class: message`` line on stderr, and
    mapped to the taxonomy exit code.  SIGINT/SIGTERM are converted to
    :class:`ResumableInterrupt` for the duration.
    """
    try:
        with signals_as_resumable():
            return body()
    except (ResumableInterrupt, KeyboardInterrupt) as exc:
        message = (str(exc) or "interrupted; rerun the same command "
                   "to resume from checkpoints")
        _report(prog, FailureKind.RESUMABLE, message,
                _resume_hint())
        return EXIT_RESUMABLE
    except OperatorError as exc:
        _report(prog, exc.kind, str(exc), exc.hint)
        return exc.kind.exit_code
    except BrokenPipeError:
        # Downstream pager/pipe closed: conventional silent exit.
        try:
            sys.stderr.close()
        except OSError:
            pass
        return EXIT_FATAL
    except Exception as exc:  # unclassified == bug == fatal
        kind = classify(exc)
        _report(prog, kind, f"{type(exc).__name__}: {exc}", None)
        return kind.exit_code


def _resume_hint() -> Optional[str]:
    from repro.util.checkpoint import CHECKPOINT_DIR_ENV

    configured = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    if configured:
        return (f"checkpoints under {configured}; rerunning the same "
                "command resumes from the completed chunks")
    return (f"set {CHECKPOINT_DIR_ENV} to make interrupted sweeps "
            "resumable from their completed chunks")


def _report(prog: str, kind: FailureKind, message: str,
            hint: Optional[str]) -> None:
    print(f"{prog}: {kind.value}: {message}", file=sys.stderr)
    if hint:
        print(f"{prog}: hint: {hint}", file=sys.stderr)


__all__ = [
    "FailureKind",
    "EXIT_OK", "EXIT_FATAL", "EXIT_USAGE", "EXIT_TRANSIENT",
    "EXIT_CORRUPT_STATE", "EXIT_RESUMABLE",
    "OperatorError", "FatalError", "TransientError", "CorruptStateError",
    "ResumableInterrupt",
    "classify", "interrupt_requested", "signals_as_resumable", "run_cli",
]
