"""Power reduction for SIC pairs (paper Section 5.2).

Two clients are a *perfect pair* when both achieve the same bitrate
under SIC, i.e. ``S_strong / (S_weak + N0) == S_weak / N0``.  When the
two RSSs are closer than that, the stronger client's interference-
limited rate is the bottleneck; lowering the *weaker* client's transmit
power widens the RSS gap, raising the stronger client's rate and
lowering the weaker's until they meet.  Power can only ever be
*reduced* — raising it would "amplify the overall channel interference
and may cause a cascading effect" (Section 5.4).

The optimum is closed-form.  Equalising rates means solving

    S_strong / (x + N0) = x / N0
    =>  x = (-N0 + sqrt(N0^2 + 4 * S_strong * N0)) / 2

for the weaker RSS x (exposed as :func:`equal_rate_weak_rss`).  If the
pair's actual weak RSS is already below x, the weak link is the
bottleneck and power reduction cannot help.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.units import ratio_db
from repro.util.validation import check_positive


def equal_rate_weak_rss(channel: Channel, strong_rss_w: float) -> float:
    """The weak RSS that makes both SIC bitrates equal (closed form)."""
    check_positive("strong_rss_w", strong_rss_w)
    n0 = channel.noise_w
    return 0.5 * (-n0 + math.sqrt(n0 * n0 + 4.0 * strong_rss_w * n0))


@dataclass(frozen=True)
class PowerControlledPair:
    """Outcome of power-controlled joint transmission of two packets."""

    airtime_s: float
    strong_rss_w: float
    #: The weaker client's RSS as given (before any reduction).
    original_weak_rss_w: float
    #: The weaker client's RSS actually used (== original when no
    #: reduction was beneficial).
    weak_rss_w: float
    power_reduced: bool

    @property
    def weak_power_backoff_db(self) -> float:
        """How many dB the weaker client backed off (0 when unchanged)."""
        if not self.power_reduced:
            return 0.0
        return float(ratio_db(self.original_weak_rss_w, self.weak_rss_w))


def power_controlled_pair_airtime(channel: Channel, packet_bits: float,
                                  rss_a_w: float,
                                  rss_b_w: float) -> PowerControlledPair:
    """Minimum joint SIC airtime when the weaker power may be reduced.

    Decode order is fixed by RSS (stronger first).  If the stronger
    link's interference-limited rate is the bottleneck, the weaker
    client backs off to the closed-form equal-rate point; otherwise
    powers stay untouched and the result equals the plain Eq. 6 time.
    """
    check_positive("packet_bits", packet_bits)
    check_positive("rss_a_w", rss_a_w)
    check_positive("rss_b_w", rss_b_w)
    strong, weak = max(rss_a_w, rss_b_w), min(rss_a_w, rss_b_w)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    optimal_weak = equal_rate_weak_rss(channel, strong)
    if optimal_weak < weak:
        # Back the weaker client off to the equal-rate point: both
        # transmissions now run at the same bitrate and finish together.
        rate = shannon_rate(b, optimal_weak, 0.0, n0)
        return PowerControlledPair(
            airtime_s=float(airtime(packet_bits, rate)),
            strong_rss_w=strong,
            original_weak_rss_w=weak,
            weak_rss_w=optimal_weak,
            power_reduced=True,
        )

    # Gap already at or beyond optimal: the weak (clean-rate) link is
    # the bottleneck and no power reduction helps.
    t_strong = airtime(packet_bits, shannon_rate(b, strong, weak, n0))
    t_weak = airtime(packet_bits, shannon_rate(b, weak, 0.0, n0))
    return PowerControlledPair(
        airtime_s=float(max(t_strong, t_weak)),
        strong_rss_w=strong,
        original_weak_rss_w=weak,
        weak_rss_w=weak,
        power_reduced=False,
    )


def power_controlled_pair_airtime_batch(channel: Channel, packet_bits: float,
                                        rss_a_w: np.ndarray,
                                        rss_b_w: np.ndarray) -> np.ndarray:
    """Vectorised :func:`power_controlled_pair_airtime` (airtimes only).

    Element ``k`` equals
    ``power_controlled_pair_airtime(channel, packet_bits, a[k], b[k]).airtime_s``;
    the per-pair back-off diagnostics are dropped, which is all the
    Monte-Carlo gain sweep needs.
    """
    check_positive("packet_bits", packet_bits)
    rss_a = np.asarray(rss_a_w, dtype=float)
    rss_b = np.asarray(rss_b_w, dtype=float)
    if np.any(rss_a <= 0.0) or np.any(rss_b <= 0.0):
        raise ValueError("RSS values must be positive")
    strong = np.maximum(rss_a, rss_b)
    weak = np.minimum(rss_a, rss_b)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    optimal_weak = 0.5 * (-n0 + np.sqrt(n0 * n0 + 4.0 * strong * n0))
    t_equalised = np.asarray(
        airtime(packet_bits, shannon_rate(b, optimal_weak, 0.0, n0)),
        dtype=float)
    t_strong = np.asarray(
        airtime(packet_bits, shannon_rate(b, strong, weak, n0)), dtype=float)
    t_weak = np.asarray(
        airtime(packet_bits, shannon_rate(b, weak, 0.0, n0)), dtype=float)
    return np.where(optimal_weak < weak, t_equalised,
                    np.maximum(t_strong, t_weak))
