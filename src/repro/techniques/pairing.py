"""Client pairing: the joint-transmission cost of a pair (Section 5.1).

The SIC-aware scheduler needs, for every pair of backlogged clients
``(i, j)``, the minimum time ``t_ij`` to deliver one packet from each.
This module computes that cost under a configurable set of techniques:

* plain SIC — concurrent transmission per Eq. 6;
* + power control — the weaker client may back off to the equal-rate
  point (Section 5.2);
* + multirate packetization — the bottleneck packet switches to the
  clean rate once its partner finishes (Section 5.3).

Whatever techniques are enabled, the cost never exceeds the serial
time: a MAC would simply not transmit concurrently when SIC loses
("This computation considers the minimum of: i) time for serialized
transmissions, and ii) the minimum time for joint transmissions using
SIC" — Section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.sic.airtime import z_serial_same_receiver, z_sic_same_receiver
from repro.techniques.multirate import (
    multirate_pair_airtime,
    multirate_pair_airtime_batch,
)
from repro.techniques.power_control import (
    power_controlled_pair_airtime,
    power_controlled_pair_airtime_batch,
)
from repro.util.validation import check_positive


class TechniqueSet(enum.Flag):
    """Which Section-5 techniques the MAC may combine with SIC."""

    NONE = 0
    POWER_CONTROL = enum.auto()
    MULTIRATE = enum.auto()
    ALL = POWER_CONTROL | MULTIRATE


class PairMode(enum.Enum):
    """How a pair's packets end up being delivered."""

    SERIAL = "serial"
    SIC = "sic"
    SIC_POWER_CONTROL = "sic+power-control"
    SIC_MULTIRATE = "sic+multirate"


@dataclass(frozen=True)
class PairAirtime:
    """The scheduling cost of one client pair."""

    airtime_s: float
    mode: PairMode
    serial_airtime_s: float
    sic_airtime_s: float

    @property
    def gain(self) -> float:
        """Serial time over chosen time (>= 1 by construction)."""
        return self.serial_airtime_s / self.airtime_s


def pair_airtime(channel: Channel, packet_bits: float,
                 rss_a_w: float, rss_b_w: float,
                 techniques: TechniqueSet = TechniqueSet.NONE,
                 sic_enabled: bool = True) -> PairAirtime:
    """Minimum time to deliver one packet from each of two clients.

    With ``sic_enabled=False`` this is simply the serial Eq. 5 time —
    the no-SIC baseline the gains are measured against.
    """
    check_positive("packet_bits", packet_bits)
    check_positive("rss_a_w", rss_a_w)
    check_positive("rss_b_w", rss_b_w)

    serial = float(z_serial_same_receiver(channel, packet_bits,
                                          rss_a_w, rss_b_w))
    if not sic_enabled:
        return PairAirtime(airtime_s=serial, mode=PairMode.SERIAL,
                           serial_airtime_s=serial, sic_airtime_s=serial)

    sic = float(z_sic_same_receiver(channel, packet_bits, rss_a_w, rss_b_w))
    best, mode = sic, PairMode.SIC

    if TechniqueSet.POWER_CONTROL in techniques:
        controlled = power_controlled_pair_airtime(
            channel, packet_bits, rss_a_w, rss_b_w)
        if controlled.airtime_s < best:
            best, mode = controlled.airtime_s, PairMode.SIC_POWER_CONTROL

    if TechniqueSet.MULTIRATE in techniques:
        multirate = multirate_pair_airtime(channel, packet_bits,
                                           rss_a_w, rss_b_w)
        if multirate.airtime_s < best:
            best, mode = multirate.airtime_s, PairMode.SIC_MULTIRATE

    if serial <= best:
        return PairAirtime(airtime_s=serial, mode=PairMode.SERIAL,
                           serial_airtime_s=serial, sic_airtime_s=sic)
    return PairAirtime(airtime_s=best, mode=mode,
                       serial_airtime_s=serial, sic_airtime_s=sic)


def pair_airtime_batch(channel: Channel, packet_bits: float,
                       rss_a_w: np.ndarray, rss_b_w: np.ndarray,
                       techniques: TechniqueSet = TechniqueSet.NONE,
                       sic_enabled: bool = True) -> np.ndarray:
    """Vectorised :func:`pair_airtime` (airtimes only).

    Element ``k`` equals
    ``pair_airtime(channel, packet_bits, a[k], b[k], ...).airtime_s``
    bit for bit: every branch of the scalar decision (serial floor,
    plain SIC, power control, multirate) is an elementwise minimum over
    the same IEEE operations, so no rounding difference can creep in.
    The per-pair mode/diagnostics are dropped — the scheduler's cost
    graph only needs the ``t_ij`` values, and the few chosen pairs are
    re-costed through the scalar path when the schedule is assembled.
    """
    check_positive("packet_bits", packet_bits)
    rss_a = np.asarray(rss_a_w, dtype=float)
    rss_b = np.asarray(rss_b_w, dtype=float)
    if np.any(rss_a <= 0.0) or np.any(rss_b <= 0.0):
        raise ValueError("RSS values must be positive")

    serial = np.asarray(
        z_serial_same_receiver(channel, packet_bits, rss_a, rss_b),
        dtype=float)
    if not sic_enabled:
        return serial

    best = np.asarray(
        z_sic_same_receiver(channel, packet_bits, rss_a, rss_b), dtype=float)
    if TechniqueSet.POWER_CONTROL in techniques:
        best = np.minimum(best, power_controlled_pair_airtime_batch(
            channel, packet_bits, rss_a, rss_b))
    if TechniqueSet.MULTIRATE in techniques:
        best = np.minimum(best, multirate_pair_airtime_batch(
            channel, packet_bits, rss_a, rss_b))
    return np.minimum(serial, best)


def solo_airtime(channel: Channel, packet_bits: float, rss_w: float) -> float:
    """Time for one client to deliver one packet alone (clean rate).

    Used for the dummy-node edges of the scheduling graph (a client that
    transmits by itself) and for per-client serial baselines.
    """
    check_positive("packet_bits", packet_bits)
    check_positive("rss_w", rss_w)
    rate = shannon_rate(channel.bandwidth_hz, rss_w, 0.0, channel.noise_w)
    return float(airtime(packet_bits, rate))


def solo_airtime_batch(channel: Channel, packet_bits: float,
                       rss_w: np.ndarray) -> np.ndarray:
    """Vectorised :func:`solo_airtime`: clean-rate airtimes per client.

    Element ``k`` equals ``solo_airtime(channel, packet_bits, rss[k])``
    bit for bit (same elementwise operations).
    """
    check_positive("packet_bits", packet_bits)
    rss = np.asarray(rss_w, dtype=float)
    if np.any(rss <= 0.0):
        raise ValueError("RSS values must be positive")
    rate = shannon_rate(channel.bandwidth_hz, rss, 0.0, channel.noise_w)
    return np.asarray(airtime(packet_bits, rate), dtype=float)
