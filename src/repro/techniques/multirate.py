"""Multirate packetization (paper Section 5.3, after [15]).

Under SIC the stronger client runs at its interference-limited rate
*only while its partner is still on the air*.  With multirate
packetization, different parts of a packet carry different bitrates:
once the weaker (faster-finishing) client completes, the stronger
client's remaining bits switch to the clean rate the channel now
supports.  Fig. 10f: the 11.5-unit pairing drops to about 10.4 units.

This helps exactly when the stronger client is the bottleneck — when
the weaker client is the slow one, its bits already flow at the clean
(post-cancellation) rate throughout and there is nothing to switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MultiratePair:
    """Joint airtime with multirate packetization for the bottleneck."""

    airtime_s: float
    #: Seconds the stronger client spent at the interference-limited rate.
    overlap_s: float
    #: Seconds the stronger client spent at its clean rate afterwards.
    boost_s: float

    @property
    def used_rate_switch(self) -> bool:
        return self.boost_s > 0.0


def multirate_pair_airtime(channel: Channel, packet_bits: float,
                           rss_a_w: float, rss_b_w: float) -> MultiratePair:
    """Joint SIC airtime when the stronger packet may switch rates.

    Phase 1 (both on air, duration = the weaker packet's clean-rate
    airtime): the stronger client sends at Eq. 1's interference-limited
    rate.  Phase 2: any remaining bits of the stronger packet go at the
    clean Eq. 2-style rate ``B log2(1 + S_strong / N0)``.
    """
    check_positive("packet_bits", packet_bits)
    check_positive("rss_a_w", rss_a_w)
    check_positive("rss_b_w", rss_b_w)
    strong, weak = max(rss_a_w, rss_b_w), min(rss_a_w, rss_b_w)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    rate_strong_interfered = shannon_rate(b, strong, weak, n0)
    rate_strong_clean = shannon_rate(b, strong, 0.0, n0)
    rate_weak_clean = shannon_rate(b, weak, 0.0, n0)

    t_weak = float(airtime(packet_bits, rate_weak_clean))
    t_strong_interfered = float(airtime(packet_bits, rate_strong_interfered))

    if t_strong_interfered <= t_weak:
        # The weaker client is the bottleneck; the stronger packet fits
        # entirely inside the overlap and no rate switch happens.
        return MultiratePair(airtime_s=t_weak,
                             overlap_s=t_strong_interfered,
                             boost_s=0.0)

    bits_in_overlap = rate_strong_interfered * t_weak
    remaining_bits = packet_bits - bits_in_overlap
    boost = remaining_bits / rate_strong_clean
    return MultiratePair(airtime_s=t_weak + boost,
                         overlap_s=t_weak,
                         boost_s=boost)


def multirate_pair_airtime_batch(channel: Channel, packet_bits: float,
                                 rss_a_w: np.ndarray,
                                 rss_b_w: np.ndarray) -> np.ndarray:
    """Vectorised :func:`multirate_pair_airtime` (airtimes only).

    Element ``k`` equals
    ``multirate_pair_airtime(channel, packet_bits, a[k], b[k]).airtime_s``.
    """
    check_positive("packet_bits", packet_bits)
    rss_a = np.asarray(rss_a_w, dtype=float)
    rss_b = np.asarray(rss_b_w, dtype=float)
    if np.any(rss_a <= 0.0) or np.any(rss_b <= 0.0):
        raise ValueError("RSS values must be positive")
    strong = np.maximum(rss_a, rss_b)
    weak = np.minimum(rss_a, rss_b)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    rate_strong_interfered = np.asarray(
        shannon_rate(b, strong, weak, n0), dtype=float)
    rate_strong_clean = np.asarray(
        shannon_rate(b, strong, 0.0, n0), dtype=float)
    rate_weak_clean = np.asarray(
        shannon_rate(b, weak, 0.0, n0), dtype=float)

    t_weak = np.asarray(airtime(packet_bits, rate_weak_clean), dtype=float)
    t_strong_interfered = np.asarray(
        airtime(packet_bits, rate_strong_interfered), dtype=float)

    bits_in_overlap = rate_strong_interfered * t_weak
    boost = (packet_bits - bits_in_overlap) / rate_strong_clean
    return np.where(t_strong_interfered <= t_weak, t_weak, t_weak + boost)
