"""MAC-layer techniques that empower SIC (paper Section 5).

* :mod:`repro.techniques.pairing` — joint-transmission cost of a client
  pair, the edge weight of the SIC-aware scheduler (Section 5.1);
* :mod:`repro.techniques.power_control` — optimal power reduction that
  equalises the two SIC bitrates (Section 5.2);
* :mod:`repro.techniques.multirate` — multirate packetization: the
  bottleneck client speeds up once its partner finishes (Section 5.3);
* :mod:`repro.techniques.packing` — packet packing: fill the air-time
  gap under a slow packet with extra fast packets (Section 5.4).
"""

from repro.techniques.multirate import (
    multirate_pair_airtime,
    multirate_pair_airtime_batch,
)
from repro.techniques.packing import (
    pack_pair_gain_batch,
    pack_pair_links,
    pack_uplink_airtime,
)
from repro.techniques.pairing import (
    PairAirtime,
    TechniqueSet,
    pair_airtime,
    pair_airtime_batch,
    solo_airtime,
    solo_airtime_batch,
)
from repro.techniques.power_control import (
    power_controlled_pair_airtime,
    power_controlled_pair_airtime_batch,
    equal_rate_weak_rss,
)

__all__ = [
    "PairAirtime",
    "TechniqueSet",
    "equal_rate_weak_rss",
    "multirate_pair_airtime",
    "multirate_pair_airtime_batch",
    "pack_pair_gain_batch",
    "pack_pair_links",
    "pack_uplink_airtime",
    "pair_airtime",
    "pair_airtime_batch",
    "power_controlled_pair_airtime",
    "power_controlled_pair_airtime_batch",
    "solo_airtime",
    "solo_airtime_batch",
]
