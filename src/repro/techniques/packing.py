"""Packet packing (paper Section 5.4).

When one transmission is much slower than its SIC partner, the fast
side finishes early and the tail of the slow packet flies alone.
Packet packing fills that gap by sending *additional* packets at the
fast rate, back to back, underneath the slow one.

Two flavours are implemented:

* :func:`pack_pair_links` — the two-link form used by the Fig. 14
  trace evaluation: one slow and one fast transmission, the fast side
  sends as many packets as fit inside the slow packet's airtime;
* :func:`pack_uplink_airtime` — the multi-client uplink form of
  Fig. 10g: several clients' packets are packed serially under one
  low-rate transmission.  The paper notes that packets after the first
  cannot reliably synchronise on today's SIC receivers; the
  ``allow_mid_air_joins`` flag models both today's restriction (False:
  only the first packed packet may overlap) and the "future
  advancements" case (True).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PackedPair:
    """Outcome of packing fast packets under one slow transmission."""

    #: Completion time of the whole packed exchange.
    airtime_s: float
    #: Number of packets carried on the fast link (>= 1).
    fast_packets: int
    #: Time the same packet mix would need serially, each link at its
    #: clean rate (the no-SIC baseline for the gain metric).
    serial_airtime_s: float

    @property
    def gain(self) -> float:
        """Throughput gain over serial delivery of the same packet mix."""
        if self.airtime_s <= 0.0:
            return 1.0
        return max(1.0, self.serial_airtime_s / self.airtime_s)


def pack_pair_links(channel: Channel, packet_bits: float,
                    slow_rss_w: float, slow_interference_w: float,
                    fast_rss_w: float, fast_interference_w: float,
                    sic_feasible: bool,
                    max_fast_packets: int = 8) -> PackedPair:
    """Pack fast-link packets under one slow-link packet.

    ``slow_*`` describes the transmission that dominates the airtime
    (RSS at its receiver and the interference it sees there during the
    overlap); ``fast_*`` likewise for the quicker link.  When
    ``sic_feasible`` is False the links cannot overlap and the result
    degenerates to serial transmission (gain 1).

    The gain metric compares like for like: the packed exchange delivers
    ``1 + k`` packets, so the baseline is the serial time of those same
    ``1 + k`` packets with every link at its clean rate.
    """
    check_positive("packet_bits", packet_bits)
    b, n0 = channel.bandwidth_hz, channel.noise_w
    rate_slow_clean = shannon_rate(b, slow_rss_w, 0.0, n0)
    rate_fast_clean = shannon_rate(b, fast_rss_w, 0.0, n0)
    t_slow_clean = float(airtime(packet_bits, rate_slow_clean))
    t_fast_clean = float(airtime(packet_bits, rate_fast_clean))

    if not sic_feasible:
        return PackedPair(airtime_s=t_slow_clean + t_fast_clean,
                          fast_packets=1,
                          serial_airtime_s=t_slow_clean + t_fast_clean)

    rate_slow = shannon_rate(b, slow_rss_w, slow_interference_w, n0)
    rate_fast = shannon_rate(b, fast_rss_w, fast_interference_w, n0)
    t_slow = float(airtime(packet_bits, rate_slow))
    t_fast = float(airtime(packet_bits, rate_fast))
    if t_fast >= t_slow:
        # Nothing to pack: the "fast" link is not actually faster here.
        concurrent = max(t_slow, t_fast)
        serial = t_slow_clean + t_fast_clean
        return PackedPair(airtime_s=min(concurrent, serial),
                          fast_packets=1, serial_airtime_s=serial)

    fast_fit = max(1, min(max_fast_packets, math.floor(t_slow / t_fast)))
    packed_time = max(t_slow, fast_fit * t_fast)
    serial = t_slow_clean + fast_fit * t_fast_clean
    if serial < packed_time:  # packing never used when it loses
        return PackedPair(airtime_s=t_slow_clean + t_fast_clean,
                          fast_packets=1,
                          serial_airtime_s=t_slow_clean + t_fast_clean)
    return PackedPair(airtime_s=packed_time, fast_packets=fast_fit,
                      serial_airtime_s=serial)


def pack_pair_gain_batch(channel: Channel, packet_bits: float,
                         slow_rss_w: np.ndarray,
                         slow_interference_w: np.ndarray,
                         fast_rss_w: np.ndarray,
                         fast_interference_w: np.ndarray,
                         max_fast_packets: int = 8) -> np.ndarray:
    """Vectorised :func:`pack_pair_links` gain for SIC-feasible pairs.

    Element ``k`` equals ``pack_pair_links(..., sic_feasible=True).gain``
    on the ``k``-th slow/fast description.  Infeasible pairs degenerate
    to gain 1 in the scalar path, so callers mask those out instead.
    """
    check_positive("packet_bits", packet_bits)
    slow_rss = np.asarray(slow_rss_w, dtype=float)
    slow_interference = np.asarray(slow_interference_w, dtype=float)
    fast_rss = np.asarray(fast_rss_w, dtype=float)
    fast_interference = np.asarray(fast_interference_w, dtype=float)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    t_slow_clean = np.asarray(
        airtime(packet_bits, shannon_rate(b, slow_rss, 0.0, n0)), dtype=float)
    t_fast_clean = np.asarray(
        airtime(packet_bits, shannon_rate(b, fast_rss, 0.0, n0)), dtype=float)
    t_slow = np.asarray(
        airtime(packet_bits,
                shannon_rate(b, slow_rss, slow_interference, n0)), dtype=float)
    t_fast = np.asarray(
        airtime(packet_bits,
                shannon_rate(b, fast_rss, fast_interference, n0)), dtype=float)

    serial_two = t_slow_clean + t_fast_clean
    # Branch 1: the "fast" link is not actually faster -> no packing.
    no_pack_airtime = np.minimum(np.maximum(t_slow, t_fast), serial_two)
    # Branch 2: pack as many fast packets as fit under the slow one.
    with np.errstate(divide="ignore", invalid="ignore"):
        fast_fit = np.clip(np.floor(t_slow / t_fast), 1, max_fast_packets)
    fast_fit = np.where(np.isfinite(fast_fit), fast_fit, 1.0)
    packed_time = np.maximum(t_slow, fast_fit * t_fast)
    serial_packed = t_slow_clean + fast_fit * t_fast_clean
    # Packing is never used when it loses to plain serial delivery.
    packed_airtime = np.where(serial_packed < packed_time,
                              serial_two, packed_time)
    packed_serial = np.where(serial_packed < packed_time,
                             serial_two, serial_packed)

    no_pack = t_fast >= t_slow
    airtime_s = np.where(no_pack, no_pack_airtime, packed_airtime)
    serial_s = np.where(no_pack, serial_two, packed_serial)
    safe_airtime = np.where(airtime_s > 0.0, airtime_s, 1.0)
    gain = np.where(airtime_s > 0.0, serial_s / safe_airtime, 1.0)
    return np.maximum(1.0, gain)


@dataclass(frozen=True)
class PackedUplink:
    """Outcome of packing several clients under one slow uplink packet."""

    airtime_s: float
    #: Names/indices of clients packed under the slow one, in order.
    packed_order: Tuple[int, ...]
    serial_airtime_s: float

    @property
    def gain(self) -> float:
        if self.airtime_s <= 0.0:
            return 1.0
        return max(1.0, self.serial_airtime_s / self.airtime_s)


def pack_uplink_airtime(channel: Channel, packet_bits: float,
                        slow_rss_w: float,
                        fast_rss_ws: Sequence[float],
                        allow_mid_air_joins: bool = False) -> PackedUplink:
    """Pack one packet from each fast client under one slow uplink packet.

    Two-signal SIC at the AP: at any instant at most one fast packet
    overlaps the slow one, and the *stronger* of the two signals is
    decoded first, interference-limited, while the weaker rides clean
    after cancellation.  Hence a fast client stronger than the slow one
    sends at ``rate(fast, slow)`` and the slow packet decodes clean; a
    fast client *weaker* than the slow one rides clean itself while the
    slow packet must tolerate it as interference (the paper's "weaker
    client could send multiple packets" variant).

    ``allow_mid_air_joins=False`` (today's hardware, per the paper)
    permits only the *first* fast packet to overlap the slow one —
    later ones would have to synchronise mid-air — so any remaining
    fast packets queue up serially after the slow packet ends.
    """
    check_positive("packet_bits", packet_bits)
    check_positive("slow_rss_w", slow_rss_w)
    if not fast_rss_ws:
        raise ValueError("need at least one fast client to pack")
    for rss in fast_rss_ws:
        check_positive("fast client RSS", rss)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    # The slow packet spans every overlap: it is interference-limited
    # by the strongest *weaker-than-slow* fast client (those decode
    # after the slow signal is cancelled, so they interfere with it);
    # stronger fast clients are cancelled before the slow decode.
    weaker_fast = [rss for rss in fast_rss_ws if rss < slow_rss_w]
    slow_interference = max(weaker_fast) if weaker_fast else 0.0
    rate_slow = shannon_rate(b, slow_rss_w, slow_interference, n0)
    t_slow = float(airtime(packet_bits, rate_slow))

    fast_times = [
        float(airtime(packet_bits,
                      shannon_rate(b, rss,
                                   slow_rss_w if rss >= slow_rss_w else 0.0,
                                   n0)))
        for rss in fast_rss_ws
    ]
    # Pack fastest-first so as many packets as possible fit in the gap.
    order = sorted(range(len(fast_times)), key=lambda i: fast_times[i])

    elapsed = 0.0
    packed: List[int] = []
    leftover: List[int] = []
    for idx in order:
        fits = elapsed + fast_times[idx] <= t_slow
        first = not packed
        if fits and (first or allow_mid_air_joins):
            packed.append(idx)
            elapsed += fast_times[idx]
        else:
            leftover.append(idx)

    # Leftovers transmit after the slow packet ends, alone and clean.
    fast_clean_times = [
        float(airtime(packet_bits, shannon_rate(b, rss, 0.0, n0)))
        for rss in fast_rss_ws
    ]
    tail = sum(fast_clean_times[i] for i in leftover)
    total = max(t_slow, elapsed) + tail

    t_slow_clean = float(airtime(packet_bits,
                                 shannon_rate(b, slow_rss_w, 0.0, n0)))
    serial = t_slow_clean + sum(fast_clean_times)
    return PackedUplink(airtime_s=min(total, serial),
                        packed_order=tuple(packed),
                        serial_airtime_s=serial)
