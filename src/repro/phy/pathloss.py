"""Propagation models: log-distance path loss with optional shadowing.

The paper's Monte-Carlo evaluation (Section 3.2) computes RSS "based on
the transmitter-receiver distance, using path loss exponent alpha = 4".
That is the log-distance model implemented here.  The trace substrate
additionally applies log-normal shadowing, the standard indoor model,
so the synthetic building traces exhibit the RSS dispersion that real
802.11g RSSI traces show.

All models return *linear* received power in watts; dB appears only in
the shadowing sigma parameter (which is conventionally quoted in dB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.units import db_to_linear
from repro.util.validation import check_nonnegative, check_positive

ArrayLike = Union[float, np.ndarray]

#: Speed of light, m/s.
SPEED_OF_LIGHT_M_PER_S = 299_792_458.0

#: Default carrier frequency: 2.4 GHz ISM band (802.11b/g).
DEFAULT_FREQUENCY_HZ = 2.4e9


def free_space_path_gain(distance_m: ArrayLike,
                         frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> ArrayLike:
    """Friis free-space power gain ``(lambda / (4 pi d))^2`` (linear, <= 1).

    Used as the reference gain at the close-in distance of the
    log-distance model.
    """
    check_positive("frequency_hz", frequency_hz)
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0.0):
        raise ValueError("distance must be positive")
    wavelength = SPEED_OF_LIGHT_M_PER_S / frequency_hz
    gain = (wavelength / (4.0 * math.pi * d)) ** 2
    return float(gain) if np.ndim(gain) == 0 else gain


class PropagationModel:
    """Interface: map (tx power, distance) -> received power in watts."""

    def path_gain(self, distance_m: ArrayLike) -> ArrayLike:
        """Deterministic power gain (linear) at ``distance_m``."""
        raise NotImplementedError

    def received_power(self, tx_power_w: float, distance_m: ArrayLike,
                       rng: Optional[np.random.Generator] = None) -> ArrayLike:
        """Received power in watts; ``rng`` enables stochastic terms."""
        check_positive("tx_power_w", tx_power_w)
        gain = self.path_gain(distance_m)
        power = tx_power_w * np.asarray(gain, dtype=float)
        power = self._apply_fading(power, rng)
        return float(power) if np.ndim(power) == 0 else power

    def path_gain_batch(self, distance_m: np.ndarray) -> np.ndarray:
        """Batched :meth:`path_gain`, bit-identical to per-element calls.

        The default implementation delegates to :meth:`path_gain`;
        models whose array formulation diverges from the scalar one
        (1-ulp transcendental differences) override this with an
        element-exact replay.
        """
        return np.asarray(self.path_gain(np.asarray(distance_m, dtype=float)),
                          dtype=float)

    def received_power_batch(self, tx_power_w: float,
                             distance_m: np.ndarray,
                             rng: Optional[np.random.Generator] = None,
                             ) -> np.ndarray:
        """Batched :meth:`received_power`, replaying the scalar path.

        Evaluates a whole distance array in one call while remaining
        **bit-identical, element for element and draw for draw**, to
        calling :meth:`received_power` once per element in C order with
        the same ``rng``.  The trace generators' fast paths route every
        RSS matrix through here so their golden equivalence against the
        frozen scalar generators reduces to this contract (pinned in
        ``tests/phy/test_pathloss.py``).
        """
        check_positive("tx_power_w", tx_power_w)
        gain = self.path_gain_batch(np.asarray(distance_m, dtype=float))
        power = tx_power_w * gain
        return self._apply_fading_batch(power, rng)

    def _apply_fading(self, power_w: np.ndarray,
                      rng: Optional[np.random.Generator]) -> np.ndarray:
        return power_w

    def _apply_fading_batch(self, power_w: np.ndarray,
                            rng: Optional[np.random.Generator]) -> np.ndarray:
        return power_w


@dataclass(frozen=True)
class FreeSpace(PropagationModel):
    """Pure Friis free-space propagation (alpha = 2, no fading)."""

    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def path_gain(self, distance_m: ArrayLike) -> ArrayLike:
        return free_space_path_gain(distance_m, self.frequency_hz)


@dataclass(frozen=True)
class LogDistancePathLoss(PropagationModel):
    """Log-distance path loss with optional log-normal shadowing.

    Power gain is ``G(d0) * (d0 / d)^alpha`` beyond the close-in
    reference distance ``d0`` (free space inside ``d0``), where ``G(d0)``
    is the Friis gain at ``d0``.  ``shadowing_sigma_db > 0`` multiplies
    the gain by a log-normal term with that dB standard deviation,
    requiring an ``rng`` in :meth:`received_power`.

    Parameters match the paper: ``exponent=4.0`` is the alpha used for
    the Monte-Carlo results of Fig. 6.
    """

    exponent: float = 4.0
    reference_distance_m: float = 1.0
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    shadowing_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        check_positive("exponent", self.exponent)
        check_positive("reference_distance_m", self.reference_distance_m)
        check_positive("frequency_hz", self.frequency_hz)
        check_nonnegative("shadowing_sigma_db", self.shadowing_sigma_db)

    def path_gain(self, distance_m: ArrayLike) -> ArrayLike:
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0.0):
            raise ValueError("distance must be positive")
        g0 = free_space_path_gain(self.reference_distance_m, self.frequency_hz)
        # Free space up to d0, power-law decay beyond it.
        ratio = np.maximum(d, self.reference_distance_m) / self.reference_distance_m
        gain = g0 * ratio ** (-self.exponent)
        near = d < self.reference_distance_m
        if np.any(near):
            near_gain = free_space_path_gain(np.where(near, d, self.reference_distance_m),
                                             self.frequency_hz)
            gain = np.where(near, near_gain, gain)
        return float(gain) if np.ndim(gain) == 0 else gain

    def path_gain_batch(self, distance_m: np.ndarray) -> np.ndarray:
        """Element-exact replay of the scalar :meth:`path_gain`.

        A scalar call funnels ``ratio`` through a numpy *scalar*
        (``np.maximum`` on a 0-d array returns one), so its power law is
        evaluated by the scalar libm ``pow``; numpy's array ``**`` uses
        a SIMD loop that rounds differently by 1 ulp on ~5 % of inputs.
        The power law therefore runs per element through Python's
        ``float.__pow__`` (same libm path as the numpy scalar); every
        other operation (multiply, divide, maximum) rounds identically
        in array and scalar form and stays vectorised.
        """
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0.0):
            raise ValueError("distance must be positive")
        ref = self.reference_distance_m
        g0 = free_space_path_gain(ref, self.frequency_hz)
        ratio = np.maximum(d, ref) / ref
        neg_exponent = -self.exponent
        decay = np.array([r ** neg_exponent for r in ratio.ravel().tolist()],
                         dtype=float).reshape(d.shape)
        gain = g0 * decay
        near = d < ref
        if np.any(near):
            near_gain = free_space_path_gain(np.where(near, d, ref),
                                             self.frequency_hz)
            gain = np.where(near, near_gain, gain)
        return np.asarray(gain, dtype=float)

    def _apply_fading(self, power_w: np.ndarray,
                      rng: Optional[np.random.Generator]) -> np.ndarray:
        if self.shadowing_sigma_db <= 0.0:
            return power_w
        if rng is None:
            raise ValueError(
                "shadowing_sigma_db > 0 requires an rng in received_power()"
            )
        shadow_db = rng.normal(0.0, self.shadowing_sigma_db, size=np.shape(power_w))
        return power_w * np.asarray(db_to_linear(shadow_db), dtype=float)

    def _apply_fading_batch(self, power_w: np.ndarray,
                            rng: Optional[np.random.Generator]) -> np.ndarray:
        """One block normal draw replaces the per-element draws.

        A ``Generator.normal(size=(n, m))`` block consumes the bit
        stream exactly as ``n * m`` sequential ``size=()`` draws do, so
        the shadowing realisation matches the scalar loop draw for
        draw; ``db_to_linear`` (base-10 exponential) rounds identically
        in array and scalar form.
        """
        if self.shadowing_sigma_db <= 0.0:
            return power_w
        if rng is None:
            raise ValueError(
                "shadowing_sigma_db > 0 requires an rng in "
                "received_power_batch()"
            )
        shadow_db = rng.normal(0.0, self.shadowing_sigma_db,
                               size=np.shape(power_w))
        return power_w * np.asarray(db_to_linear(shadow_db), dtype=float)


def rss_from_distances(model: PropagationModel, tx_power_w: float,
                       distances_m: np.ndarray) -> np.ndarray:
    """Batched RSS: one ``received_power`` call over a distance array.

    The vectorised Monte-Carlo engines route every RSS computation
    through here so a whole batch of topologies resolves to watts in a
    single array expression.  The result is always an ``ndarray`` (the
    scalar convenience path returns plain floats for 0-d inputs).
    """
    distances = np.asarray(distances_m, dtype=float)
    power = model.received_power(tx_power_w, distances)
    return np.asarray(power, dtype=float)


def received_power(tx_power_w: float, distance_m: ArrayLike,
                   model: Optional[PropagationModel] = None,
                   rng: SeedLike = None) -> ArrayLike:
    """Received power through ``model`` (default: alpha-4 log-distance).

    Thin convenience wrapper used by the Monte-Carlo experiments.
    """
    if model is None:
        model = LogDistancePathLoss()
    generator = None
    if getattr(model, "shadowing_sigma_db", 0.0) > 0.0:
        generator = make_rng(rng)
    return model.received_power(tx_power_w, distance_m, generator)
