"""Discrete 802.11 bitrate tables and rate selection.

The paper's central argument is that *ideal* (continuous) rate
adaptation squeezes out SIC's slack, and that the slack "is fast
disappearing with more fine-grain bitrates (4 in 802.11b vs 8 in 802.11g
vs 32 in 802.11n)".  This module provides those three discrete rate
tables plus the selection rules the trace evaluation uses:

* :meth:`RateTable.best_rate` — highest rate whose SINR threshold is met
  (the idealised discrete selection);
* :func:`best_discrete_rate` — highest rate achieving a target packet
  success probability under a :class:`~repro.phy.error.PacketErrorModel`
  (the paper's "highest 802.11g bitrate at which 90 % of packets are
  received successfully").

The SINR thresholds are approximations derived from standard receiver
sensitivity specifications (e.g. -82 dBm for 6 Mbps OFDM down to
-65 dBm for 54 Mbps over a ~-95 dBm noise floor); absolute values do not
matter for the reproduction, only the *spacing* between rate steps,
which controls how much slack discrete adaptation leaves for SIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.units import db_to_linear, linear_to_db
from repro.util.validation import check_positive, check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.phy.error import PacketErrorModel


@dataclass(frozen=True)
class RateStep:
    """One modulation/coding step: a bitrate and its minimum SINR."""

    rate_bps: float
    min_sinr_db: float

    def __post_init__(self) -> None:
        check_positive("rate_bps", self.rate_bps)

    @property
    def min_sinr_linear(self) -> float:
        return float(db_to_linear(self.min_sinr_db))


@dataclass(frozen=True)
class RateTable:
    """An ordered set of discrete bitrate steps for one PHY standard."""

    name: str
    steps: Tuple[RateStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a rate table needs at least one step")
        rates = [s.rate_bps for s in self.steps]
        thresholds = [s.min_sinr_db for s in self.steps]
        if sorted(rates) != rates or len(set(rates)) != len(rates):
            raise ValueError(f"{self.name}: rates must be strictly increasing")
        if sorted(thresholds) != thresholds:
            raise ValueError(f"{self.name}: SINR thresholds must be non-decreasing")

    @classmethod
    def from_pairs(cls, name: str,
                   pairs: Sequence[Tuple[float, float]]) -> "RateTable":
        """Build from ``(rate_bps, min_sinr_db)`` pairs."""
        return cls(name=name, steps=tuple(RateStep(r, t) for r, t in pairs))

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def rates_bps(self) -> List[float]:
        return [s.rate_bps for s in self.steps]

    @property
    def max_rate_bps(self) -> float:
        return self.steps[-1].rate_bps

    def best_rate(self, sinr_linear: float) -> float:
        """Highest bitrate whose SINR threshold is met; 0.0 if none.

        A return of 0.0 means the link cannot carry packets at all at
        this SINR (the paper's infeasible case).
        """
        if sinr_linear < 0.0:
            raise ValueError("SINR must be non-negative")
        if sinr_linear == 0.0:
            return 0.0
        sinr_db = float(linear_to_db(sinr_linear))
        best = 0.0
        for step in self.steps:
            if sinr_db >= step.min_sinr_db:
                best = step.rate_bps
            else:
                break
        return best

    def best_rate_db(self, sinr_db: float) -> float:
        """Highest bitrate for an SINR given in dB; 0.0 if none."""
        best = 0.0
        for step in self.steps:
            if sinr_db >= step.min_sinr_db:
                best = step.rate_bps
            else:
                break
        return best

    def quantize(self, shannon_rate_bps: float) -> float:
        """Largest table rate <= a continuous rate; 0.0 if below all steps.

        Models a rate-adaptation algorithm that knows the ideal rate but
        can only pick from the standard's discrete set.
        """
        if shannon_rate_bps < 0.0:
            raise ValueError("rate must be non-negative")
        best = 0.0
        for step in self.steps:
            if step.rate_bps <= shannon_rate_bps:
                best = step.rate_bps
            else:
                break
        return best

    def threshold_for_rate(self, rate_bps: float) -> float:
        """The SINR threshold (dB) of an exact table rate."""
        for step in self.steps:
            if step.rate_bps == rate_bps:
                return step.min_sinr_db
        raise KeyError(f"{rate_bps} bps is not a rate of table {self.name}")


def _mbps(value: float) -> float:
    return value * 1e6


#: 802.11b DSSS/CCK: 4 rates.  Thresholds from typical sensitivity specs.
DOT11B = RateTable.from_pairs("802.11b", [
    (_mbps(1.0), 2.0),
    (_mbps(2.0), 4.0),
    (_mbps(5.5), 7.0),
    (_mbps(11.0), 10.0),
])

#: 802.11g OFDM: 8 rates.
DOT11G = RateTable.from_pairs("802.11g", [
    (_mbps(6.0), 5.0),
    (_mbps(9.0), 6.0),
    (_mbps(12.0), 8.0),
    (_mbps(18.0), 11.0),
    (_mbps(24.0), 14.0),
    (_mbps(36.0), 18.0),
    (_mbps(48.0), 22.0),
    (_mbps(54.0), 24.0),
])

#: Per-stream 802.11n 20 MHz (800 ns GI) MCS 0-7 rates in Mbps with
#: approximate per-stream SINR thresholds.
_DOT11N_BASE = [
    (6.5, 5.0),
    (13.0, 8.0),
    (19.5, 11.0),
    (26.0, 14.0),
    (39.0, 18.0),
    (52.0, 22.0),
    (58.5, 24.0),
    (65.0, 26.0),
]


def _build_dot11n(streams: int = 4) -> RateTable:
    """Build the 32-entry 802.11n table (MCS 0-31, up to 4 streams).

    Rates scale linearly with the stream count; the required SINR grows
    by roughly 3 dB per added stream (power is split across streams).
    Ties in rate between stream configurations keep the lowest-threshold
    variant.  This is a simplified MIMO model — the paper only uses the
    table's *granularity* ("32 in 802.11n"), not its MIMO physics.
    """
    candidates = {}
    for n in range(1, streams + 1):
        for rate_mbps, thr_db in _DOT11N_BASE:
            rate = _mbps(rate_mbps * n)
            threshold = thr_db + 3.0 * (n - 1)
            if rate not in candidates or threshold < candidates[rate]:
                candidates[rate] = threshold
    pairs = sorted(candidates.items())
    # Enforce monotone thresholds (a faster rate never needs less SINR).
    monotone = []
    floor = -np.inf
    for rate, thr in pairs:
        floor = max(floor, thr)
        monotone.append((rate, floor))
    return RateTable.from_pairs("802.11n-20MHz", monotone)


DOT11N_20MHZ = _build_dot11n()

#: The paper counts "32 in 802.11n" — MCS 0 through 31.  Several MCS
#: indices share a rate value (e.g. MCS 1 at 13 Mbps equals two-stream
#: MCS 8), so the 32 MCS entries collapse to the distinct rate steps of
#: :data:`DOT11N_20MHZ`; this constant records the MCS count itself.
DOT11N_MCS_COUNT = 32

#: All standard tables keyed by name, for CLI/experiment lookup.
STANDARD_TABLES = {
    DOT11B.name: DOT11B,
    DOT11G.name: DOT11G,
    DOT11N_20MHZ.name: DOT11N_20MHZ,
}


def best_discrete_rate(table: RateTable, sinr_linear: float,
                       error_model: Optional["PacketErrorModel"] = None,
                       packet_bits: float = 12000.0,
                       target_success: float = 0.9) -> float:
    """Highest table rate meeting a packet-success target at this SINR.

    With ``error_model=None`` this reduces to the hard-threshold rule of
    :meth:`RateTable.best_rate`.  With a model it reproduces the paper's
    trace methodology: "the highest 802.11g bitrate at which 90 % of
    packets are received successfully".
    """
    check_probability("target_success", target_success)
    if error_model is None:
        return table.best_rate(sinr_linear)
    best = 0.0
    for step in table.steps:
        success = error_model.packet_success(sinr_linear, step, packet_bits)
        if success >= target_success:
            best = step.rate_bps
    return best
