"""PHY substrate: Shannon rates, noise, propagation, discrete 802.11 rates.

This package implements everything below the SIC model:

* :mod:`repro.phy.shannon` — Shannon capacity and the feasible-bitrate
  expressions (paper Eqs. 1-2) that the whole analysis is built on;
* :mod:`repro.phy.noise` — thermal noise power;
* :mod:`repro.phy.pathloss` — log-distance propagation with optional
  log-normal shadowing (path-loss exponent alpha = 4 in the paper);
* :mod:`repro.phy.rates` — the discrete 802.11b/g/n bitrate tables used
  by the discrete-rate evaluation (paper Fig. 14b);
* :mod:`repro.phy.error` — a SINR -> packet-success-probability model
  used to emulate the paper's "highest bitrate with 90 % packet success"
  trace methodology.
"""

from repro.phy.error import (
    PacketErrorModel,
    packet_success_probability,
)
from repro.phy.noise import thermal_noise_watts
from repro.phy.pathloss import (
    FreeSpace,
    LogDistancePathLoss,
    PropagationModel,
    received_power,
    rss_from_distances,
)
from repro.phy.rates import (
    DOT11B,
    DOT11G,
    DOT11N_20MHZ,
    RateTable,
    best_discrete_rate,
)
from repro.phy.shannon import (
    Channel,
    airtime,
    shannon_rate,
    sinr,
)

__all__ = [
    "Channel",
    "DOT11B",
    "DOT11G",
    "DOT11N_20MHZ",
    "FreeSpace",
    "LogDistancePathLoss",
    "PacketErrorModel",
    "PropagationModel",
    "RateTable",
    "airtime",
    "best_discrete_rate",
    "packet_success_probability",
    "received_power",
    "rss_from_distances",
    "shannon_rate",
    "sinr",
    "thermal_noise_watts",
]
