"""Shannon capacity, SINR and airtime — the paper's Eqs. (1), (2), (5).

The entire back-of-the-envelope analysis rests on the AWGN Shannon
formula: a link whose signal of interest arrives with power ``s`` while
interference ``i`` and noise ``n0`` are present supports at most

    r_hat = B * log2(1 + s / (i + n0))        [bits/s]

Paper notation (Table 1) maps onto this module as:

=============  =====================================================
``B``          ``Channel.bandwidth_hz``
``N0``         ``Channel.noise_w`` (total in-band noise power, watts)
``S_j^i``      the ``signal_w`` / ``interference_w`` arguments
``r_hat``      :func:`shannon_rate`
``L``          the ``packet_bits`` argument of :func:`airtime`
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.util.units import db_to_linear
from repro.util.validation import check_positive

ArrayLike = Union[float, np.ndarray]

#: Default channel bandwidth: a 20 MHz 802.11g channel.
DEFAULT_BANDWIDTH_HZ = 20e6

#: Default in-band noise power in watts (about -101 dBm, the thermal
#: noise floor of a 20 MHz channel plus a modest noise figure).
DEFAULT_NOISE_W = 1e-13


@dataclass(frozen=True)
class Channel:
    """A wireless channel: bandwidth ``B`` and noise power ``N0``.

    Immutable so that one channel object can be shared by a whole
    experiment without aliasing surprises.
    """

    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    noise_w: float = DEFAULT_NOISE_W

    def __post_init__(self) -> None:
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_positive("noise_w", self.noise_w)

    def rate(self, signal_w: ArrayLike, interference_w: ArrayLike = 0.0) -> ArrayLike:
        """Best feasible bitrate for a signal under given interference.

        This is paper Eq. (1) when ``interference_w`` is the competing
        signal and Eq. (2) when it is zero (post-cancellation).
        """
        return shannon_rate(self.bandwidth_hz, signal_w, interference_w, self.noise_w)

    def snr(self, signal_w: ArrayLike) -> ArrayLike:
        """Linear signal-to-noise ratio of a received power."""
        return sinr(signal_w, 0.0, self.noise_w)

    def airtime(self, packet_bits: float, signal_w: ArrayLike,
                interference_w: ArrayLike = 0.0) -> ArrayLike:
        """Time to send ``packet_bits`` at the best feasible rate."""
        return airtime(packet_bits, self.rate(signal_w, interference_w))


def sinr(signal_w: ArrayLike, interference_w: ArrayLike, noise_w: float) -> ArrayLike:
    """Signal-to-interference-plus-noise ratio (linear)."""
    noise_w = check_positive("noise_w", noise_w)
    sig = np.asarray(signal_w, dtype=float)
    inter = np.asarray(interference_w, dtype=float)
    if np.any(sig < 0.0) or np.any(inter < 0.0):
        raise ValueError("signal and interference powers must be non-negative")
    result = sig / (inter + noise_w)
    return float(result) if np.ndim(result) == 0 else result


def shannon_rate(bandwidth_hz: float, signal_w: ArrayLike,
                 interference_w: ArrayLike = 0.0,
                 noise_w: float = DEFAULT_NOISE_W) -> ArrayLike:
    """Highest feasible bitrate ``B log2(1 + S / (I + N0))`` in bits/s.

    With ``interference_w > 0`` this is the paper's Eq. (1): the rate at
    which the *stronger* of two colliding signals can still be decoded
    while the weaker one is treated as noise.  With ``interference_w == 0``
    it is Eq. (2): the rate of the weaker signal after perfect
    cancellation of the stronger one.
    """
    bandwidth_hz = check_positive("bandwidth_hz", bandwidth_hz)
    ratio = sinr(signal_w, interference_w, noise_w)
    result = bandwidth_hz * np.log2(1.0 + np.asarray(ratio, dtype=float))
    return float(result) if np.ndim(result) == 0 else result


def airtime(packet_bits: float, rate_bps: ArrayLike) -> ArrayLike:
    """Transmission time of a packet of ``packet_bits`` at ``rate_bps``.

    A rate of zero (signal power zero) yields infinite airtime, which is
    the honest answer and composes correctly with ``min``/``max`` in the
    scenario analysis.
    """
    packet_bits = check_positive("packet_bits", packet_bits)
    rate = np.asarray(rate_bps, dtype=float)
    if np.any(rate < 0.0):
        raise ValueError("rate must be non-negative")
    with np.errstate(divide="ignore"):
        result = np.where(rate > 0.0, packet_bits / rate, np.inf)
    return float(result) if np.ndim(result) == 0 else result


def rate_from_snr_db(bandwidth_hz: float, snr_db: ArrayLike) -> ArrayLike:
    """Convenience: Shannon rate from an SNR given in dB."""
    check_positive("bandwidth_hz", bandwidth_hz)
    snr_linear = np.asarray(db_to_linear(snr_db), dtype=float)
    result = bandwidth_hz * np.log2(1.0 + snr_linear)
    return float(result) if np.ndim(result) == 0 else result
