"""Practical rate adaptation (ARF) and the slack it leaves.

The paper's stand-alone-SIC analysis assumes every transmitter runs at
the best feasible rate, and then concedes: "one could certainly argue
that a practical bitrate adaptation scheme is unlikely to operate at
the ideal bitrate at all times and there will always be a slack that
SIC can harness.  Although true, this slack is fast disappearing with
... the recent advances in bitrate adaptation."

This module makes that argument measurable.  It implements Auto Rate
Fallback (ARF) — the classic frame-feedback rate-adaptation algorithm
— runs it over a block-fading link, and quantifies the *slack*: the
gap between the rate ARF actually used for each packet and the best
discrete rate the channel momentarily supported.  The adaptation-slack
ablation bench then shows how much extra SIC gain that slack buys, and
how it shrinks as adaptation gets better (faster up-stepping, milder
fading).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.error import PacketErrorModel
from repro.phy.rates import DOT11G, RateTable
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


@dataclass
class ArfRateAdapter:
    """Auto Rate Fallback over a discrete rate table.

    After ``success_threshold`` consecutive successes the rate steps
    up; after ``failure_threshold`` consecutive failures it steps down.
    The classic ARF is (10, 2); modern adaptation is approximated by
    smaller thresholds (reacts faster, wastes less slack).
    """

    table: RateTable = DOT11G
    success_threshold: int = 10
    failure_threshold: int = 2
    _index: int = field(default=0, init=False)
    _successes: int = field(default=0, init=False)
    _failures: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.success_threshold < 1 or self.failure_threshold < 1:
            raise ValueError("thresholds must be >= 1")

    @property
    def current_rate_bps(self) -> float:
        return self.table.steps[self._index].rate_bps

    def record(self, success: bool) -> None:
        """Feed one packet outcome; may move the operating point."""
        if success:
            self._successes += 1
            self._failures = 0
            if (self._successes >= self.success_threshold
                    and self._index < len(self.table) - 1):
                self._index += 1
                self._successes = 0
        else:
            self._failures += 1
            self._successes = 0
            if (self._failures >= self.failure_threshold
                    and self._index > 0):
                self._index -= 1
                self._failures = 0

    def reset(self) -> None:
        self._index = 0
        self._successes = 0
        self._failures = 0


@dataclass(frozen=True)
class AdaptationTrace:
    """Per-packet record of an adaptation run over a fading link."""

    chosen_rate_bps: np.ndarray
    feasible_rate_bps: np.ndarray
    success: np.ndarray

    @property
    def n_packets(self) -> int:
        return int(self.chosen_rate_bps.size)

    @property
    def delivery_ratio(self) -> float:
        if self.n_packets == 0:
            return 0.0
        return float(np.mean(self.success))

    @property
    def mean_slack_fraction(self) -> float:
        """Mean of ``1 - chosen/feasible`` over packets with a feasible
        rate — how much of the momentarily available rate adaptation
        left on the table."""
        usable = self.feasible_rate_bps > 0.0
        if not np.any(usable):
            return 0.0
        ratio = self.chosen_rate_bps[usable] / self.feasible_rate_bps[usable]
        return float(np.mean(np.maximum(0.0, 1.0 - ratio)))

    @property
    def overshoot_fraction(self) -> float:
        """Fraction of packets sent above the momentarily feasible rate
        (these are the losses adaptation pays to probe upward)."""
        if self.n_packets == 0:
            return 0.0
        return float(np.mean(self.chosen_rate_bps
                             > self.feasible_rate_bps))


def run_adaptation(adapter: ArfRateAdapter,
                   sinr_series: Sequence[float],
                   error_model: Optional[PacketErrorModel] = None,
                   packet_bits: float = 12_000.0,
                   rng: SeedLike = None,
                   target_success: float = 0.9) -> AdaptationTrace:
    """Run the adapter over a per-packet SINR series.

    Each packet is sent at the adapter's current rate; its success is a
    Bernoulli draw from the PER model at the packet's true SINR; the
    outcome feeds back into the adapter.  The "feasible" reference per
    packet is the best discrete rate meeting ``target_success`` at that
    SINR (what an oracle adapter would have used).
    """
    check_positive("packet_bits", packet_bits)
    # Constructed inside, never a default argument (lint RPR305).
    error_model = error_model if error_model is not None \
        else PacketErrorModel()
    generator = make_rng(rng)
    chosen: List[float] = []
    feasible: List[float] = []
    success: List[bool] = []
    from repro.phy.rates import best_discrete_rate
    for sinr in sinr_series:
        sinr = float(sinr)
        rate = adapter.current_rate_bps
        step = next(s for s in adapter.table.steps if s.rate_bps == rate)
        p_ok = error_model.packet_success(sinr, step, packet_bits) \
            if sinr > 0.0 else 0.0
        ok = bool(generator.random() < p_ok)
        adapter.record(ok)
        chosen.append(rate)
        feasible.append(best_discrete_rate(
            adapter.table, sinr, error_model=error_model,
            packet_bits=packet_bits, target_success=target_success))
        success.append(ok)
    return AdaptationTrace(
        chosen_rate_bps=np.asarray(chosen),
        feasible_rate_bps=np.asarray(feasible),
        success=np.asarray(success, dtype=bool),
    )


def adaptation_slack_sic_gain(trace_strong: AdaptationTrace,
                              trace_weak: AdaptationTrace,
                              mean_sinr_strong: float,
                              mean_sinr_weak: float,
                              packet_bits: float = 12_000.0) -> float:
    """Mean upload-pair SIC gain when rates come from real adaptation.

    Serial baseline: each packet at the rate its adapter chose.
    Concurrent SIC: feasible for a packet pair when the stronger
    client's *chosen* rate fits under its interference-limited SINR
    (slack absorbing the interference) — then the pair completes in
    ``max`` of the two packet times instead of their sum.

    Mean SINRs are noise-normalised (N0 = 1); per-packet feasibility
    uses the chosen rates against the mean interference level, which is
    the information a scheduler would actually have.
    """
    check_positive("packet_bits", packet_bits)
    n = min(trace_strong.n_packets, trace_weak.n_packets)
    if n == 0:
        return 1.0
    from repro.phy.rates import DOT11G as table  # thresholds in dB
    sinr_int = mean_sinr_strong / (mean_sinr_weak + 1.0)
    limit = table.best_rate(sinr_int)
    gains = []
    for k in range(n):
        r_strong = trace_strong.chosen_rate_bps[k]
        r_weak = trace_weak.chosen_rate_bps[k]
        if r_strong <= 0.0 or r_weak <= 0.0:
            gains.append(1.0)
            continue
        serial = packet_bits / r_strong + packet_bits / r_weak
        if 0.0 < r_strong <= limit:
            concurrent = max(packet_bits / r_strong,
                             packet_bits / r_weak)
            gains.append(max(1.0, serial / concurrent))
        else:
            gains.append(1.0)
    return float(np.mean(gains))
