"""SINR -> packet-success-probability model.

The paper's download-trace methodology picks "the highest 802.11g
bitrate at which 90 % of packets are received successfully".  To emulate
that measurement without the testbed we need a mapping from SINR to
packet success probability per rate step.  We use the standard logistic
(sigmoid-in-dB) approximation of a coded-PHY waterfall curve: success is
~0.5 exactly at the step's SINR threshold and transitions over a couple
of dB, with longer packets shifting the curve slightly right (more bits,
more chances to fail).

The exact curve shape is not load-bearing for the reproduction — only
that it is monotone in SINR and produces a well-defined "90 % rate" a
fraction of a dB above the hard threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.phy.rates import RateStep
from repro.util.units import linear_to_db
from repro.util.validation import check_positive


def packet_success_probability(sinr_db: float, threshold_db: float,
                               steepness_per_db: float = 1.5,
                               packet_bits: float = 12000.0,
                               reference_bits: float = 12000.0) -> float:
    """Logistic packet-success curve.

    ``P = sigmoid(k * (sinr_db - threshold_db - shift))`` where the shift
    grows logarithmically with packet length relative to a 1500-byte
    reference packet.

    >>> packet_success_probability(10.0, 10.0)
    0.5
    >>> packet_success_probability(30.0, 10.0) > 0.999
    True
    """
    check_positive("steepness_per_db", steepness_per_db)
    check_positive("packet_bits", packet_bits)
    check_positive("reference_bits", reference_bits)
    length_shift_db = math.log2(packet_bits / reference_bits) * 0.5
    x = steepness_per_db * (sinr_db - threshold_db - length_shift_db)
    # Clamp to avoid overflow in exp for extreme SINRs.
    if x > 40.0:
        return 1.0
    if x < -40.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


@dataclass(frozen=True)
class PacketErrorModel:
    """A configured success-probability model for a rate table.

    ``steepness_per_db`` controls how sharp the waterfall is; 1.5/dB
    puts the 10 %..90 % transition inside ~3 dB, typical of coded OFDM.
    """

    steepness_per_db: float = 1.5
    reference_bits: float = 12000.0

    def __post_init__(self) -> None:
        check_positive("steepness_per_db", self.steepness_per_db)
        check_positive("reference_bits", self.reference_bits)

    def packet_success(self, sinr_linear: float, step: RateStep,
                       packet_bits: float = 12000.0) -> float:
        """Success probability of one packet at ``step`` under ``sinr``."""
        if sinr_linear < 0.0:
            raise ValueError("SINR must be non-negative")
        if sinr_linear == 0.0:
            return 0.0
        sinr_db = float(linear_to_db(sinr_linear))
        return packet_success_probability(
            sinr_db,
            step.min_sinr_db,
            steepness_per_db=self.steepness_per_db,
            packet_bits=packet_bits,
            reference_bits=self.reference_bits,
        )

    def sinr_db_for_success(self, step: RateStep, target: float,
                            packet_bits: float = 12000.0) -> float:
        """Invert the curve: SINR (dB) needed to hit ``target`` success."""
        if not 0.0 < target < 1.0:
            raise ValueError("target must be strictly between 0 and 1")
        length_shift_db = math.log2(packet_bits / self.reference_bits) * 0.5
        logit = math.log(target / (1.0 - target))
        return step.min_sinr_db + length_shift_db + logit / self.steepness_per_db
