"""Small-scale fading: block-fading channel time series.

The paper's analysis freezes every link at a single RSS.  Real links
fade: the received power wobbles around its mean from packet to packet.
This module provides the standard block-fading abstractions needed by
the rate-adaptation study (see :mod:`repro.phy.adaptation`):

* :func:`rayleigh_power_series` — Rayleigh (NLOS) fading: per-block
  power is exponentially distributed around the mean;
* :func:`rician_power_series` — Rician (LOS + scatter) fading with a
  K-factor, spanning Rayleigh (K = 0) to near-static (large K);
* :class:`BlockFadingLink` — a link whose per-packet SINR is drawn from
  one of the above around a configurable mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_nonnegative, check_positive


def rayleigh_power_series(mean_power: float, n_blocks: int,
                          rng: SeedLike = None) -> np.ndarray:
    """Per-block received powers under Rayleigh fading.

    The envelope is Rayleigh, so the power is exponential with the
    given mean — the classic worst-case NLOS model.
    """
    check_positive("mean_power", mean_power)
    if n_blocks < 0:
        raise ValueError("n_blocks must be >= 0")
    generator = make_rng(rng)
    return generator.exponential(mean_power, size=n_blocks)


def rician_power_series(mean_power: float, k_factor: float,
                        n_blocks: int, rng: SeedLike = None) -> np.ndarray:
    """Per-block received powers under Rician fading.

    ``k_factor`` is the linear ratio of line-of-sight to scattered
    power; 0 reduces to Rayleigh, large values approach a static link.
    The series is normalised so its expected power equals
    ``mean_power``.
    """
    check_positive("mean_power", mean_power)
    check_nonnegative("k_factor", k_factor)
    if n_blocks < 0:
        raise ValueError("n_blocks must be >= 0")
    generator = make_rng(rng)
    # Complex gaussian scatter plus a deterministic LOS component.
    sigma2 = mean_power / (2.0 * (k_factor + 1.0))
    los = np.sqrt(k_factor * mean_power / (k_factor + 1.0))
    i = generator.normal(los, np.sqrt(sigma2), size=n_blocks)
    q = generator.normal(0.0, np.sqrt(sigma2), size=n_blocks)
    return i * i + q * q


@dataclass(frozen=True)
class BlockFadingLink:
    """A link with a mean SINR and per-packet fading around it."""

    mean_sinr_linear: float
    k_factor: float = 0.0     # 0 = Rayleigh

    def __post_init__(self) -> None:
        check_positive("mean_sinr_linear", self.mean_sinr_linear)
        check_nonnegative("k_factor", self.k_factor)

    def sinr_series(self, n_blocks: int, rng: SeedLike = None) -> np.ndarray:
        """Per-packet linear SINRs (noise-normalised powers)."""
        if self.k_factor == 0.0:
            return rayleigh_power_series(self.mean_sinr_linear, n_blocks,
                                         rng)
        return rician_power_series(self.mean_sinr_linear, self.k_factor,
                                   n_blocks, rng)
