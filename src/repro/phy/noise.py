"""Thermal noise power.

The paper treats ``N0`` as a single in-band noise power.  We compute it
from first principles (k·T·B) plus a receiver noise figure so that the
propagation-based experiments (Figs. 6, 11, 13, 14) use a physically
sensible noise floor for a 20 MHz 802.11 channel (about -101 dBm at a
7 dB noise figure).
"""

from __future__ import annotations

from repro.util.units import db_to_linear
from repro.util.validation import check_nonnegative, check_positive

#: Boltzmann constant, J/K.
BOLTZMANN_J_PER_K = 1.380649e-23

#: Standard reference temperature, kelvin.
REFERENCE_TEMPERATURE_K = 290.0

#: Typical consumer-WLAN receiver noise figure, dB.
DEFAULT_NOISE_FIGURE_DB = 7.0


def thermal_noise_watts(bandwidth_hz: float,
                        noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
                        temperature_k: float = REFERENCE_TEMPERATURE_K) -> float:
    """In-band noise power ``k * T * B * NF`` in watts.

    >>> import math
    >>> n = thermal_noise_watts(20e6, noise_figure_db=0.0)
    >>> math.isclose(n, 1.380649e-23 * 290.0 * 20e6)
    True
    """
    bandwidth_hz = check_positive("bandwidth_hz", bandwidth_hz)
    temperature_k = check_positive("temperature_k", temperature_k)
    noise_figure_db = check_nonnegative("noise_figure_db", noise_figure_db)
    return (BOLTZMANN_J_PER_K * temperature_k * bandwidth_hz
            * db_to_linear(noise_figure_db))
