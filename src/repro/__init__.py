"""repro — reproduction of "Successive Interference Cancellation: a
Back-of-the-Envelope Perspective" (HotNets 2010 / IEEE TMC).

Subpackages
-----------
``repro.util``        units, CDFs, RNG plumbing, result containers
``repro.phy``         Shannon rates, propagation, discrete 802.11 rates
``repro.topology``    geometry, node types, scenario generators
``repro.sic``         SIC receiver model, capacity and airtime analysis
``repro.techniques``  pairing, power reduction, multirate, packing
``repro.scheduling``  blossom matching and the SIC-aware scheduler
``repro.sim``         event-driven WLAN simulator (cross-validation)
``repro.traces``      synthetic trace substrate (Duke-trace stand-in)
``repro.experiments`` one module per paper figure + Monte-Carlo engine

Quickstart
----------
>>> from repro.phy import Channel
>>> from repro.sic import capacity_gain
>>> ch = Channel(bandwidth_hz=20e6, noise_w=1e-13)
>>> gain = capacity_gain(ch, 1e-9, 1e-9)   # two equal-RSS signals
>>> gain > 1.0
True
"""

__version__ = "1.0.0"

from repro.phy.shannon import Channel
from repro.sic.receiver import SicReceiver, Transmission

__all__ = ["Channel", "SicReceiver", "Transmission", "__version__"]
