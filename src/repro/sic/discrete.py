"""Discrete-bitrate SIC analysis (paper Section 7, "Discrete bitrates").

The ideal-rate analysis of :mod:`repro.sic.scenarios` assumes every
transmitter hits the Shannon rate exactly.  Real 802.11 radios pick
from a small discrete set, leaving *slack* between the achieved and the
feasible rate — slack that SIC can harness.  The paper evaluates this
by "replacing the logarithmic terms in the expressions presented in
Section 3.2 with the actual bitrates observed in experiments".

This module does the same replacement.  The inputs are the measured (or
emulated) discrete rates of a two transmitter-receiver pair scenario:

=================  ===================================================
``clean_1``        best discrete rate of T1 -> R1, no interference
``clean_2``        best discrete rate of T2 -> R2, no interference
``interfered_11``  best discrete rate of T1's signal at R1 while T2
                   transmits (used when R1 captures through T2)
``interfered_21``  best discrete rate at which R2 could decode *T1's*
                   signal while T2 transmits (the SIC feasibility limit
                   at R2)
``interfered_22``  / ``interfered_12`` — the mirrored quantities
=================  ===================================================

plus the four RSS/SNR values for case classification.  A rate of 0.0
means "no discrete rate works" (link unusable in that condition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sic.scenarios import PairCase, PairRss, classify_pair_case
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class DiscretePairRates:
    """Measured discrete rates of a two-pair scenario (bits/s)."""

    clean_1: float
    clean_2: float
    interfered_11: float
    interfered_21: float
    interfered_22: float
    interfered_12: float

    def __post_init__(self) -> None:
        for name in ("clean_1", "clean_2", "interfered_11", "interfered_21",
                     "interfered_22", "interfered_12"):
            check_nonnegative(name, getattr(self, name))


@dataclass(frozen=True)
class DiscretePairScenario:
    """Result of the discrete-rate analysis of one two-pair topology."""

    case: PairCase
    sic_feasible: bool
    z_serial_s: float
    z_sic_s: float

    @property
    def gain(self) -> float:
        """``Z_{-SIC} / Z_{+SIC}``, 1.0 when SIC is unused or loses."""
        if not self.sic_feasible or self.z_sic_s <= 0.0:
            return 1.0
        return max(1.0, self.z_serial_s / self.z_sic_s)


def _time(packet_bits: float, rate_bps: float) -> float:
    return packet_bits / rate_bps if rate_bps > 0.0 else float("inf")


def evaluate_discrete_pair(packet_bits: float, rss: PairRss,
                           rates: DiscretePairRates) -> DiscretePairScenario:
    """Discrete-rate version of
    :func:`repro.sic.scenarios.evaluate_pair_scenario`.

    The case taxonomy still comes from the RSS values; the times and
    feasibility checks use the measured rates.  Feasibility with
    discrete rates: the interfering transmitter's *chosen* rate must not
    exceed the rate at which the SIC receiver can decode that signal
    under its own partner's interference.
    """
    check_positive("packet_bits", packet_bits)
    case = classify_pair_case(rss)

    z_serial = (_time(packet_bits, rates.clean_1)
                + _time(packet_bits, rates.clean_2))

    if case is PairCase.BOTH_CAPTURE:
        return DiscretePairScenario(case, sic_feasible=False,
                                    z_serial_s=z_serial, z_sic_s=z_serial)

    if case is PairCase.SIC_AT_R1:
        mirrored = evaluate_discrete_pair(
            packet_bits,
            PairRss(s11=rss.s22, s12=rss.s21, s21=rss.s12, s22=rss.s11),
            DiscretePairRates(
                clean_1=rates.clean_2, clean_2=rates.clean_1,
                interfered_11=rates.interfered_22,
                interfered_21=rates.interfered_12,
                interfered_22=rates.interfered_11,
                interfered_12=rates.interfered_21,
            ))
        return DiscretePairScenario(case, mirrored.sic_feasible,
                                    mirrored.z_serial_s, mirrored.z_sic_s)

    if case is PairCase.SIC_AT_R2:
        # T1 transmits at its discrete interference-limited rate for R1.
        # R2 can SIC only if it can decode T1's signal at that rate.
        t1_rate = rates.interfered_11
        feasible = 0.0 < t1_rate <= rates.interfered_21
        z_sic = max(_time(packet_bits, t1_rate),
                    _time(packet_bits, rates.clean_2))
        return DiscretePairScenario(case, feasible, z_serial, z_sic)

    # Case D: both links run at their clean discrete rates; each
    # receiver must decode the *other* transmitter at its clean rate
    # despite its own partner's interference.
    feasible_r2 = 0.0 < rates.clean_1 <= rates.interfered_21
    feasible_r1 = 0.0 < rates.clean_2 <= rates.interfered_12
    feasible = feasible_r1 and feasible_r2
    z_sic = max(_time(packet_bits, rates.clean_1),
                _time(packet_bits, rates.clean_2))
    return DiscretePairScenario(case, feasible, z_serial, z_sic)


def discrete_upload_pair_gain(table, packet_bits: float,
                              snr1_linear: float,
                              snr2_linear: float) -> float:
    """Upload-pair SIC gain when rates come from a discrete table.

    Noise-normalised inputs (linear SNRs).  This is the granularity
    ablation's workhorse: the paper argues the SIC slack shrinks as the
    rate set gets finer (802.11b -> g -> n), because a coarse table
    wastes more of the clean channel in the serial baseline *and*
    absorbs more interference for free in the concurrent case.

    Returns ``Z_serial / Z_sic`` clipped at 1; 1.0 when either link has
    no feasible discrete rate in the configuration that needs it.
    """
    check_positive("packet_bits", packet_bits)
    if snr1_linear < 0.0 or snr2_linear < 0.0:
        raise ValueError("SNRs must be non-negative")
    strong, weak = max(snr1_linear, snr2_linear), min(snr1_linear,
                                                      snr2_linear)
    r_strong_clean = table.best_rate(strong)
    r_weak_clean = table.best_rate(weak)
    if r_strong_clean <= 0.0 or r_weak_clean <= 0.0:
        return 1.0
    z_serial = packet_bits / r_strong_clean + packet_bits / r_weak_clean
    r_strong_int = table.best_rate(strong / (weak + 1.0))
    if r_strong_int <= 0.0:
        return 1.0
    z_sic = max(packet_bits / r_strong_int, packet_bits / r_weak_clean)
    if z_sic <= 0.0:
        return 1.0
    return max(1.0, z_serial / z_sic)


def discrete_packing_gain(packet_bits: float,
                          scenario: DiscretePairScenario,
                          rates: DiscretePairRates,
                          max_fast_packets: int = 8) -> float:
    """Packing gain for a discrete-rate two-pair scenario.

    Packet packing widens SIC's applicability beyond the strict
    feasibility of :func:`evaluate_discrete_pair`: the transmitter whose
    signal must be cancelled may *lower its bitrate* so the SIC receiver
    can decode it ("the packet at the lower bitrate", Section 5.4), and
    its partner amortises the resulting long airtime by sending several
    packets back to back.  Under discrete rates the slow-down is often
    free — the serving link's own interfered rate and the rate decodable
    at the SIC receiver frequently fall in the same rate bin — which is
    exactly why the paper finds packing far more effective in Fig. 14b
    than in Fig. 14a.

    In case B (SIC at R2), T1's rate must satisfy both receivers:
    ``r1 <= interfered_11`` (R1 still captures it through T2's
    interference) and ``r1 <= interfered_21`` (R2 can decode it before
    cancelling).  T2 then rides clean at ``clean_2`` and packs packets
    under T1's airtime.  The gain baseline is the serial time of the
    same packet mix at clean rates; the MAC never packs when it loses,
    so the result is clipped at the plain-SIC gain (>= 1).
    """
    check_positive("packet_bits", packet_bits)
    if scenario.case is PairCase.SIC_AT_R2:
        rate_1 = min(rates.interfered_11, rates.interfered_21)
        rate_2 = rates.clean_2
    elif scenario.case is PairCase.SIC_AT_R1:
        rate_1 = rates.clean_1
        rate_2 = min(rates.interfered_22, rates.interfered_12)
    elif scenario.case is PairCase.SIC_AT_BOTH:
        # Each transmitter must be decodable at the other receiver too.
        rate_1 = min(rates.clean_1, rates.interfered_21)
        rate_2 = min(rates.clean_2, rates.interfered_12)
    else:
        return scenario.gain  # both capture: no SIC involved
    if (rate_1 <= 0.0 or rate_2 <= 0.0
            or rates.clean_1 <= 0.0 or rates.clean_2 <= 0.0):
        return scenario.gain
    t1, t2 = packet_bits / rate_1, packet_bits / rate_2
    (t_slow, slow_clean), (t_fast, fast_clean) = sorted(
        [(t1, rates.clean_1), (t2, rates.clean_2)], reverse=True)
    k = max(1, min(max_fast_packets, int(t_slow // t_fast)))
    packed_time = max(t_slow, k * t_fast)
    serial = packet_bits / slow_clean + k * (packet_bits / fast_clean)
    if packed_time <= 0.0:
        return scenario.gain
    return max(scenario.gain, 1.0, serial / packed_time)
