"""The two-user rate region (paper Fig. 2, after Tse & Viswanath).

With SIC, two transmitters sharing a receiver achieve the *pentagon*
multiple-access region

    r1 <= C1,   r2 <= C2,   r1 + r2 <= C_sum

where ``C_i = B log2(1 + S_i/N0)`` and ``C_sum = B log2(1 + (S1+S2)/N0)``.
The two corners of the dominant face are the two decode orders
(:func:`repro.sic.capacity.rate_region_corners`); the face between them
is reached by time sharing.  Without SIC only one transmitter can be
active at a time, so the achievable region is the *TDMA triangle* under
the segment from ``(C1, 0)`` to ``(0, C2)``.

This module builds both regions explicitly, tests point membership, and
quantifies the SIC area advantage — the geometric version of the
capacity-gain story in Figs. 2-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.phy.shannon import Channel, shannon_rate
from repro.util.validation import check_nonnegative, check_positive

Point = Tuple[float, float]


@dataclass(frozen=True)
class TwoUserRegion:
    """The SIC pentagon and the TDMA triangle for one power pair."""

    c1: float
    c2: float
    c_sum: float

    def __post_init__(self) -> None:
        check_positive("c1", self.c1)
        check_positive("c2", self.c2)
        check_positive("c_sum", self.c_sum)
        if not (max(self.c1, self.c2) <= self.c_sum <= self.c1 + self.c2
                + 1e-9):
            raise ValueError(
                "inconsistent region: need max(C1, C2) <= C_sum <= C1 + C2")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def pentagon_vertices(self) -> List[Point]:
        """Counter-clockwise vertices of the SIC region.

        ``(0,0) -> (C1,0) -> corner A -> corner B -> (0,C2)`` where the
        corners are the two decode orders.  When ``C_sum == C1 + C2``
        (no interference coupling) the two corners coincide with the
        rectangle corner and the pentagon degenerates gracefully.
        """
        corner_a = (self.c1, self.c_sum - self.c1)   # 2 decoded first
        corner_b = (self.c_sum - self.c2, self.c2)   # 1 decoded first
        return [(0.0, 0.0), (self.c1, 0.0), corner_a, corner_b,
                (0.0, self.c2)]

    def tdma_vertices(self) -> List[Point]:
        """Vertices of the no-SIC time-sharing triangle."""
        return [(0.0, 0.0), (self.c1, 0.0), (0.0, self.c2)]

    def contains(self, r1: float, r2: float, slack: float = 1e-9) -> bool:
        """Is the rate pair achievable with SIC?"""
        check_nonnegative("r1", r1)
        check_nonnegative("r2", r2)
        return (r1 <= self.c1 + slack and r2 <= self.c2 + slack
                and r1 + r2 <= self.c_sum + slack)

    def tdma_contains(self, r1: float, r2: float,
                      slack: float = 1e-9) -> bool:
        """Is the rate pair achievable by time sharing without SIC?"""
        check_nonnegative("r1", r1)
        check_nonnegative("r2", r2)
        return r1 / self.c1 + r2 / self.c2 <= 1.0 + slack

    @staticmethod
    def _polygon_area(vertices: List[Point]) -> float:
        """Shoelace formula (vertices in order)."""
        area = 0.0
        n = len(vertices)
        for k in range(n):
            x1, y1 = vertices[k]
            x2, y2 = vertices[(k + 1) % n]
            area += x1 * y2 - x2 * y1
        return abs(area) / 2.0

    @property
    def pentagon_area(self) -> float:
        return self._polygon_area(self.pentagon_vertices())

    @property
    def tdma_area(self) -> float:
        return self._polygon_area(self.tdma_vertices())

    @property
    def area_advantage(self) -> float:
        """SIC region area over TDMA region area (>= 1)."""
        return self.pentagon_area / self.tdma_area

    # ------------------------------------------------------------------
    # Boundaries
    # ------------------------------------------------------------------

    def dominant_face(self, n_points: int = 11) -> List[Point]:
        """Points along the sum-rate face (time-sharing the corners)."""
        if n_points < 2:
            raise ValueError("need at least two points")
        (x_a, y_a) = (self.c1, self.c_sum - self.c1)
        (x_b, y_b) = (self.c_sum - self.c2, self.c2)
        return [
            (x_a + (x_b - x_a) * k / (n_points - 1),
             y_a + (y_b - y_a) * k / (n_points - 1))
            for k in range(n_points)
        ]

    def max_equal_rate(self) -> float:
        """The symmetric rate: largest r with (r, r) in the region."""
        return min(self.c1, self.c2, self.c_sum / 2.0)

    def tdma_max_equal_rate(self) -> float:
        """The symmetric rate achievable without SIC."""
        return self.c1 * self.c2 / (self.c1 + self.c2)


def two_user_region(channel: Channel, s1_w: float,
                    s2_w: float) -> TwoUserRegion:
    """Build the region from received powers (the Fig. 2 construction)."""
    check_positive("s1_w", s1_w)
    check_positive("s2_w", s2_w)
    b, n0 = channel.bandwidth_hz, channel.noise_w
    return TwoUserRegion(
        c1=float(shannon_rate(b, s1_w, 0.0, n0)),
        c2=float(shannon_rate(b, s2_w, 0.0, n0)),
        c_sum=float(shannon_rate(b, s1_w + s2_w, 0.0, n0)),
    )
