"""Two transmitters to two different receivers — paper Section 3.2.

With four RSS variables (``S_j^i`` = RSS of transmitter i at receiver j)
the paper enumerates four cases by which signal dominates at each
receiver (Fig. 5):

* case A — each receiver's own signal is stronger: capture suffices,
  SIC is not needed;
* case B — R1 captures, R2 needs SIC to peel off T1's stronger signal;
* case C — mirror image of B;
* case D — both receivers need SIC.

For each case this module computes SIC feasibility (the bitrate of the
interfering transmitter must be decodable at the SIC receiver) and the
completion times with and without SIC (Eqs. 7-9).  The per-topology
entry point :func:`evaluate_pair_scenario` is what the Fig. 6 and
Fig. 11b Monte-Carlo sweeps call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.validation import check_positive


class PairCase(enum.Enum):
    """Which receivers see their own signal dominated (Fig. 5)."""

    BOTH_CAPTURE = "a"        # S11 > S12 and S22 > S21
    SIC_AT_R2 = "b"           # S11 > S12 and S22 < S21
    SIC_AT_R1 = "c"           # S11 < S12 and S22 > S21
    SIC_AT_BOTH = "d"         # S11 < S12 and S22 < S21


@dataclass(frozen=True)
class PairRss:
    """The four received signal strengths of a two-pair topology.

    ``s_jk`` is the RSS of transmitter k at receiver j, in watts
    (paper notation ``S_j^k``).
    """

    s11: float
    s12: float
    s21: float
    s22: float

    def __post_init__(self) -> None:
        for name in ("s11", "s12", "s21", "s22"):
            check_positive(name, getattr(self, name))


@dataclass(frozen=True)
class PairScenario:
    """Result of analysing one two-pair topology."""

    case: PairCase
    sic_feasible: bool
    z_serial_s: float
    z_sic_s: float

    @property
    def gain(self) -> float:
        """``Z_{-SIC} / Z_{+SIC}``, clipped at 1 when SIC is not used.

        SIC is only engaged when it is feasible *and* beats serial
        transmission; otherwise the MAC falls back to serial and the
        gain is exactly 1 (the paper's "no gain" bucket).
        """
        if not self.sic_feasible or self.z_sic_s <= 0.0:
            return 1.0
        return max(1.0, self.z_serial_s / self.z_sic_s)


def classify_pair_case(rss: PairRss) -> PairCase:
    """Assign a topology to one of the four Fig. 5 cases."""
    r1_captures = rss.s11 > rss.s12
    r2_captures = rss.s22 > rss.s21
    if r1_captures and r2_captures:
        return PairCase.BOTH_CAPTURE
    if r1_captures:
        return PairCase.SIC_AT_R2
    if r2_captures:
        return PairCase.SIC_AT_R1
    return PairCase.SIC_AT_BOTH


def _mirror(rss: PairRss) -> PairRss:
    """Swap the roles of the two pairs (case C -> case B)."""
    return PairRss(s11=rss.s22, s12=rss.s21, s21=rss.s12, s22=rss.s11)


def evaluate_pair_scenario(channel: Channel, packet_bits: float,
                           rss: PairRss) -> PairScenario:
    """Analyse one topology: case, SIC feasibility, Z with/without SIC.

    Each transmitter has exactly one packet of ``packet_bits`` for its
    own receiver; transmitters pick the best feasible bitrate for their
    role (the paper's ideal-rate-adaptation assumption).
    """
    check_positive("packet_bits", packet_bits)
    case = classify_pair_case(rss)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    # The serial baseline is the same in every case: each link runs
    # alone at its clean rate (Eq. 8).
    t1_clean = airtime(packet_bits, shannon_rate(b, rss.s11, 0.0, n0))
    t2_clean = airtime(packet_bits, shannon_rate(b, rss.s22, 0.0, n0))
    z_serial = t1_clean + t2_clean

    if case is PairCase.BOTH_CAPTURE:
        # SIC plays no role; the MAC gain attributable to SIC is nil.
        return PairScenario(case, sic_feasible=False,
                            z_serial_s=z_serial, z_sic_s=z_serial)

    if case is PairCase.SIC_AT_R1:
        mirrored = evaluate_pair_scenario(channel, packet_bits, _mirror(rss))
        return PairScenario(case, mirrored.sic_feasible,
                            mirrored.z_serial_s, mirrored.z_sic_s)

    if case is PairCase.SIC_AT_R2:
        # T1 -> R1 needs no SIC but runs interference-limited; R2 must
        # first decode T1 at T1's chosen rate, then its own signal
        # rides clean (Eq. 7).  Feasibility: T1's rate, optimal for R1,
        # must also be decodable at R2:
        #   S21 / (S22 + N0)  >  S11 / (S12 + N0).
        sinr_t1_at_r2 = rss.s21 / (rss.s22 + n0)
        sinr_t1_at_r1 = rss.s11 / (rss.s12 + n0)
        feasible = sinr_t1_at_r2 > sinr_t1_at_r1
        t1_interfered = airtime(packet_bits,
                                shannon_rate(b, rss.s11, rss.s12, n0))
        z_sic = max(t1_interfered, t2_clean)
        return PairScenario(case, feasible, z_serial, z_sic)

    # Case D: SIC at both receivers.  Each link then runs at its clean
    # rate (Eq. 9), but each receiver must be able to decode the other
    # transmitter at that clean rate:
    #   at R2:  S21 / (S22 + N0) > S11 / N0
    #   at R1:  S12 / (S11 + N0) > S22 / N0
    feasible_r2 = rss.s21 / (rss.s22 + n0) > rss.s11 / n0
    feasible_r1 = rss.s12 / (rss.s11 + n0) > rss.s22 / n0
    feasible = feasible_r1 and feasible_r2
    z_sic = max(t1_clean, t2_clean)
    return PairScenario(case, feasible, z_serial, z_sic)
