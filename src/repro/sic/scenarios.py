"""Two transmitters to two different receivers — paper Section 3.2.

With four RSS variables (``S_j^i`` = RSS of transmitter i at receiver j)
the paper enumerates four cases by which signal dominates at each
receiver (Fig. 5):

* case A — each receiver's own signal is stronger: capture suffices,
  SIC is not needed;
* case B — R1 captures, R2 needs SIC to peel off T1's stronger signal;
* case C — mirror image of B;
* case D — both receivers need SIC.

For each case this module computes SIC feasibility (the bitrate of the
interfering transmitter must be decodable at the SIC receiver) and the
completion times with and without SIC (Eqs. 7-9).  The per-topology
entry point :func:`evaluate_pair_scenario` is what the Fig. 6 and
Fig. 11b Monte-Carlo sweeps call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.validation import check_positive


class PairCase(enum.Enum):
    """Which receivers see their own signal dominated (Fig. 5)."""

    BOTH_CAPTURE = "a"        # S11 > S12 and S22 > S21
    SIC_AT_R2 = "b"           # S11 > S12 and S22 < S21
    SIC_AT_R1 = "c"           # S11 < S12 and S22 > S21
    SIC_AT_BOTH = "d"         # S11 < S12 and S22 < S21


@dataclass(frozen=True)
class PairRss:
    """The four received signal strengths of a two-pair topology.

    ``s_jk`` is the RSS of transmitter k at receiver j, in watts
    (paper notation ``S_j^k``).
    """

    s11: float
    s12: float
    s21: float
    s22: float

    def __post_init__(self) -> None:
        for name in ("s11", "s12", "s21", "s22"):
            check_positive(name, getattr(self, name))


@dataclass(frozen=True)
class PairScenario:
    """Result of analysing one two-pair topology."""

    case: PairCase
    sic_feasible: bool
    z_serial_s: float
    z_sic_s: float

    @property
    def gain(self) -> float:
        """``Z_{-SIC} / Z_{+SIC}``, clipped at 1 when SIC is not used.

        SIC is only engaged when it is feasible *and* beats serial
        transmission; otherwise the MAC falls back to serial and the
        gain is exactly 1 (the paper's "no gain" bucket).
        """
        if not self.sic_feasible or self.z_sic_s <= 0.0:
            return 1.0
        return max(1.0, self.z_serial_s / self.z_sic_s)


def classify_pair_case(rss: PairRss) -> PairCase:
    """Assign a topology to one of the four Fig. 5 cases."""
    r1_captures = rss.s11 > rss.s12
    r2_captures = rss.s22 > rss.s21
    if r1_captures and r2_captures:
        return PairCase.BOTH_CAPTURE
    if r1_captures:
        return PairCase.SIC_AT_R2
    if r2_captures:
        return PairCase.SIC_AT_R1
    return PairCase.SIC_AT_BOTH


def _mirror(rss: PairRss) -> PairRss:
    """Swap the roles of the two pairs (case C -> case B)."""
    return PairRss(s11=rss.s22, s12=rss.s21, s21=rss.s12, s22=rss.s11)


def evaluate_pair_scenario(channel: Channel, packet_bits: float,
                           rss: PairRss) -> PairScenario:
    """Analyse one topology: case, SIC feasibility, Z with/without SIC.

    Each transmitter has exactly one packet of ``packet_bits`` for its
    own receiver; transmitters pick the best feasible bitrate for their
    role (the paper's ideal-rate-adaptation assumption).
    """
    check_positive("packet_bits", packet_bits)
    case = classify_pair_case(rss)
    b, n0 = channel.bandwidth_hz, channel.noise_w

    # The serial baseline is the same in every case: each link runs
    # alone at its clean rate (Eq. 8).
    t1_clean = airtime(packet_bits, shannon_rate(b, rss.s11, 0.0, n0))
    t2_clean = airtime(packet_bits, shannon_rate(b, rss.s22, 0.0, n0))
    z_serial = t1_clean + t2_clean

    if case is PairCase.BOTH_CAPTURE:
        # SIC plays no role; the MAC gain attributable to SIC is nil.
        return PairScenario(case, sic_feasible=False,
                            z_serial_s=z_serial, z_sic_s=z_serial)

    if case is PairCase.SIC_AT_R1:
        mirrored = evaluate_pair_scenario(channel, packet_bits, _mirror(rss))
        return PairScenario(case, mirrored.sic_feasible,
                            mirrored.z_serial_s, mirrored.z_sic_s)

    if case is PairCase.SIC_AT_R2:
        # T1 -> R1 needs no SIC but runs interference-limited; R2 must
        # first decode T1 at T1's chosen rate, then its own signal
        # rides clean (Eq. 7).  Feasibility: T1's rate, optimal for R1,
        # must also be decodable at R2:
        #   S21 / (S22 + N0)  >  S11 / (S12 + N0).
        sinr_t1_at_r2 = rss.s21 / (rss.s22 + n0)
        sinr_t1_at_r1 = rss.s11 / (rss.s12 + n0)
        feasible = sinr_t1_at_r2 > sinr_t1_at_r1
        t1_interfered = airtime(packet_bits,
                                shannon_rate(b, rss.s11, rss.s12, n0))
        z_sic = max(t1_interfered, t2_clean)
        return PairScenario(case, feasible, z_serial, z_sic)

    # Case D: SIC at both receivers.  Each link then runs at its clean
    # rate (Eq. 9), but each receiver must be able to decode the other
    # transmitter at that clean rate:
    #   at R2:  S21 / (S22 + N0) > S11 / N0
    #   at R1:  S12 / (S11 + N0) > S22 / N0
    feasible_r2 = rss.s21 / (rss.s22 + n0) > rss.s11 / n0
    feasible_r1 = rss.s12 / (rss.s11 + n0) > rss.s22 / n0
    feasible = feasible_r1 and feasible_r2
    z_sic = max(t1_clean, t2_clean)
    return PairScenario(case, feasible, z_serial, z_sic)


#: ``case_codes`` value -> :class:`PairCase`, in Fig. 5 letter order.
CASE_ORDER = (PairCase.BOTH_CAPTURE, PairCase.SIC_AT_R2,
              PairCase.SIC_AT_R1, PairCase.SIC_AT_BOTH)


@dataclass(frozen=True)
class PairScenarioBatch:
    """Array-of-structs result of analysing N two-pair topologies.

    ``case_codes[k]`` indexes :data:`CASE_ORDER` (0='a' .. 3='d'); the
    remaining arrays mirror the fields of :class:`PairScenario`
    element-wise.
    """

    case_codes: np.ndarray     # uint8 in {0, 1, 2, 3}
    sic_feasible: np.ndarray   # bool
    z_serial_s: np.ndarray
    z_sic_s: np.ndarray

    def __len__(self) -> int:
        return self.case_codes.shape[0]

    @property
    def gains(self) -> np.ndarray:
        """Element-wise ``Z_{-SIC} / Z_{+SIC}``, clipped exactly like
        :attr:`PairScenario.gain`."""
        usable = self.sic_feasible & (self.z_sic_s > 0.0)
        safe_z_sic = np.where(usable, self.z_sic_s, 1.0)
        ratio = np.where(usable, self.z_serial_s / safe_z_sic, 1.0)
        return np.maximum(1.0, ratio)

    def case_fractions(self) -> Dict[str, float]:
        """Fig. 5 case mix plus the feasible share (keys 'a'..'d',
        'feasible'), matching the scalar engine's bookkeeping."""
        n = len(self)
        counts = np.bincount(self.case_codes, minlength=len(CASE_ORDER))
        fractions = {case.value: int(count) / n
                     for case, count in zip(CASE_ORDER, counts)}
        fractions["feasible"] = int(np.count_nonzero(self.sic_feasible)) / n
        return fractions

    def scenario(self, k: int) -> PairScenario:
        """Materialise element ``k`` as a scalar :class:`PairScenario`."""
        return PairScenario(case=CASE_ORDER[int(self.case_codes[k])],
                            sic_feasible=bool(self.sic_feasible[k]),
                            z_serial_s=float(self.z_serial_s[k]),
                            z_sic_s=float(self.z_sic_s[k]))


def classify_pair_cases_batch(s11: np.ndarray, s12: np.ndarray,
                              s21: np.ndarray, s22: np.ndarray) -> np.ndarray:
    """Vectorised :func:`classify_pair_case`: uint8 codes into
    :data:`CASE_ORDER`."""
    r1_captures = s11 > s12
    r2_captures = s22 > s21
    codes = np.full(np.broadcast(s11, s22).shape, 3, dtype=np.uint8)
    codes[r1_captures & r2_captures] = 0
    codes[r1_captures & ~r2_captures] = 1
    codes[~r1_captures & r2_captures] = 2
    return codes


def evaluate_pair_scenarios_batch(channel: Channel, packet_bits: float,
                                  s11: np.ndarray, s12: np.ndarray,
                                  s21: np.ndarray, s22: np.ndarray
                                  ) -> PairScenarioBatch:
    """Vectorised :func:`evaluate_pair_scenario` over RSS arrays.

    Applies the same case-by-case feasibility conditions and Eq. 7-9
    completion times with boolean masks instead of branches; element
    ``k`` of the result equals
    ``evaluate_pair_scenario(channel, packet_bits, PairRss(s11[k], ...))``
    up to floating-point associativity (the arithmetic is identical).
    """
    check_positive("packet_bits", packet_bits)
    s11, s12, s21, s22 = np.broadcast_arrays(
        *(np.asarray(s, dtype=float) for s in (s11, s12, s21, s22)))
    for name, values in (("s11", s11), ("s12", s12),
                         ("s21", s21), ("s22", s22)):
        if np.any(values <= 0.0):
            raise ValueError(f"{name} values must be positive")
    b, n0 = channel.bandwidth_hz, channel.noise_w
    codes = classify_pair_cases_batch(s11, s12, s21, s22)

    t1_clean = np.asarray(
        airtime(packet_bits, shannon_rate(b, s11, 0.0, n0)), dtype=float)
    t2_clean = np.asarray(
        airtime(packet_bits, shannon_rate(b, s22, 0.0, n0)), dtype=float)
    z_serial = t1_clean + t2_clean

    # Interference-limited airtimes used by cases B and C (Eq. 7).
    t1_interfered = np.asarray(
        airtime(packet_bits, shannon_rate(b, s11, s12, n0)), dtype=float)
    t2_interfered = np.asarray(
        airtime(packet_bits, shannon_rate(b, s22, s21, n0)), dtype=float)

    # Per-case feasibility (the scalar function's three conditions).
    feasible_b = s21 / (s22 + n0) > s11 / (s12 + n0)
    feasible_c = s12 / (s11 + n0) > s22 / (s21 + n0)
    feasible_d = ((s21 / (s22 + n0) > s11 / n0)
                  & (s12 / (s11 + n0) > s22 / n0))

    z_sic = np.select(
        [codes == 0, codes == 1, codes == 2],
        [z_serial,
         np.maximum(t1_interfered, t2_clean),
         np.maximum(t2_interfered, t1_clean)],
        default=np.maximum(t1_clean, t2_clean))
    feasible = np.select(
        [codes == 0, codes == 1, codes == 2],
        [np.zeros_like(feasible_b), feasible_b, feasible_c],
        default=feasible_d)
    return PairScenarioBatch(case_codes=codes, sic_feasible=feasible,
                             z_serial_s=z_serial, z_sic_s=z_sic)


def evaluate_pair_scenario_batch(channel: Channel, packet_bits: float,
                                 s11: np.ndarray, s12: np.ndarray,
                                 s21: np.ndarray, s22: np.ndarray
                                 ) -> PairScenarioBatch:
    """Array-in/array-out :func:`evaluate_pair_scenario` over RSS pairs.

    The entry point the batched architecture sweeps
    (:mod:`repro.architectures`) call: element ``k`` of the result
    equals ``evaluate_pair_scenario(channel, packet_bits,
    PairRss(s11[k], s12[k], s21[k], s22[k]))`` — same case codes, same
    feasibility verdicts, bit-identical completion times and gains
    (pinned in ``tests/sic/test_scenarios_batch.py``).  Thin delegating
    wrapper around :func:`evaluate_pair_scenarios_batch`, kept as a
    distinct name so the sweep engines read as scenario-per-element
    maps.
    """
    return evaluate_pair_scenarios_batch(channel, packet_bits,
                                         s11, s12, s21, s22)
