"""General k-signal successive interference cancellation.

The paper restricts itself to "the simpler case of two packets only,
i.e., interference cancellation is performed only once", while noting
that the PHY technique is iterative: decode the strongest, subtract,
decode the next, and so on.  This module implements that general case
— the paper's natural extension — so the library can answer "what
would a third concurrent client buy?":

* :func:`successive_rate_limits` — the feasible bitrate of each of k
  concurrent signals under the descending-power decode order, with
  optional per-cancellation residue;
* :func:`capacity_with_ksic` — the k-user sum capacity, which with
  perfect cancellation telescopes to ``B log2(1 + sum(P)/N0)`` exactly
  as in the two-user identity of Eq. 4;
* :func:`z_ksic_uplink` — completion time of k equal-length packets
  sent concurrently to one receiver;
* :class:`SuccessiveReceiver` — the operational model: given k actual
  transmissions, which packets decode?  The chain stops at the first
  undecodable signal (everything below it is lost), and an optional
  ``max_cancellations`` models hardware that can only peel so many
  layers (``max_cancellations=1`` reproduces the paper's receiver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.sic.receiver import Transmission
from repro.util.validation import check_positive, check_probability


def successive_rate_limits(channel: Channel,
                           powers_w: Sequence[float],
                           cancellation_efficiency: float = 1.0
                           ) -> List[float]:
    """Feasible bitrates of k concurrent signals, input order preserved.

    Signals are decoded strongest-first.  When the i-th strongest is
    decoded, the stronger ones have been cancelled down to their
    residues while all weaker ones still interfere at full power:

        SINR_i = P_i / (sum_residues(stronger) + sum(weaker) + N0)
    """
    check_probability("cancellation_efficiency", cancellation_efficiency)
    if not powers_w:
        return []
    for power in powers_w:
        check_positive("signal power", power)
    order = sorted(range(len(powers_w)), key=lambda i: -powers_w[i])
    residue_factor = 1.0 - cancellation_efficiency
    rates = [0.0] * len(powers_w)
    # Interference from not-yet-decoded (weaker) signals, as exact
    # suffix sums accumulated from the weak end — summing small-to-large
    # avoids the cancellation error of a running subtraction.
    suffix = [0.0] * (len(order) + 1)
    for pos in range(len(order) - 1, -1, -1):
        suffix[pos] = suffix[pos + 1] + powers_w[order[pos]]
    cancelled_residue = 0.0
    for pos, idx in enumerate(order):
        power = powers_w[idx]
        interference = cancelled_residue + suffix[pos + 1]
        rates[idx] = float(shannon_rate(channel.bandwidth_hz, power,
                                        interference, channel.noise_w))
        cancelled_residue += residue_factor * power
    return rates


def capacity_with_ksic(channel: Channel, powers_w: Sequence[float],
                       cancellation_efficiency: float = 1.0) -> float:
    """Sum capacity of k concurrent transmitters under k-SIC.

    With perfect cancellation this telescopes to the single-transmitter
    capacity at the *sum* of the received powers — the k-user
    generalisation of the paper's Eq. 4 identity (verified by a
    property test).
    """
    return sum(successive_rate_limits(channel, powers_w,
                                      cancellation_efficiency))


def z_ksic_uplink(channel: Channel, packet_bits: float,
                  powers_w: Sequence[float],
                  cancellation_efficiency: float = 1.0) -> float:
    """Completion time of k equal-length packets sent concurrently.

    The generalisation of Eq. 6: every packet rides at its successive
    rate limit, and the slot ends when the slowest finishes.
    """
    check_positive("packet_bits", packet_bits)
    if not powers_w:
        return 0.0
    rates = successive_rate_limits(channel, powers_w,
                                   cancellation_efficiency)
    return max(float(airtime(packet_bits, rate)) for rate in rates)


def z_serial_uplink(channel: Channel, packet_bits: float,
                    powers_w: Sequence[float]) -> float:
    """Serial baseline: each packet alone at its clean rate."""
    check_positive("packet_bits", packet_bits)
    return sum(
        float(airtime(packet_bits,
                      shannon_rate(channel.bandwidth_hz, power, 0.0,
                                   channel.noise_w)))
        for power in powers_w)


def ksic_uplink_gain(channel: Channel, packet_bits: float,
                     powers_w: Sequence[float],
                     cancellation_efficiency: float = 1.0) -> float:
    """``Z_serial / Z_ksic`` clipped at 1 (the MAC's actual choice)."""
    if not powers_w:
        return 1.0
    z_sic = z_ksic_uplink(channel, packet_bits, powers_w,
                          cancellation_efficiency)
    if z_sic <= 0.0:
        return 1.0
    return max(1.0, z_serial_uplink(channel, packet_bits, powers_w) / z_sic)


@dataclass(frozen=True)
class SuccessiveOutcome:
    """Which of k concurrent transmissions a receiver recovered."""

    #: Decode status per transmission, in the order given to resolve().
    decoded: Tuple[bool, ...]
    #: Labels of decoded transmissions, strongest-first.
    decode_order: Tuple[str, ...]

    @property
    def decoded_count(self) -> int:
        return sum(self.decoded)

    @property
    def all_decoded(self) -> bool:
        return all(self.decoded) and bool(self.decoded)


@dataclass(frozen=True)
class SuccessiveReceiver:
    """Operational k-SIC receiver.

    ``max_cancellations`` bounds how many layers the hardware can
    subtract: with ``max_cancellations=1`` this is exactly the paper's
    two-signal receiver; ``None`` means unbounded.
    """

    channel: Channel = field(default_factory=Channel)
    max_cancellations: Optional[int] = None
    cancellation_efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_probability("cancellation_efficiency",
                          self.cancellation_efficiency)
        if self.max_cancellations is not None and self.max_cancellations < 0:
            raise ValueError("max_cancellations must be >= 0 or None")

    def resolve(self, transmissions: Sequence[Transmission]
                ) -> SuccessiveOutcome:
        """Run the successive decode chain over concurrent arrivals.

        Strongest-first; the chain aborts at the first signal whose
        bitrate exceeds its SINR limit ("it can not decode [the rest]
        either"), or once the cancellation budget is spent — signals
        after that point are lost.
        """
        if not transmissions:
            return SuccessiveOutcome(decoded=(), decode_order=())
        order = sorted(range(len(transmissions)),
                       key=lambda i: -transmissions[i].power_w)
        decoded = [False] * len(transmissions)
        decode_order: List[str] = []
        residue_factor = 1.0 - self.cancellation_efficiency
        # Same stable suffix-sum scheme as successive_rate_limits, so
        # the operational limits match the analytic rates bit-for-bit.
        suffix = [0.0] * (len(order) + 1)
        for pos in range(len(order) - 1, -1, -1):
            suffix[pos] = suffix[pos + 1] + transmissions[order[pos]].power_w
        cancelled_residue = 0.0
        cancellations = 0
        for position, idx in enumerate(order):
            tx = transmissions[idx]
            interference = cancelled_residue + suffix[position + 1]
            limit = shannon_rate(self.channel.bandwidth_hz, tx.power_w,
                                 interference, self.channel.noise_w)
            if tx.rate_bps > limit:
                break
            decoded[idx] = True
            decode_order.append(tx.label or f"#{idx}")
            if position < len(order) - 1:
                # Need to cancel this signal to reach the next one.
                if (self.max_cancellations is not None
                        and cancellations >= self.max_cancellations):
                    break
                cancellations += 1
                cancelled_residue += residue_factor * tx.power_w
        return SuccessiveOutcome(decoded=tuple(decoded),
                                 decode_order=tuple(decode_order))


def equal_rate_group_powers(channel: Channel, count: int,
                            weakest_snr_linear: float) -> List[float]:
    """RSS levels making all k successive rates equal (strongest first).

    The k-user generalisation of the equal-rate sweet spot: choose
    ``P_k`` for the weakest, then each stronger level so that its
    interference-limited rate matches the weakest's clean rate:

        P_i / (P_{i+1} + ... + P_k + N0) = P_k / N0

    With such a ladder every packet in the group finishes together and
    the group gain approaches k at low SNR.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    check_positive("weakest_snr_linear", weakest_snr_linear)
    n0 = channel.noise_w
    snr = weakest_snr_linear
    powers = [snr * n0]
    interference = snr * n0 + n0
    for _ in range(count - 1):
        power = snr * interference
        powers.append(power)
        interference += power
    powers.reverse()  # strongest first
    return powers
