"""Channel capacity with and without SIC (paper Section 2.3).

Implements and cross-checks the paper's Eqs. (3) and (4) and exposes the
data behind Figs. 2 and 3:

* without SIC only one of the two transmitters can be active, so the
  channel capacity is the better of the two individual Shannon
  capacities (Eq. 3);
* with SIC both are active, the stronger at its interference-limited
  rate, the weaker at its clean rate, and the sum telescopes to the
  capacity of a single transmitter with RSS ``S1 + S2`` (Eq. 4) — the
  algebraic identity the paper highlights, verified by a property test.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.phy.shannon import Channel, shannon_rate

ArrayLike = Union[float, np.ndarray]


def capacity_without_sic(channel: Channel, s1_w: ArrayLike,
                         s2_w: ArrayLike) -> ArrayLike:
    """Eq. 3: the better of the two stand-alone Shannon capacities."""
    c1 = np.asarray(shannon_rate(channel.bandwidth_hz, s1_w, 0.0,
                                 channel.noise_w), dtype=float)
    c2 = np.asarray(shannon_rate(channel.bandwidth_hz, s2_w, 0.0,
                                 channel.noise_w), dtype=float)
    result = np.maximum(c1, c2)
    return float(result) if np.ndim(result) == 0 else result


def capacity_with_sic(channel: Channel, s1_w: ArrayLike,
                      s2_w: ArrayLike) -> ArrayLike:
    """Eq. 4: sum of interference-limited strong rate and clean weak rate.

    Computed as the explicit two-term sum (not the telescoped closed
    form) so that tests can verify the paper's identity
    ``C = B log2(1 + (S1+S2)/N0)`` independently.
    """
    s1 = np.asarray(s1_w, dtype=float)
    s2 = np.asarray(s2_w, dtype=float)
    strong = np.maximum(s1, s2)
    weak = np.minimum(s1, s2)
    strong_rate = np.asarray(
        shannon_rate(channel.bandwidth_hz, strong, weak, channel.noise_w),
        dtype=float)
    weak_rate = np.asarray(
        shannon_rate(channel.bandwidth_hz, weak, 0.0, channel.noise_w),
        dtype=float)
    result = strong_rate + weak_rate
    return float(result) if np.ndim(result) == 0 else result


def capacity_with_sic_closed_form(channel: Channel, s1_w: ArrayLike,
                                  s2_w: ArrayLike) -> ArrayLike:
    """The telescoped form of Eq. 4: ``B log2(1 + (S1 + S2) / N0)``."""
    total = np.asarray(s1_w, dtype=float) + np.asarray(s2_w, dtype=float)
    return shannon_rate(channel.bandwidth_hz, total, 0.0, channel.noise_w)


def capacity_gain(channel: Channel, s1_w: ArrayLike,
                  s2_w: ArrayLike) -> ArrayLike:
    """Relative capacity gain ``C_{+SIC} / C_{-SIC}`` (the Fig. 3 metric).

    Always >= 1: SIC capacity exceeds either individual capacity.
    """
    with_sic = np.asarray(capacity_with_sic(channel, s1_w, s2_w), dtype=float)
    without = np.asarray(capacity_without_sic(channel, s1_w, s2_w), dtype=float)
    result = with_sic / without
    return float(result) if np.ndim(result) == 0 else result


def rate_region_corners(channel: Channel, s1_w: float, s2_w: float) -> dict:
    """The two corner points of the two-user SIC rate region.

    Each corner corresponds to one decode order.  Corner "1-first"
    decodes transmitter 1 while 2 interferes (so r1 is interference
    limited and r2 clean); corner "2-first" the reverse.  The segment
    between the corners is achievable by time sharing.  These corners
    trace the Fig. 2 rate region.
    """
    b, n0 = channel.bandwidth_hz, channel.noise_w
    return {
        "1-first": (
            shannon_rate(b, s1_w, s2_w, n0),  # r1 under interference
            shannon_rate(b, s2_w, 0.0, n0),   # r2 clean
        ),
        "2-first": (
            shannon_rate(b, s1_w, 0.0, n0),   # r1 clean
            shannon_rate(b, s2_w, s1_w, n0),  # r2 under interference
        ),
    }
