"""Packet completion-time ("airtime") analysis — paper Section 3 and 4.1.

MAC-layer throughput is about finishing *pending packets* quickly, not
about saturating Shannon capacity; this module implements the paper's
completion-time expressions:

* Eq. 5  — ``z_serial_same_receiver``: two packets to one receiver, sent
  back-to-back without SIC;
* Eq. 6  — ``z_sic_same_receiver``: the same two packets sent
  concurrently with SIC (the slower transmission dominates);
* Eq. 10 — ``z_serial_download``: two packets to one client from two
  wire-connected APs, both sent by whichever AP is stronger;
* Fig. 4 metric — ``sic_gain_same_receiver`` = Eq. 5 / Eq. 6;
* Fig. 8 metric — ``download_gain_two_aps_one_client`` = Eq. 10 / Eq. 6.

All functions broadcast over numpy arrays so the heatmap experiments can
evaluate whole SNR grids in one call.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.util.validation import check_positive

ArrayLike = Union[float, np.ndarray]


def z_serial_same_receiver(channel: Channel, packet_bits: float,
                           s1_w: ArrayLike, s2_w: ArrayLike) -> ArrayLike:
    """Eq. 5: serial completion time of two packets at one receiver.

    Each transmitter uses its best clean (no-interference) rate; MAC
    overheads such as backoff are discounted, as in the paper.
    """
    check_positive("packet_bits", packet_bits)
    t1 = airtime(packet_bits,
                 shannon_rate(channel.bandwidth_hz, s1_w, 0.0, channel.noise_w))
    t2 = airtime(packet_bits,
                 shannon_rate(channel.bandwidth_hz, s2_w, 0.0, channel.noise_w))
    result = np.asarray(t1, dtype=float) + np.asarray(t2, dtype=float)
    return float(result) if np.ndim(result) == 0 else result


def z_sic_same_receiver(channel: Channel, packet_bits: float,
                        s1_w: ArrayLike, s2_w: ArrayLike) -> ArrayLike:
    """Eq. 6: concurrent completion time with SIC at one receiver.

    The stronger signal is decoded first at its interference-limited
    rate (Eq. 1); the weaker rides at its clean rate (Eq. 2).  Both
    packets finish when the slower of the two does.
    """
    check_positive("packet_bits", packet_bits)
    s1 = np.asarray(s1_w, dtype=float)
    s2 = np.asarray(s2_w, dtype=float)
    strong = np.maximum(s1, s2)
    weak = np.minimum(s1, s2)
    t_strong = airtime(
        packet_bits,
        shannon_rate(channel.bandwidth_hz, strong, weak, channel.noise_w))
    t_weak = airtime(
        packet_bits,
        shannon_rate(channel.bandwidth_hz, weak, 0.0, channel.noise_w))
    result = np.maximum(np.asarray(t_strong, dtype=float),
                        np.asarray(t_weak, dtype=float))
    return float(result) if np.ndim(result) == 0 else result


def sic_gain_same_receiver(channel: Channel, packet_bits: float,
                           s1_w: ArrayLike, s2_w: ArrayLike) -> ArrayLike:
    """Fig. 4 metric: ``Z_{-SIC} / Z_{+SIC}`` for the common receiver.

    Peaks when both concurrent transmissions achieve the same bitrate,
    i.e. when ``S_strong / (S_weak + N0) == S_weak / N0`` — the stronger
    SNR roughly the square of the weaker (twice in dB).
    """
    serial = np.asarray(
        z_serial_same_receiver(channel, packet_bits, s1_w, s2_w), dtype=float)
    concurrent = np.asarray(
        z_sic_same_receiver(channel, packet_bits, s1_w, s2_w), dtype=float)
    result = serial / concurrent
    return float(result) if np.ndim(result) == 0 else result


def optimal_weak_power_ratio(channel: Channel, strong_w: ArrayLike) -> ArrayLike:
    """The weaker RSS that equalises the two SIC bitrates (Section 3.1).

    Solves ``S_strong / (x + N0) = x / N0`` for x:
    ``x = (-N0 + sqrt(N0^2 + 4 S_strong N0)) / 2``.

    At this operating point one packet gets "a free full ride".
    """
    n0 = channel.noise_w
    strong = np.asarray(strong_w, dtype=float)
    if np.any(strong <= 0.0):
        raise ValueError("strong RSS must be positive")
    x = 0.5 * (-n0 + np.sqrt(n0 * n0 + 4.0 * strong * n0))
    return float(x) if np.ndim(x) == 0 else x


def z_sic_same_receiver_best_order(channel: Channel, packet_bits: float,
                                   s1_w: ArrayLike,
                                   s2_w: ArrayLike) -> ArrayLike:
    """Ablation: Eq. 6 with the decode order chosen per topology.

    The paper always decodes the stronger signal first.  The other
    corner of the rate region — decode the *weaker* first, treating the
    stronger as interference, then the stronger rides clean — is also
    achievable, and for some RSS pairs it finishes sooner.  This
    function takes the better of the two orders; the ablation bench
    quantifies how much the fixed-order convention leaves behind.
    """
    check_positive("packet_bits", packet_bits)
    s1 = np.asarray(s1_w, dtype=float)
    s2 = np.asarray(s2_w, dtype=float)
    strong = np.maximum(s1, s2)
    weak = np.minimum(s1, s2)
    # Order A (paper): strong interference-limited, weak clean.
    t_a = np.maximum(
        np.asarray(airtime(packet_bits,
                           shannon_rate(channel.bandwidth_hz, strong, weak,
                                        channel.noise_w)), dtype=float),
        np.asarray(airtime(packet_bits,
                           shannon_rate(channel.bandwidth_hz, weak, 0.0,
                                        channel.noise_w)), dtype=float))
    # Order B: weak decoded first under the strong signal's
    # interference, strong clean afterwards.
    t_b = np.maximum(
        np.asarray(airtime(packet_bits,
                           shannon_rate(channel.bandwidth_hz, weak, strong,
                                        channel.noise_w)), dtype=float),
        np.asarray(airtime(packet_bits,
                           shannon_rate(channel.bandwidth_hz, strong, 0.0,
                                        channel.noise_w)), dtype=float))
    result = np.minimum(t_a, t_b)
    return float(result) if np.ndim(result) == 0 else result


def z_sic_same_receiver_imperfect(channel: Channel, packet_bits: float,
                                  s1_w: ArrayLike, s2_w: ArrayLike,
                                  cancellation_efficiency: float
                                  ) -> ArrayLike:
    """Ablation: Eq. 6 under imperfect cancellation.

    A fraction ``1 - efficiency`` of the stronger signal survives
    subtraction and degrades the weaker signal's SINR — the effect the
    paper cites from [13] as "sharply cutting down SIC's usefulness".
    """
    check_positive("packet_bits", packet_bits)
    if not 0.0 <= cancellation_efficiency <= 1.0:
        raise ValueError("cancellation_efficiency must be in [0, 1]")
    s1 = np.asarray(s1_w, dtype=float)
    s2 = np.asarray(s2_w, dtype=float)
    strong = np.maximum(s1, s2)
    weak = np.minimum(s1, s2)
    residue = (1.0 - cancellation_efficiency) * strong
    t_strong = airtime(
        packet_bits,
        shannon_rate(channel.bandwidth_hz, strong, weak, channel.noise_w))
    t_weak = airtime(
        packet_bits,
        shannon_rate(channel.bandwidth_hz, weak, residue, channel.noise_w))
    result = np.maximum(np.asarray(t_strong, dtype=float),
                        np.asarray(t_weak, dtype=float))
    return float(result) if np.ndim(result) == 0 else result


def z_serial_download(channel: Channel, packet_bits: float,
                      s1_w: ArrayLike, s2_w: ArrayLike) -> ArrayLike:
    """Eq. 10: both download packets sent serially by the stronger AP.

    The wired backbone lets either AP deliver either packet, so the
    no-SIC baseline sends both through whichever AP has the better RSS.
    """
    check_positive("packet_bits", packet_bits)
    best = np.maximum(np.asarray(s1_w, dtype=float),
                      np.asarray(s2_w, dtype=float))
    rate = shannon_rate(channel.bandwidth_hz, best, 0.0, channel.noise_w)
    result = 2.0 * np.asarray(airtime(packet_bits, rate), dtype=float)
    return float(result) if np.ndim(result) == 0 else result


def download_gain_two_aps_one_client(channel: Channel, packet_bits: float,
                                     s1_w: ArrayLike,
                                     s2_w: ArrayLike) -> ArrayLike:
    """Fig. 8 metric: Eq. 10 / Eq. 6 for the two-AP download scenario.

    Unlike the upload case this can dip *below* 1 (SIC concurrency can
    lose to simply letting the stronger AP send both packets), which is
    why the paper calls the download gains "quite limited".
    """
    serial = np.asarray(
        z_serial_download(channel, packet_bits, s1_w, s2_w), dtype=float)
    concurrent = np.asarray(
        z_sic_same_receiver(channel, packet_bits, s1_w, s2_w), dtype=float)
    result = serial / concurrent
    return float(result) if np.ndim(result) == 0 else result
