"""SIC core: the paper's primary contribution, as a library.

* :mod:`repro.sic.receiver` — the two-signal SIC receiver model:
  decode-order rules, feasibility, optional imperfect cancellation;
* :mod:`repro.sic.capacity` — channel capacity with/without SIC
  (paper Eqs. 3-4, Figs. 2-3);
* :mod:`repro.sic.airtime` — packet completion-time analysis for the
  building-block scenarios (paper Eqs. 5-10, Figs. 4 and 8);
* :mod:`repro.sic.scenarios` — the four-case taxonomy of two
  transmitters to two receivers (paper Fig. 5, Fig. 6 Monte-Carlo).
"""

from repro.sic.capacity import (
    capacity_gain,
    capacity_with_sic,
    capacity_without_sic,
    rate_region_corners,
)
from repro.sic.receiver import (
    CollisionOutcome,
    SicReceiver,
    Transmission,
)
from repro.sic.airtime import (
    download_gain_two_aps_one_client,
    sic_gain_same_receiver,
    z_serial_download,
    z_serial_same_receiver,
    z_sic_same_receiver,
)
from repro.sic.ksic import (
    SuccessiveReceiver,
    capacity_with_ksic,
    ksic_uplink_gain,
    successive_rate_limits,
)
from repro.sic.regions import TwoUserRegion, two_user_region
from repro.sic.scenarios import (
    PairCase,
    PairScenario,
    PairScenarioBatch,
    classify_pair_case,
    classify_pair_cases_batch,
    evaluate_pair_scenario,
    evaluate_pair_scenarios_batch,
)

__all__ = [
    "CollisionOutcome",
    "PairCase",
    "PairScenario",
    "PairScenarioBatch",
    "SicReceiver",
    "SuccessiveReceiver",
    "Transmission",
    "TwoUserRegion",
    "capacity_with_ksic",
    "capacity_gain",
    "capacity_with_sic",
    "capacity_without_sic",
    "classify_pair_case",
    "classify_pair_cases_batch",
    "download_gain_two_aps_one_client",
    "evaluate_pair_scenario",
    "evaluate_pair_scenarios_batch",
    "ksic_uplink_gain",
    "rate_region_corners",
    "successive_rate_limits",
    "two_user_region",
    "sic_gain_same_receiver",
    "z_serial_download",
    "z_serial_same_receiver",
    "z_sic_same_receiver",
]
