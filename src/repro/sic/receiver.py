"""The two-signal SIC receiver model.

This is the operational heart of the reproduction: given two concurrent
transmissions (power + chosen bitrate each), decide what a SIC-capable
receiver actually decodes.  The rules implement Section 2.2 of the
paper:

1. the receiver first attempts the *stronger* signal, treating the
   weaker as interference — it succeeds iff the stronger transmitter's
   bitrate does not exceed ``B log2(1 + S_strong / (S_weak + N0))``
   (Eq. 1);
2. on success it reconstructs and subtracts the stronger signal and
   attempts the weaker one against the residue — with perfect
   cancellation the weaker succeeds iff its bitrate does not exceed
   ``B log2(1 + S_weak / N0)`` (Eq. 2);
3. if step 1 fails, *neither* packet is decodable ("it can not decode
   T2's signal either").

Imperfect cancellation (the extension the paper cites from [13]) is
modelled by a ``cancellation_efficiency`` in [0, 1]: a fraction
``1 - efficiency`` of the stronger signal's power survives subtraction
and adds to the noise seen by the weaker signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.phy.shannon import Channel, shannon_rate
from repro.util.validation import check_nonnegative, check_positive, check_probability


@dataclass(frozen=True)
class Transmission:
    """One arriving transmission: received power and chosen bitrate."""

    power_w: float
    rate_bps: float
    label: str = ""

    def __post_init__(self) -> None:
        check_positive("power_w", self.power_w)
        check_positive("rate_bps", self.rate_bps)


@dataclass(frozen=True)
class CollisionOutcome:
    """What a receiver decoded out of a two-packet collision."""

    decoded_strong: bool
    decoded_weak: bool
    strong: Transmission
    weak: Transmission
    #: Highest bitrate at which the stronger signal was decodable (Eq. 1).
    strong_rate_limit_bps: float = field(default=0.0)
    #: Highest bitrate at which the weaker signal was decodable (Eq. 2,
    #: including any cancellation residue).
    weak_rate_limit_bps: float = field(default=0.0)

    @property
    def decoded_count(self) -> int:
        return int(self.decoded_strong) + int(self.decoded_weak)

    @property
    def collision_resolved(self) -> bool:
        """True iff both packets were recovered (the SIC success case)."""
        return self.decoded_strong and self.decoded_weak


@dataclass(frozen=True)
class SicReceiver:
    """A receiver that can cancel at most one interfering signal.

    ``sic_enabled=False`` turns the model into a plain capture receiver
    (decode the strongest signal only), which is the paper's no-SIC
    baseline.  ``cancellation_efficiency=1.0`` is the paper's "perfect
    cancellation" assumption.
    """

    channel: Channel = field(default_factory=Channel)
    sic_enabled: bool = True
    cancellation_efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_probability("cancellation_efficiency", self.cancellation_efficiency)

    # ------------------------------------------------------------------
    # Rate limits (the feasibility side: Eqs. 1 and 2)
    # ------------------------------------------------------------------

    def residual_power_w(self, cancelled_power_w: float) -> float:
        """Interference power left over after cancelling a signal."""
        check_nonnegative("cancelled_power_w", cancelled_power_w)
        return (1.0 - self.cancellation_efficiency) * cancelled_power_w

    def strong_rate_limit(self, strong_w: float, weak_w: float) -> float:
        """Eq. 1: max bitrate of the stronger signal under interference."""
        return shannon_rate(self.channel.bandwidth_hz, strong_w, weak_w,
                            self.channel.noise_w)

    def weak_rate_limit(self, strong_w: float, weak_w: float) -> float:
        """Eq. 2 (generalised): max bitrate of the weaker signal after
        cancelling the stronger one, accounting for any residue."""
        residue = self.residual_power_w(strong_w)
        return shannon_rate(self.channel.bandwidth_hz, weak_w, residue,
                            self.channel.noise_w)

    def feasible_rate_pair(self, power_a_w: float,
                           power_b_w: float) -> Tuple[float, float]:
        """Best feasible (rate_a, rate_b) for two concurrent signals.

        Returned in the order of the arguments.  The stronger signal gets
        the interference-limited Eq. 1 rate, the weaker the
        post-cancellation Eq. 2 rate.  Ties are broken by treating
        ``power_a_w`` as the stronger signal.
        """
        check_positive("power_a_w", power_a_w)
        check_positive("power_b_w", power_b_w)
        if power_a_w >= power_b_w:
            return (self.strong_rate_limit(power_a_w, power_b_w),
                    self.weak_rate_limit(power_a_w, power_b_w))
        rate_b, rate_a = self.feasible_rate_pair(power_b_w, power_a_w)
        return rate_a, rate_b

    # ------------------------------------------------------------------
    # Decoding actual transmissions (the operational side)
    # ------------------------------------------------------------------

    def decode_single(self, tx: Transmission,
                      interference_w: float = 0.0) -> bool:
        """Can a lone transmission be decoded under given interference?"""
        check_nonnegative("interference_w", interference_w)
        limit = shannon_rate(self.channel.bandwidth_hz, tx.power_w,
                             interference_w, self.channel.noise_w)
        return tx.rate_bps <= limit

    def resolve_collision(self, a: Transmission,
                          b: Transmission) -> CollisionOutcome:
        """Apply the SIC decode procedure to two concurrent arrivals.

        Equal powers are broken in favour of ``a`` as the "stronger"
        signal; at exactly equal power the Eq. 1 SINR is < 1 so the
        tie-break never changes which packets decode.
        """
        strong, weak = (a, b) if a.power_w >= b.power_w else (b, a)
        strong_limit = self.strong_rate_limit(strong.power_w, weak.power_w)
        decoded_strong = strong.rate_bps <= strong_limit
        decoded_weak = False
        weak_limit = 0.0
        if decoded_strong and self.sic_enabled:
            weak_limit = self.weak_rate_limit(strong.power_w, weak.power_w)
            decoded_weak = weak.rate_bps <= weak_limit
        return CollisionOutcome(
            decoded_strong=decoded_strong,
            decoded_weak=decoded_weak,
            strong=strong,
            weak=weak,
            strong_rate_limit_bps=strong_limit,
            weak_rate_limit_bps=weak_limit,
        )

    def can_resolve_both(self, power_a_w: float, rate_a_bps: float,
                         power_b_w: float, rate_b_bps: float) -> bool:
        """Convenience predicate: would both packets decode?"""
        outcome = self.resolve_collision(
            Transmission(power_a_w, rate_a_bps, "a"),
            Transmission(power_b_w, rate_b_bps, "b"),
        )
        return outcome.collision_resolved
