"""Scenario topology generators.

Each generator produces the node placement of one building-block
scenario from the paper:

* :func:`random_pair_topology` — the Monte-Carlo setup of Section 3.2 /
  Fig. 6: two transmitters a fixed *range* apart, each receiver placed
  uniformly at random within range of its transmitter;
* :func:`random_uplink_clients` — N clients around one AP (Sections
  3.1, 5, 6: the upload scenario);
* :func:`ewlan_grid` — the enterprise WLAN of Fig. 7a: a grid of wired
  APs with clients scattered among them;
* :func:`residential_row` — the apartment row of Fig. 7b: one AP per
  home, clients confined to their own home's AP;
* :func:`mesh_chain` — the multihop chain A->C->D->E of Section 4.3
  with a long-short-long hop structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.topology.geometry import (
    Point,
    random_point_in_disk,
    random_points_in_rect,
)
from repro.topology.nodes import AccessPoint, Client, Radio
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_in_range, check_positive

#: Receivers are never placed closer than this to their transmitter, to
#: keep path-loss models out of the near field.
MIN_LINK_DISTANCE_M = 1.0


@dataclass(frozen=True)
class PairTopology:
    """Two transmitter-receiver pairs (the Fig. 5 / Fig. 6 scenario)."""

    t1: Radio
    r1: Radio
    t2: Radio
    r2: Radio

    @property
    def nodes(self) -> Tuple[Radio, Radio, Radio, Radio]:
        return (self.t1, self.r1, self.t2, self.r2)


def random_pair_topology(range_m: float, rng: SeedLike = None,
                         separation_m: float = None) -> PairTopology:
    """Random two-pair placement following the paper's Monte-Carlo recipe.

    "We fix the positions of the transmitters separated by a certain
    range.  The receivers are then placed randomly within the range of
    their transmitters."

    ``separation_m`` defaults to ``range_m`` (transmitters exactly one
    range apart, the paper's setup).
    """
    check_positive("range_m", range_m)
    if separation_m is None:
        separation_m = range_m
    check_positive("separation_m", separation_m)
    generator = make_rng(rng)
    t1_pos = Point(0.0, 0.0)
    t2_pos = Point(separation_m, 0.0)
    r1_pos = random_point_in_disk(t1_pos, range_m, generator,
                                  min_radius_m=MIN_LINK_DISTANCE_M)
    r2_pos = random_point_in_disk(t2_pos, range_m, generator,
                                  min_radius_m=MIN_LINK_DISTANCE_M)
    return PairTopology(
        t1=Radio("T1", t1_pos),
        r1=Radio("R1", r1_pos),
        t2=Radio("T2", t2_pos),
        r2=Radio("R2", r2_pos),
    )


@dataclass(frozen=True)
class UplinkTopology:
    """One AP and a set of backlogged clients (the upload scenario)."""

    ap: AccessPoint
    clients: Tuple[Client, ...]


def random_uplink_clients(n_clients: int, cell_radius_m: float,
                          rng: SeedLike = None,
                          min_distance_m: float = MIN_LINK_DISTANCE_M,
                          ap_name: str = "AP1") -> UplinkTopology:
    """``n_clients`` clients uniform in a disk cell around one AP."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    check_positive("cell_radius_m", cell_radius_m)
    generator = make_rng(rng)
    ap = AccessPoint(ap_name, Point(0.0, 0.0))
    clients = tuple(
        Client(
            f"C{i + 1}",
            random_point_in_disk(ap.position, cell_radius_m, generator,
                                 min_radius_m=min_distance_m),
            associated_ap=ap_name,
        )
        for i in range(n_clients)
    )
    return UplinkTopology(ap=ap, clients=clients)


@dataclass(frozen=True)
class WlanTopology:
    """Multiple APs plus clients (enterprise or residential)."""

    aps: Tuple[AccessPoint, ...]
    clients: Tuple[Client, ...]

    def clients_of(self, ap_name: str) -> List[Client]:
        return [c for c in self.clients if c.associated_ap == ap_name]


def ewlan_grid(ap_rows: int, ap_cols: int, ap_spacing_m: float,
               clients_per_ap: int, rng: SeedLike = None) -> WlanTopology:
    """Enterprise WLAN: grid of wired APs, clients scattered uniformly.

    Clients associate to their *nearest* AP (the enterprise setting lets
    a client use any AP, and nearest is best — the observation the paper
    uses to rule out SIC for the two-clients-two-APs EWLAN case).
    """
    if ap_rows < 1 or ap_cols < 1:
        raise ValueError("need at least one AP")
    if clients_per_ap < 0:
        raise ValueError("clients_per_ap must be non-negative")
    check_positive("ap_spacing_m", ap_spacing_m)
    generator = make_rng(rng)
    aps = tuple(
        AccessPoint(f"AP{r * ap_cols + c + 1}",
                    Point(c * ap_spacing_m, r * ap_spacing_m))
        for r in range(ap_rows)
        for c in range(ap_cols)
    )
    width = max(ap_cols - 1, 1) * ap_spacing_m
    height = max(ap_rows - 1, 1) * ap_spacing_m
    n_clients = clients_per_ap * len(aps)
    positions = random_points_in_rect(n_clients, width, height, generator)
    clients = []
    for i, pos in enumerate(positions):
        nearest = min(aps, key=lambda ap: ap.position.distance_to(pos))
        clients.append(Client(f"C{i + 1}", pos, associated_ap=nearest.name))
    return WlanTopology(aps=aps, clients=tuple(clients))


def residential_row(n_homes: int, home_width_m: float,
                    clients_per_home: int, rng: SeedLike = None) -> WlanTopology:
    """Residential WLANs: a row of homes, one (WPA-locked) AP per home.

    Unlike the enterprise case, each client is bound to *its own home's*
    AP even when a neighbour's AP is closer — the restriction that,
    per Section 4.2, "strangely provides some opportunities for SIC".
    """
    if n_homes < 1:
        raise ValueError("need at least one home")
    if clients_per_home < 0:
        raise ValueError("clients_per_home must be non-negative")
    check_positive("home_width_m", home_width_m)
    generator = make_rng(rng)
    aps = []
    clients = []
    for h in range(n_homes):
        left = h * home_width_m
        ap_x = left + generator.uniform(0.2, 0.8) * home_width_m
        ap = AccessPoint(f"AP{h + 1}", Point(ap_x, generator.uniform(2.0, 8.0)))
        aps.append(ap)
        for k in range(clients_per_home):
            pos = Point(left + generator.uniform(0.0, home_width_m),
                        generator.uniform(0.0, 10.0))
            clients.append(Client(f"H{h + 1}C{k + 1}", pos,
                                  associated_ap=ap.name))
    return WlanTopology(aps=tuple(aps), clients=tuple(clients))


@dataclass(frozen=True)
class MeshChain:
    """A linear multihop chain of mesh radios."""

    nodes: Tuple[Radio, ...]

    def hops(self) -> List[Tuple[Radio, Radio]]:
        return list(zip(self.nodes, self.nodes[1:]))


def mesh_chain(hop_lengths_m: List[float]) -> MeshChain:
    """A mesh chain with the given hop lengths along a line.

    ``mesh_chain([40, 10, 40])`` builds the long-short-long A->C->D->E
    pattern of Section 4.3 that is "a perfect recipe for SIC at C".
    """
    if not hop_lengths_m:
        raise ValueError("need at least one hop")
    for length in hop_lengths_m:
        check_in_range("hop length", length, low=MIN_LINK_DISTANCE_M)
    names = [chr(ord("A") + i) for i in range(len(hop_lengths_m) + 1)]
    x = 0.0
    nodes = [Radio(names[0], Point(0.0, 0.0))]
    for name, length in zip(names[1:], hop_lengths_m):
        x += length
        nodes.append(Radio(name, Point(x, 0.0)))
    return MeshChain(nodes=tuple(nodes))
