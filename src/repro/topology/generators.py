"""Scenario topology generators.

Each generator produces the node placement of one building-block
scenario from the paper:

* :func:`random_pair_topology` — the Monte-Carlo setup of Section 3.2 /
  Fig. 6: two transmitters a fixed *range* apart, each receiver placed
  uniformly at random within range of its transmitter;
* :func:`random_uplink_clients` — N clients around one AP (Sections
  3.1, 5, 6: the upload scenario);
* :func:`ewlan_grid` — the enterprise WLAN of Fig. 7a: a grid of wired
  APs with clients scattered among them;
* :func:`residential_row` — the apartment row of Fig. 7b: one AP per
  home, clients confined to their own home's AP;
* :func:`mesh_chain` — the multihop chain A->C->D->E of Section 4.3
  with a long-short-long hop structure.

The Monte-Carlo sweeps draw the first two scenarios tens of thousands
of times, so each also has a batched counterpart
(:func:`random_pair_topologies`, :func:`random_uplink_client_batch`)
that samples N placements as NumPy arrays in one shot.  The batched
samplers consume the generator's uniform stream in exactly the order
the scalar ones do, so draw ``k`` of a batch is the same topology the
scalar generator would produce on its ``k``-th call with the same
generator.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.topology.geometry import (
    Point,
    random_point_in_disk,
    random_points_in_rect,
)
from repro.topology.nodes import AccessPoint, Client, Radio
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_in_range, check_positive

#: Receivers are never placed closer than this to their transmitter, to
#: keep path-loss models out of the near field.
MIN_LINK_DISTANCE_M = 1.0


@dataclass(frozen=True)
class PairTopology:
    """Two transmitter-receiver pairs (the Fig. 5 / Fig. 6 scenario)."""

    t1: Radio
    r1: Radio
    t2: Radio
    r2: Radio

    @property
    def nodes(self) -> Tuple[Radio, Radio, Radio, Radio]:
        return (self.t1, self.r1, self.t2, self.r2)


def random_pair_topology(range_m: float, rng: SeedLike = None,
                         separation_m: float = None) -> PairTopology:
    """Random two-pair placement following the paper's Monte-Carlo recipe.

    "We fix the positions of the transmitters separated by a certain
    range.  The receivers are then placed randomly within the range of
    their transmitters."

    ``separation_m`` defaults to ``range_m`` (transmitters exactly one
    range apart, the paper's setup).
    """
    check_positive("range_m", range_m)
    if separation_m is None:
        separation_m = range_m
    check_positive("separation_m", separation_m)
    generator = make_rng(rng)
    t1_pos = Point(0.0, 0.0)
    t2_pos = Point(separation_m, 0.0)
    r1_pos = random_point_in_disk(t1_pos, range_m, generator,
                                  min_radius_m=MIN_LINK_DISTANCE_M)
    r2_pos = random_point_in_disk(t2_pos, range_m, generator,
                                  min_radius_m=MIN_LINK_DISTANCE_M)
    return PairTopology(
        t1=Radio("T1", t1_pos),
        r1=Radio("R1", r1_pos),
        t2=Radio("T2", t2_pos),
        r2=Radio("R2", r2_pos),
    )


@dataclass(frozen=True)
class PairTopologyBatch:
    """N two-pair placements as coordinate arrays (the batched Fig. 6 draw).

    Transmitters are fixed at ``(0, 0)`` and ``(separation_m, 0)`` for
    every draw; only the receiver coordinates vary.  All arrays have
    shape ``(n,)``.
    """

    separation_m: float
    r1_x: np.ndarray
    r1_y: np.ndarray
    r2_x: np.ndarray
    r2_y: np.ndarray

    def __len__(self) -> int:
        return self.r1_x.shape[0]

    def link_distances(self) -> Tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        """The four Tx-Rx distances ``(d11, d12, d21, d22)``.

        ``d_jk`` is the distance from transmitter k to receiver j,
        matching the paper's ``S_j^k`` RSS indexing.
        """
        d11 = np.hypot(self.r1_x, self.r1_y)
        d12 = np.hypot(self.separation_m - self.r1_x, self.r1_y)
        d21 = np.hypot(self.r2_x, self.r2_y)
        d22 = np.hypot(self.separation_m - self.r2_x, self.r2_y)
        return d11, d12, d21, d22

    def topology(self, k: int) -> PairTopology:
        """Materialise draw ``k`` as a scalar :class:`PairTopology`."""
        return PairTopology(
            t1=Radio("T1", Point(0.0, 0.0)),
            r1=Radio("R1", Point(float(self.r1_x[k]), float(self.r1_y[k]))),
            t2=Radio("T2", Point(self.separation_m, 0.0)),
            r2=Radio("R2", Point(float(self.r2_x[k]), float(self.r2_y[k]))),
        )


def _annulus_radii(u: np.ndarray, radius_m: float,
                   min_radius_m: float) -> np.ndarray:
    """Area-uniform radii from unit draws (vector form of the disk rule)."""
    span = radius_m ** 2 - min_radius_m ** 2
    return np.sqrt(u * span + min_radius_m ** 2)


def random_pair_topologies(n: int, range_m: float, rng: SeedLike = None,
                           separation_m: float = None) -> PairTopologyBatch:
    """Draw ``n`` pair topologies at once as coordinate arrays.

    Batched counterpart of :func:`random_pair_topology`: same placement
    recipe, same uniform-stream consumption order (r1's radius draw,
    r1's angle, r2's radius, r2's angle, per topology), so a batch of
    ``n`` reproduces ``n`` successive scalar draws from the same
    generator.
    """
    if n < 1:
        raise ValueError("need at least one topology")
    check_positive("range_m", range_m)
    if separation_m is None:
        separation_m = range_m
    check_positive("separation_m", separation_m)
    generator = make_rng(rng)
    draws = generator.random((n, 4))
    r1_r = _annulus_radii(draws[:, 0], range_m, MIN_LINK_DISTANCE_M)
    r1_theta = draws[:, 1] * (2.0 * math.pi)
    r2_r = _annulus_radii(draws[:, 2], range_m, MIN_LINK_DISTANCE_M)
    r2_theta = draws[:, 3] * (2.0 * math.pi)
    return PairTopologyBatch(
        separation_m=float(separation_m),
        r1_x=r1_r * np.cos(r1_theta),
        r1_y=r1_r * np.sin(r1_theta),
        r2_x=separation_m + r2_r * np.cos(r2_theta),
        r2_y=r2_r * np.sin(r2_theta),
    )


@dataclass(frozen=True)
class UplinkTopology:
    """One AP and a set of backlogged clients (the upload scenario)."""

    ap: AccessPoint
    clients: Tuple[Client, ...]


def random_uplink_clients(n_clients: int, cell_radius_m: float,
                          rng: SeedLike = None,
                          min_distance_m: float = MIN_LINK_DISTANCE_M,
                          ap_name: str = "AP1") -> UplinkTopology:
    """``n_clients`` clients uniform in a disk cell around one AP."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    check_positive("cell_radius_m", cell_radius_m)
    generator = make_rng(rng)
    ap = AccessPoint(ap_name, Point(0.0, 0.0))
    clients = tuple(
        Client(
            f"C{i + 1}",
            random_point_in_disk(ap.position, cell_radius_m, generator,
                                 min_radius_m=min_distance_m),
            associated_ap=ap_name,
        )
        for i in range(n_clients)
    )
    return UplinkTopology(ap=ap, clients=clients)


@dataclass(frozen=True)
class UplinkClientBatch:
    """N uplink placements of ``m`` clients each, as coordinate arrays.

    The AP sits at the origin for every draw; ``x``/``y`` have shape
    ``(n, m)``.
    """

    x: np.ndarray
    y: np.ndarray

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n_clients(self) -> int:
        return self.x.shape[1]

    def ap_distances(self) -> np.ndarray:
        """Client-to-AP distances, shape ``(n, m)``."""
        return np.hypot(self.x, self.y)

    def topology(self, k: int, ap_name: str = "AP1") -> UplinkTopology:
        """Materialise draw ``k`` as a scalar :class:`UplinkTopology`."""
        ap = AccessPoint(ap_name, Point(0.0, 0.0))
        clients = tuple(
            Client(f"C{i + 1}", Point(float(self.x[k, i]), float(self.y[k, i])),
                   associated_ap=ap_name)
            for i in range(self.n_clients)
        )
        return UplinkTopology(ap=ap, clients=clients)


def random_uplink_client_batch(n: int, n_clients: int, cell_radius_m: float,
                               rng: SeedLike = None,
                               min_distance_m: float = MIN_LINK_DISTANCE_M,
                               ) -> UplinkClientBatch:
    """Draw ``n`` uplink placements of ``n_clients`` clients at once.

    Batched counterpart of :func:`random_uplink_clients` with the same
    uniform-stream consumption order (radius draw then angle, client by
    client, topology by topology).
    """
    if n < 1:
        raise ValueError("need at least one topology")
    if n_clients < 1:
        raise ValueError("need at least one client")
    check_positive("cell_radius_m", cell_radius_m)
    if not 0.0 <= min_distance_m < cell_radius_m:
        raise ValueError("need 0 <= min_distance_m < cell_radius_m")
    generator = make_rng(rng)
    draws = generator.random((n, n_clients, 2))
    radii = _annulus_radii(draws[..., 0], cell_radius_m, min_distance_m)
    theta = draws[..., 1] * (2.0 * math.pi)
    return UplinkClientBatch(x=radii * np.cos(theta),
                             y=radii * np.sin(theta))


@dataclass(frozen=True)
class WlanTopology:
    """Multiple APs plus clients (enterprise or residential)."""

    aps: Tuple[AccessPoint, ...]
    clients: Tuple[Client, ...]

    def clients_of(self, ap_name: str) -> List[Client]:
        return [c for c in self.clients if c.associated_ap == ap_name]


def ewlan_grid(ap_rows: int, ap_cols: int, ap_spacing_m: float,
               clients_per_ap: int, rng: SeedLike = None) -> WlanTopology:
    """Enterprise WLAN: grid of wired APs, clients scattered uniformly.

    Clients associate to their *nearest* AP (the enterprise setting lets
    a client use any AP, and nearest is best — the observation the paper
    uses to rule out SIC for the two-clients-two-APs EWLAN case).
    """
    if ap_rows < 1 or ap_cols < 1:
        raise ValueError("need at least one AP")
    if clients_per_ap < 0:
        raise ValueError("clients_per_ap must be non-negative")
    check_positive("ap_spacing_m", ap_spacing_m)
    generator = make_rng(rng)
    aps = tuple(
        AccessPoint(f"AP{r * ap_cols + c + 1}",
                    Point(c * ap_spacing_m, r * ap_spacing_m))
        for r in range(ap_rows)
        for c in range(ap_cols)
    )
    width = max(ap_cols - 1, 1) * ap_spacing_m
    height = max(ap_rows - 1, 1) * ap_spacing_m
    n_clients = clients_per_ap * len(aps)
    positions = random_points_in_rect(n_clients, width, height, generator)
    clients = []
    for i, pos in enumerate(positions):
        nearest = min(aps, key=lambda ap: ap.position.distance_to(pos))
        clients.append(Client(f"C{i + 1}", pos, associated_ap=nearest.name))
    return WlanTopology(aps=aps, clients=tuple(clients))


def residential_row(n_homes: int, home_width_m: float,
                    clients_per_home: int, rng: SeedLike = None) -> WlanTopology:
    """Residential WLANs: a row of homes, one (WPA-locked) AP per home.

    Unlike the enterprise case, each client is bound to *its own home's*
    AP even when a neighbour's AP is closer — the restriction that,
    per Section 4.2, "strangely provides some opportunities for SIC".
    """
    if n_homes < 1:
        raise ValueError("need at least one home")
    if clients_per_home < 0:
        raise ValueError("clients_per_home must be non-negative")
    check_positive("home_width_m", home_width_m)
    generator = make_rng(rng)
    aps = []
    clients = []
    for h in range(n_homes):
        left = h * home_width_m
        ap_x = left + generator.uniform(0.2, 0.8) * home_width_m
        ap = AccessPoint(f"AP{h + 1}", Point(ap_x, generator.uniform(2.0, 8.0)))
        aps.append(ap)
        for k in range(clients_per_home):
            pos = Point(left + generator.uniform(0.0, home_width_m),
                        generator.uniform(0.0, 10.0))
            clients.append(Client(f"H{h + 1}C{k + 1}", pos,
                                  associated_ap=ap.name))
    return WlanTopology(aps=tuple(aps), clients=tuple(clients))


@dataclass(frozen=True)
class MeshChain:
    """A linear multihop chain of mesh radios."""

    nodes: Tuple[Radio, ...]

    def hops(self) -> List[Tuple[Radio, Radio]]:
        return list(zip(self.nodes, self.nodes[1:]))


def mesh_chain(hop_lengths_m: List[float]) -> MeshChain:
    """A mesh chain with the given hop lengths along a line.

    ``mesh_chain([40, 10, 40])`` builds the long-short-long A->C->D->E
    pattern of Section 4.3 that is "a perfect recipe for SIC at C".
    """
    if not hop_lengths_m:
        raise ValueError("need at least one hop")
    for length in hop_lengths_m:
        check_in_range("hop length", length, low=MIN_LINK_DISTANCE_M)
    names = [chr(ord("A") + i) for i in range(len(hop_lengths_m) + 1)]
    x = 0.0
    nodes = [Radio(names[0], Point(0.0, 0.0))]
    for name, length in zip(names[1:], hop_lengths_m):
        x += length
        nodes.append(Radio(name, Point(x, 0.0)))
    return MeshChain(nodes=tuple(nodes))
