"""Topology substrate: geometry, node types, scenario generators.

Provides the node placements every experiment consumes:

* :mod:`repro.topology.geometry` — 2-D points and distances;
* :mod:`repro.topology.nodes` — access points, clients, generic radios;
* :mod:`repro.topology.generators` — deterministic and random placements
  for each building-block scenario of the paper (two transmitters to one
  receiver, two transmitter-receiver pairs, EWLAN grids, residential
  apartment rows, mesh chains).
"""

from repro.topology.geometry import Point, distance
from repro.topology.nodes import AccessPoint, Client, Node, Radio
from repro.topology.generators import (
    random_pair_topologies,
    random_pair_topology,
    random_uplink_client_batch,
    random_uplink_clients,
    residential_row,
    mesh_chain,
    ewlan_grid,
)

__all__ = [
    "AccessPoint",
    "Client",
    "Node",
    "Point",
    "Radio",
    "distance",
    "ewlan_grid",
    "mesh_chain",
    "random_pair_topologies",
    "random_pair_topology",
    "random_uplink_client_batch",
    "random_uplink_clients",
    "residential_row",
]
