"""2-D geometry primitives used by the topology generators."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Point:
    """A point in the plane, metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Centroid of a non-empty point collection."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    return Point(sum(p.x for p in pts) / len(pts), sum(p.y for p in pts) / len(pts))


def random_point_in_disk(center: Point, radius_m: float,
                         rng: SeedLike = None,
                         min_radius_m: float = 0.0) -> Point:
    """A point uniformly distributed in an annulus around ``center``.

    ``min_radius_m`` keeps receivers out of the unphysical near field of
    their transmitter (a zero distance would mean infinite RSS).
    """
    check_positive("radius_m", radius_m)
    if not 0.0 <= min_radius_m < radius_m:
        raise ValueError("need 0 <= min_radius_m < radius_m")
    generator = make_rng(rng)
    # Uniform over area: r = sqrt(U * (R^2 - r0^2) + r0^2).
    u = generator.random()
    r = math.sqrt(u * (radius_m ** 2 - min_radius_m ** 2) + min_radius_m ** 2)
    theta = generator.uniform(0.0, 2.0 * math.pi)
    return Point(center.x + r * math.cos(theta), center.y + r * math.sin(theta))


def random_points_in_rect(count: int, width_m: float, height_m: float,
                          rng: SeedLike = None) -> List[Point]:
    """``count`` points uniform over a ``width x height`` rectangle."""
    if count < 0:
        raise ValueError("count must be non-negative")
    check_positive("width_m", width_m)
    check_positive("height_m", height_m)
    generator = make_rng(rng)
    xs = generator.uniform(0.0, width_m, size=count)
    ys = generator.uniform(0.0, height_m, size=count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def grid_points(rows: int, cols: int, spacing_m: float,
                origin: Optional[Point] = None) -> List[Point]:
    """A ``rows x cols`` grid of points with the given spacing."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    check_positive("spacing_m", spacing_m)
    base = origin or Point(0.0, 0.0)
    return [
        Point(base.x + c * spacing_m, base.y + r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    ]
