"""Node types: generic radios, access points, clients.

A node is a named radio at a position with a maximum transmit power.
The default transmit power (100 mW = 20 dBm) is the 802.11 norm; the
power-reduction technique of paper Section 5.2 lowers a client's
*effective* power below this maximum, never above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.geometry import Point
from repro.util.units import dbm_to_watts
from repro.util.validation import check_positive

#: Default 802.11 transmit power: 20 dBm = 100 mW.
DEFAULT_TX_POWER_W = float(dbm_to_watts(20.0))


@dataclass(frozen=True)
class Node:
    """A named radio node at a fixed position."""

    name: str
    position: Point
    max_tx_power_w: float = DEFAULT_TX_POWER_W

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        check_positive("max_tx_power_w", self.max_tx_power_w)

    def distance_to(self, other: "Node") -> float:
        return self.position.distance_to(other.position)


@dataclass(frozen=True)
class Radio(Node):
    """A generic transmitter/receiver (mesh node, ad-hoc station)."""


@dataclass(frozen=True)
class AccessPoint(Node):
    """An infrastructure access point."""


@dataclass(frozen=True)
class Client(Node):
    """A WLAN client station, optionally associated to an AP by name."""

    associated_ap: str = ""


@dataclass(frozen=True)
class Link:
    """A directed transmitter -> receiver link."""

    transmitter: Node
    receiver: Node
    label: str = field(default="")

    def __post_init__(self) -> None:
        if self.transmitter.name == self.receiver.name:
            raise ValueError("a link cannot connect a node to itself")

    @property
    def length_m(self) -> float:
        return self.transmitter.distance_to(self.receiver)

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.transmitter.name}->{self.receiver.name}{tag}"
