"""Edmonds' blossom algorithm for weighted matching, from scratch.

The paper reduces SIC-aware client scheduling to *minimum-weight
perfect matching* (Section 6, Fig. 12) and invokes Edmonds' algorithm.
This module implements the primal-dual blossom method for general
graphs — the O(n * m * log-ish) stage-based formulation due to Galil
("Efficient algorithms for finding maximum matching in graphs", 1986),
structured as:

* ``max_weight_matching`` — maximum-weight matching, optionally
  constrained to maximum cardinality;
* ``min_weight_perfect_matching`` — what the scheduler calls: on a
  complete even-order graph, negate-and-shift the costs and ask for the
  maximum-cardinality maximum-weight matching.

The implementation keeps the classic data layout: vertices are
``0..n-1``, non-trivial blossoms take identifiers ``n..2n-1``, and each
edge contributes two *endpoints* ``2k`` and ``2k+1`` so that "the other
end of edge k as seen from vertex v" is a single integer.  Dual
variables live on vertices (``u_v``) and blossoms (``z_b``); a matching
is optimal when every edge has non-negative slack
``u_i + u_j + (blossom terms) - 2*w_ij`` and every matched edge has
zero slack.

Fast path (this is the throughput-critical kernel of the scheduler):

* dual variables are kept in **doubled units** (``2*u_v``), which makes
  every quantity in the algorithm — slacks, the four dual-adjustment
  deltas, blossom duals — an exact integer whenever the edge weights
  are integral (the true duals are multiples of 1/2, and the doubled
  S-to-S slack that delta type 3 halves is provably even).  For float
  weights, scaling by two is exact in IEEE arithmetic, so the doubled
  run makes *bit-identical decisions* to the historical un-doubled one;
* slack look-ups in the tree-growth loops are inlined list reads
  (``dualvar[i] + dualvar[j] - weight4[k]``) instead of the historical
  per-edge ``slack()`` function calls — millions of calls per solve on
  large backlogs;
* the per-stage dual adjustment (delta types 1–4) is a handful of
  masked NumPy reductions over vertex/blossom/edge arrays instead of
  Python scans over ``range(2 * nvertex)``, and the dual updates apply
  as vectorised adds;
* the dense internal ``assert``s are gated behind ``debug=True``.

The pre-fast-path implementation is frozen verbatim in
:mod:`repro.scheduling.matching_scalar`; golden tests pin this module
to return the *exact same matchings* (same ``mate`` arrays, not merely
equal weight), and the speedup is tracked by
``benchmarks/test_bench_scheduler.py``.

Weights must be integers for exactness.  ``min_weight_perfect_matching``
therefore quantises float costs onto a fine integer grid before
solving; with a grid of ``max_cost / 1e12`` the rounding is far below
any physically meaningful airtime difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int, float]

#: Integral weights above this magnitude would risk ``int64`` overflow
#: in the vectorised doubled-dual arithmetic; such graphs take the
#: float64 path.
_INT64_SAFE_WEIGHT = 2 ** 60


def _enumerate_perfect_matchings(
        vertices: Tuple[int, ...]) -> List[Tuple[Tuple[int, int], ...]]:
    """All perfect matchings of a complete graph on ``vertices``."""
    if not vertices:
        return [()]
    first, rest = vertices[0], vertices[1:]
    matchings: List[Tuple[Tuple[int, int], ...]] = []
    for k, partner in enumerate(rest):
        remaining = rest[:k] + rest[k + 1:]
        for sub in _enumerate_perfect_matchings(remaining):
            matchings.append(((first, partner),) + sub)
    return matchings


#: Complete graphs this small are solved by enumeration (1, 3 and 15
#: candidate matchings) instead of the blossom machinery — the trace
#: scheduler's snapshots are overwhelmingly 2-6 vertices.
_SMALL_PERFECT_MATCHINGS = {
    n: _enumerate_perfect_matchings(tuple(range(n))) for n in (2, 4, 6)
}


def max_weight_matching(edges: Sequence[Edge],
                        maxcardinality: bool = False,
                        debug: bool = False) -> List[int]:
    """Compute a maximum-weight matching on a general graph.

    ``edges`` is a list of ``(i, j, weight)`` with ``i != j``; at most
    one edge per vertex pair.  Returns ``mate`` with ``mate[v]`` the
    partner of ``v`` or ``-1`` if ``v`` is single.  With
    ``maxcardinality=True`` the matching has maximum cardinality first,
    maximum weight among those second.  ``debug=True`` re-enables the
    dense internal invariant assertions (slow; for tests).
    """
    if not edges:
        return []

    nedge = len(edges)
    nvertex = 0
    for (i, j, w) in edges:
        if i < 0 or j < 0 or i == j:
            raise ValueError(f"bad edge ({i}, {j})")
        nvertex = max(nvertex, i + 1, j + 1)

    maxweight = max(0, max(w for (_, _, w) in edges))

    # Doubled-unit duals: int64 when the weights allow exact integer
    # arithmetic in the vectorised steps, float64 otherwise (see module
    # docstring).
    integral = all(
        isinstance(w, (int, np.integer))
        or (isinstance(w, float) and w.is_integer())
        for (_, _, w) in edges
    ) and max(abs(w) for (_, _, w) in edges) < _INT64_SAFE_WEIGHT
    dtype = np.int64 if integral else np.float64

    # In doubled dual units the slack of edge k is
    # dualvar[i] + dualvar[j] - weight4[k]; the scalar loops read the
    # plain lists, the delta search gathers through the NumPy mirrors.
    weight4 = [4 * e[2] for e in edges]
    # Endpoint columns both as plain lists (hot scalar loops — list
    # indexing beats tuple-of-tuple indexing) and as NumPy arrays (the
    # vectorised slack gathers).
    ei_l = [e[0] for e in edges]
    ej_l = [e[1] for e in edges]
    edge_i = np.fromiter(ei_l, np.int64, nedge)
    edge_j = np.fromiter(ej_l, np.int64, nedge)
    weight4_np = np.fromiter(weight4, dtype, nedge)

    # endpoint[p] is the vertex at endpoint p; edge k owns endpoints
    # 2k (its i side) and 2k+1 (its j side).
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]

    # neighbend[v] lists the *remote* endpoints of edges incident to v.
    neighbend: List[List[int]] = [[] for _ in range(nvertex)]
    for k in range(nedge):
        i, j, _ = edges[k]
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    # Per-vertex gather indices, aligned with neighbend[v]: the edge
    # ids, the remote vertices (NumPy, for slack gathers), and those
    # edges' weight4.  One vectorised slack evaluation per S-vertex
    # scan replaces per-neighbour Python arithmetic.
    nbr_edges: List[List[int]] = []
    nbr_vert: List[np.ndarray] = []
    nbr_w4: List[np.ndarray] = []
    for v in range(nvertex):
        ks = [p // 2 for p in neighbend[v]]
        karr = np.fromiter(ks, np.int64, len(ks))
        nbr_edges.append(ks)
        nbr_vert.append(np.fromiter((endpoint[p] for p in neighbend[v]),
                                    np.int64, len(ks)))
        nbr_w4.append(weight4_np[karr])

    # Per-vertex (endpoint, edge, remote-vertex) triples: the S-vertex
    # scan unpacks one precomputed tuple per neighbour instead of
    # re-deriving the edge id and remote vertex on every visit.
    nbr_pkw = [[(p, p // 2, endpoint[p]) for p in nb] for nb in neighbend]

    # mate[v] is the remote endpoint of v's matched edge, or -1.
    mate = nvertex * [-1]

    # label[b]: 0 = free, 1 = S (even), 2 = T (odd); +4 marks a
    # breadcrumb during scan_blossom.  Indexed by top-level blossom for
    # blossoms, and additionally per-vertex for T-side bookkeeping.
    #
    # The labelling/blossom structures are Python lists (authoritative,
    # for the scalar tree-growth loops) with write-through NumPy
    # mirrors (``*_np``) kept in lockstep so the vectorised dual
    # adjustment never has to convert a list.  Mirror writes are cheap
    # because mutations are orders of magnitude rarer than reads.
    label = (2 * nvertex) * [0]
    lab_np = np.zeros(2 * nvertex, dtype=np.int64)

    # labelend[b]: the endpoint through which b acquired its label.
    labelend = (2 * nvertex) * [-1]

    # inblossom[v]: the top-level blossom containing vertex v.
    inblossom = list(range(nvertex))
    inb_np = np.arange(nvertex, dtype=np.int64)

    # Blossom structure: parent, ordered children, base vertex, and the
    # connecting endpoints between consecutive children.
    blossomparent = (2 * nvertex) * [-1]
    bpar_np = np.full(2 * nvertex, -1, dtype=np.int64)
    blossomchilds: List[Optional[List[int]]] = (2 * nvertex) * [None]
    blossombase = list(range(nvertex)) + nvertex * [-1]
    bbase_np = np.concatenate([np.arange(nvertex, dtype=np.int64),
                               np.full(nvertex, -1, dtype=np.int64)])
    blossomendps: List[Optional[List[int]]] = (2 * nvertex) * [None]

    # bestedge[b]: least-slack edge from b to a different S-blossom.
    bestedge = (2 * nvertex) * [-1]
    best_np = np.full(2 * nvertex, -1, dtype=np.int64)
    blossombestedges: List[Optional[List[int]]] = (2 * nvertex) * [None]

    unusedblossoms = list(range(nvertex, 2 * nvertex))

    # Dual variables in doubled units: 2*u_v for vertices (init twice
    # the max weight), 2*z_b for blossoms (init 0).  The Python list is
    # authoritative for the scalar loops; ``dual_np`` mirrors it for
    # the vectorised delta search (``dvert_np`` is its vertex half).
    dualvar = nvertex * [2 * maxweight] + nvertex * [0]
    dual_np = np.concatenate([np.full(nvertex, 2 * maxweight, dtype=dtype),
                              np.zeros(nvertex, dtype=dtype)])
    dvert_np = dual_np[:nvertex]
    # Blossom halves of the mirrors, as persistent views: the delta
    # search slices them every adjustment, so slice once here.  (All
    # mirror mutations are in-place, which keeps these views live.)
    dblos_np = dual_np[nvertex:]
    lab_hi_np = lab_np[nvertex:]
    bpar_hi_np = bpar_np[nvertex:]
    bbase_hi_np = bbase_np[nvertex:]

    # allowedge[k]: edge k has zero slack and may be crossed.
    allowedge = nedge * [False]

    queue: List[int] = []

    def blossom_leaves(b: int) -> List[int]:
        # Iterative depth-first walk, preserving the child order of the
        # recursive formulation (reversed extends make the stack pop
        # children left to right).  Returns a list — the callers all
        # consume every leaf, and lists beat generator resumptions.
        out = []
        stack = [b]
        while stack:
            t = stack.pop()
            if t < nvertex:
                out.append(t)
            else:
                stack.extend(blossomchilds[t][::-1])
        return out

    def assign_label(w: int, t: int, p: int) -> None:
        """Give vertex w (and its blossom) label t via endpoint p."""
        b = inblossom[w]
        if debug:
            assert label[w] == 0 and label[b] == 0
        label[w] = label[b] = t
        lab_np[w] = lab_np[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        best_np[w] = best_np[b] = -1
        if t == 1:
            # S-blossom: scan all its vertices (a bare vertex is its
            # own single leaf — skip the walk).
            if b < nvertex:
                queue.append(b)
            else:
                queue.extend(blossom_leaves(b))
        elif t == 2:
            # T-blossom: its base's mate becomes an S-vertex.
            base = blossombase[b]
            if debug:
                assert mate[base] >= 0
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w; return a common ancestor base or -1.

        -1 means the alternating paths from v and w reach different
        free roots, i.e. edge (v, w) closes an augmenting path.
        """
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            if debug:
                assert label[b] == 1
            path.append(b)
            label[b] = 5  # breadcrumb: 1 | 4
            lab_np[b] = 5
            if debug:
                assert labelend[b] == mate[blossombase[b]]
            if labelend[b] == -1:
                v = -1  # reached a free root
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                if debug:
                    assert label[b] == 2
                    assert labelend[b] >= 0
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
            lab_np[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Shrink the odd cycle through edge k and vertex ``base``."""
        v, w, _ = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        bbase_np[b] = base
        blossomparent[b] = -1
        bpar_np[b] = -1
        blossomparent[bb] = b
        bpar_np[bb] = b
        # Walk from v back to the base, collecting the path.
        path: List[int] = []
        endps: List[int] = []
        while bv != bb:
            blossomparent[bv] = b
            bpar_np[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            if debug:
                assert (label[bv] == 2
                        or (label[bv] == 1
                            and labelend[bv] == mate[blossombase[bv]]))
                assert labelend[bv] >= 0
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        # Walk from w back to the base, extending forwards.
        while bw != bb:
            blossomparent[bw] = b
            bpar_np[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            if debug:
                assert (label[bw] == 2
                        or (label[bw] == 1
                            and labelend[bw] == mate[blossombase[bw]]))
                assert labelend[bw] >= 0
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        if debug:
            assert label[bb] == 1
        blossomchilds[b] = path
        blossomendps[b] = endps
        label[b] = 1
        lab_np[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        dual_np[b] = 0
        leaves = blossom_leaves(b)
        for leaf in leaves:
            if label[inblossom[leaf]] == 2:
                # Former T-vertices become S-vertices; scan them.
                queue.append(leaf)
            inblossom[leaf] = b
        inb_np[leaves] = b
        # Merge the children's best-edge caches.  Candidate slacks are
        # evaluated in vectorised chunks (per leaf via the neighbour
        # gather arrays, or per cached best-edge list); the duals are
        # constant throughout, so the values all stay coherent.
        bestedgeto = (2 * nvertex) * [-1]
        bestslackto = (2 * nvertex) * [0]
        touched: List[int] = []
        for bv in path:
            if blossombestedges[bv] is None:
                chunks = [
                    (nbr_edges[leaf],
                     (dualvar[leaf] + dvert_np[nbr_vert[leaf]]
                      - nbr_w4[leaf]).tolist())
                    for leaf in blossom_leaves(bv)
                ]
            else:
                ks = blossombestedges[bv]
                karr = np.fromiter(ks, np.int64, len(ks))
                chunks = [(ks, (dvert_np[edge_i[karr]]
                                + dvert_np[edge_j[karr]]
                                - weight4_np[karr]).tolist())]
            for klist, slist in chunks:
                for ek, ksl in zip(klist, slist):
                    j = ej_l[ek]
                    if inblossom[j] == b:
                        j = ei_l[ek]
                    bj = inblossom[j]
                    if bj != b and label[bj] == 1:
                        if bestedgeto[bj] == -1:
                            touched.append(bj)
                        elif ksl >= bestslackto[bj]:
                            continue
                        bestedgeto[bj] = ek
                        bestslackto[bj] = ksl
            blossombestedges[bv] = None
            bestedge[bv] = -1
            best_np[bv] = -1
        # Final selection over the blossoms actually reached; sorting
        # the touched list restores the historical ascending-``bj``
        # iteration order (first minimum wins ties) without scanning
        # all 2n slots.
        touched.sort()
        blossombestedges[b] = [bestedgeto[bj] for bj in touched]
        bestedge[b] = -1
        bestsl = None
        for bj in touched:
            if bestedge[b] == -1 or bestslackto[bj] < bestsl:
                bestedge[b] = bestedgeto[bj]
                bestsl = bestslackto[bj]
        best_np[b] = bestedge[b]

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo blossom b (its dual hit zero, or the stage ended)."""
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            bpar_np[s] = -1
            if s < nvertex:
                inblossom[s] = s
                inb_np[s] = s
            elif endstage and dualvar[s] == 0:
                # Recursively expand sub-blossoms with zero dual.
                expand_blossom(s, endstage)
            else:
                leaves = blossom_leaves(s)
                for leaf in leaves:
                    inblossom[leaf] = s
                inb_np[leaves] = s
        if (not endstage) and label[b] == 2:
            # The expanding blossom was a T-blossom mid-stage: relabel
            # the even-path children and clear the odd-path ones.
            if debug:
                assert labelend[b] >= 0
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                # Odd index: go forward around the blossom.
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                # Even index: go backward.
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                # Relabel the T-sub-blossom on the path to the base.
                label[endpoint[p ^ 1]] = 0
                lab_np[endpoint[p ^ 1]] = 0
                vz = endpoint[blossomendps[b][j - endptrick]
                              ^ endptrick ^ 1]
                label[vz] = 0
                lab_np[vz] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            # The base sub-blossom keeps label T without propagating.
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            lab_np[endpoint[p ^ 1]] = lab_np[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            best_np[bv] = -1
            # Children off the path lose their labels (but a vertex
            # individually reached from outside keeps a T handle).
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                leaf = None
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        break
                if leaf is not None and label[leaf] != 0:
                    if debug:
                        assert label[leaf] == 2
                        assert inblossom[leaf] == bv
                    label[leaf] = 0
                    lab_np[leaf] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    lab_np[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(leaf, 2, labelend[leaf])
                j += jstep
        # Recycle b.
        label[b] = labelend[b] = -1
        lab_np[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        bbase_np[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        best_np[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges inside b so v becomes its base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]
        bbase_np[b] = blossombase[b]
        if debug:
            assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        """Flip the matching along the augmenting path through edge k."""
        v, w, _ = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                if debug:
                    assert label[bs] == 1
                    assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a free root
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                if debug:
                    assert label[bt] == 2
                    assert labelend[bt] >= 0
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                if debug:
                    assert blossombase[bt] == t
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # Main loop: each stage finds one augmenting path (or proves none
    # exists and terminates).
    for _ in range(nvertex):
        label[:] = (2 * nvertex) * [0]
        lab_np[:] = 0
        bestedge[:] = (2 * nvertex) * [-1]
        best_np[:] = -1
        for b in range(nvertex, 2 * nvertex):
            blossombestedges[b] = None
        allowedge[:] = nedge * [False]
        queue[:] = []

        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)

        augmented = False
        while True:
            # Grow the forest from S-vertices in the queue.  Slack reads
            # are inlined list look-ups (this loop runs tens of millions
            # of iterations on large backlogs — every name is local, and
            # NumPy is kept out: per-row gathers lose to plain list
            # indexing at realistic row lengths).
            dv = dualvar
            w4 = weight4
            inb = inblossom
            lbl = label
            allowed = allowedge
            ei = ei_l
            ej = ej_l
            best_l = bestedge
            nbr_t = nbr_pkw
            while queue and not augmented:
                v = queue.pop()
                if debug:
                    assert lbl[inb[v]] == 1
                dv_v = dv[v]
                inb_v = inb[v]
                for p, k, w in nbr_t[v]:
                    bw = inb[w]
                    if inb_v == bw:
                        continue  # internal edge
                    ok = allowed[k]
                    if ok:
                        kslack = 0
                    else:
                        kslack = dv_v + dv[w] - w4[k]
                        if kslack <= 0:
                            allowed[k] = ok = True
                    if ok:
                        lw = lbl[bw]
                        if lw == 0:
                            assign_label(w, 2, p ^ 1)
                        elif lw == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                                # v now lives in the new blossom.
                                inb_v = inb[v]
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif lbl[w] == 0:
                            # w sits inside a T-blossom but was not yet
                            # individually reached; give it a handle so
                            # the blossom can expand through it later.
                            if debug:
                                assert lbl[bw] == 2
                            lbl[w] = 2
                            lab_np[w] = 2
                            labelend[w] = p ^ 1
                    elif lbl[bw] == 1:
                        prev = best_l[inb_v]
                        if (prev == -1
                                or kslack < dv[ei[prev]]
                                + dv[ej[prev]] - w4[prev]):
                            best_l[inb_v] = k
                            best_np[inb_v] = k
                    elif lbl[w] == 0:
                        prev = best_l[w]
                        if (prev == -1
                                or kslack < dv[ei[prev]]
                                + dv[ej[prev]] - w4[prev]):
                            best_l[w] = k
                            best_np[w] = k
            if augmented:
                break

            # No zero-slack edges to cross: adjust the dual variables.
            # The candidate scans over vertices/blossoms/edges are
            # array reductions over the persistent mirrors — no list
            # conversion happens here.  ``argmin`` returns the first
            # minimum and the delta classes are compared in ascending
            # type order with strict ``<``, so tie-breaks match the
            # historical ascending scalar scans exactly.
            vlab = lab_np.take(inb_np)
            validb = best_np != -1

            deltatype = -1
            delta = deltaedge = deltablossom = None
            if not maxcardinality:
                deltatype = 1
                delta = dvert_np.min()

            # Delta 2: least slack from an S-vertex to a free vertex.
            # Delta 3: half the least slack between two top-level
            # S-blossoms.  Both classes need the same slack gather, so
            # their candidate edges are fetched in one concatenated
            # shot; ``sl[:n2]`` / ``sl[n2:]`` splits them back out.
            idx2 = ((vlab == 0) & validb[:nvertex]).nonzero()[0]
            idx3 = ((bpar_np == -1) & (lab_np == 1) & validb).nonzero()[0]
            n2 = idx2.size
            if n2 or idx3.size:
                if not idx3.size:
                    cand = best_np.take(idx2)
                elif not n2:
                    cand = best_np.take(idx3)
                else:
                    cand = best_np.take(np.concatenate((idx2, idx3)))
                sl = (dual_np.take(edge_i.take(cand))
                      + dual_np.take(edge_j.take(cand))
                      - weight4_np.take(cand))
                if n2:
                    sl2 = sl[:n2]
                    pos = int(sl2.argmin())
                    if deltatype == -1 or sl2[pos] < delta:
                        delta, deltatype = sl2[pos], 2
                        deltaedge = int(cand[pos])
                if idx3.size:
                    # In doubled integer units the S-S slack is provably
                    # even, so the halving shift is exact.
                    sl3 = sl[n2:]
                    if integral:
                        if debug:
                            assert not (sl3 & 1).any()
                        half = sl3 >> 1
                    else:
                        half = sl3 / 2
                    pos = int(half.argmin())
                    if deltatype == -1 or half[pos] < delta:
                        delta, deltatype = half[pos], 3
                        deltaedge = int(cand[n2 + pos])

            # Delta 4: least dual of a top-level T-blossom.  While no
            # blossom has ever been allocated (``unusedblossoms`` still
            # full) the blossom halves of the mirrors are inert, so the
            # scan and the blossom dual update are skipped outright.
            blossoms_live = len(unusedblossoms) < nvertex
            if blossoms_live:
                topb = (bbase_hi_np >= 0) & (bpar_hi_np == -1)
                top_t = topb & (lab_hi_np == 2)
                idx4 = top_t.nonzero()[0]
                if idx4.size:
                    duals = dblos_np.take(idx4)
                    pos = int(duals.argmin())
                    if deltatype == -1 or duals[pos] < delta:
                        delta, deltatype = duals[pos], 4
                        deltablossom = int(idx4[pos]) + nvertex

            if deltatype == -1:
                # No further improvement possible (max-cardinality mode
                # only); make the optimum verifiable anyway.
                if debug:
                    assert maxcardinality
                deltatype = 1
                delta = max(0, dvert_np.min())

            # Apply delta: S-side vertices down, T-side up; the reverse
            # for blossom duals — then sync back to the scalar list.
            # Multiply-by-mask updates touch non-selected entries with
            # ``x -= 0``, which is exact in both int64 and IEEE float
            # (no dual is ever -0.0), and avoid three-pass fancy
            # boolean assignment.
            dvert_np -= delta * (vlab == 1)
            dvert_np += delta * (vlab == 2)
            if blossoms_live:
                dblos_np += delta * (topb & (lab_hi_np == 1))
                dblos_np -= delta * top_t
            dualvar[:] = dual_np.tolist()

            if deltatype == 1:
                break  # optimum reached
            if deltatype == 2:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                if debug:
                    assert label[inblossom[i]] == 1
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                if debug:
                    assert label[inblossom[i]] == 1
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # End of a successful stage: expand S-blossoms whose dual
        # reached zero (they are no longer worth keeping shrunk).
        for b in range(nvertex, 2 * nvertex):
            if (blossomparent[b] == -1 and blossombase[b] >= 0
                    and label[b] == 1 and dualvar[b] == 0):
                expand_blossom(b, True)

    # Convert remote endpoints to plain vertex ids.
    for v in range(nvertex):
        if mate[v] >= 0:
            mate[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert mate[v] == -1 or mate[mate[v]] == v
    return mate


def _small_complete_matching(
        costs: Dict[Tuple[int, int], float],
        n_vertices: int,
        candidates: List[Tuple[Tuple[int, int], ...]],
) -> Optional[Set[Tuple[int, int]]]:
    """Enumerate the perfect matchings of a tiny complete graph.

    Returns the matching :func:`min_weight_perfect_matching` would
    return, computed without the blossom machinery: quantise the costs
    onto the same integer grid and pick the candidate with the unique
    smallest integral total.  On a tie (possible only when two
    matchings agree to one part in 1e12) returns ``None`` so the caller
    falls through to the blossom path, whose tie-break this shortcut
    must not second-guess.
    """
    max_cost = 0.0
    for (i, j), cost in costs.items():
        if not 0 <= i < j < n_vertices:
            raise ValueError(f"bad pair ({i}, {j}) for {n_vertices} vertices")
        if cost < 0.0:
            worst = min(costs.values())
            raise ValueError(f"costs must be non-negative, got {worst}")
        if cost > max_cost:
            max_cost = cost
    grid = max_cost / 1e12 if max_cost > 0.0 else 1.0
    # ``round`` is half-to-even, exactly like the ``np.rint`` grid of
    # the blossom path below.
    int_costs = {pair: int(round(cost / grid))
                 for pair, cost in costs.items()}
    best: Optional[Tuple[Tuple[int, int], ...]] = None
    best_total = 0
    tied = False
    for candidate in candidates:
        total = sum(int_costs[pair] for pair in candidate)
        if best is None or total < best_total:
            best, best_total, tied = candidate, total, False
        elif total == best_total:
            tied = True
    if tied or best is None:
        return None
    return set(best)


def min_weight_perfect_matching(
        costs: Dict[Tuple[int, int], float],
        n_vertices: int,
        debug: bool = False) -> Set[Tuple[int, int]]:
    """Minimum-weight perfect matching on a graph with float costs.

    ``costs`` maps unordered pairs ``(i, j)`` with ``i < j`` to a
    non-negative cost; ``n_vertices`` must be even and a perfect
    matching must exist (in the scheduler the graph is complete, so it
    always does — the error otherwise names the unmatched vertices).
    Returns the matching as a set of ``(i, j)`` pairs with ``i < j``.

    Implementation: quantise the costs onto an integer grid (one
    vectorised pass), transform cost -> (max + 1 - cost) so smaller
    cost means bigger weight, and run :func:`max_weight_matching` in
    max-cardinality mode.  Complete graphs on 2/4/6 vertices (the bulk
    of the trace scheduler's snapshots) are solved by enumerating their
    1/3/15 perfect matchings on the same integer grid, falling back to
    the blossom on a quantised tie — the returned matching is identical
    either way.
    """
    if n_vertices % 2 != 0:
        raise ValueError(f"perfect matching needs an even vertex count, "
                         f"got {n_vertices}")
    if n_vertices == 0:
        return set()

    if len(costs) == n_vertices * (n_vertices - 1) // 2:
        candidates = _SMALL_PERFECT_MATCHINGS.get(n_vertices)
        if candidates is not None:
            small = _small_complete_matching(costs, n_vertices, candidates)
            if small is not None:
                return small

    edges: List[Edge] = []
    if costs:
        pair_list = list(costs.keys())
        pairs = np.array(pair_list, dtype=np.int64)
        vals = np.fromiter(costs.values(), dtype=float, count=len(costs))
        bad = ((pairs[:, 0] < 0) | (pairs[:, 0] >= pairs[:, 1])
               | (pairs[:, 1] >= n_vertices))
        if bad.any():
            i, j = pair_list[int(np.flatnonzero(bad)[0])]
            raise ValueError(f"bad pair ({i}, {j}) for {n_vertices} vertices")
        if (vals < 0.0).any():
            worst = float(vals.min())
            raise ValueError(f"costs must be non-negative, got {worst}")

        max_cost = float(vals.max())
        # Quantisation grid fine enough that rounding never reorders two
        # schedules that differ by more than one part in 1e12.
        grid = max_cost / 1e12 if max_cost > 0.0 else 1.0
        # np.rint rounds half to even, exactly like the historical
        # ``int(round(...))`` per-pair loop.
        int_costs = np.rint(vals / grid).astype(np.int64)
        top = int(int_costs.max()) + 1
        weights = (top - int_costs).tolist()
        edges = [(int(i), int(j), w)
                 for (i, j), w in zip(pair_list, weights)]

    mate = max_weight_matching(edges, maxcardinality=True, debug=debug)
    matching = {(v, mate[v]) for v in range(len(mate)) if 0 <= v < mate[v]}
    matched_vertices = {v for pair in matching for v in pair}
    if len(matched_vertices) != n_vertices:
        unmatched = sorted(set(range(n_vertices)) - matched_vertices)
        raise ValueError(
            "graph admits no perfect matching: "
            f"vertices {unmatched} left unmatched")
    return matching


def matching_cost(matching: Set[Tuple[int, int]],
                  costs: Dict[Tuple[int, int], float]) -> float:
    """Total cost of a matching under a pair-cost map.

    Accumulates in sorted pair order: summing in the set's hash order
    would make the low bits of the total an artefact of insertion
    history (RPR405).
    """
    total = 0.0
    for (i, j) in sorted(matching):
        key = (i, j) if i < j else (j, i)
        total += costs[key]
    return total
