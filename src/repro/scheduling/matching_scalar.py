"""Frozen scalar reference of the blossom matching (pre-fast-path).

This is the pure-Python implementation that shipped before the
scheduler fast path, kept verbatim (public names suffixed ``_scalar``,
matching the PR-1 convention for Monte-Carlo engines).  It exists for
two jobs only:

* golden equivalence tests pin the array-based implementation in
  :mod:`repro.scheduling.matching` to produce the *exact same
  matchings* as this reference;
* ``benchmarks/test_bench_scheduler.py`` measures the fast path's
  speedup against it.

Do not optimise this module; its value is being the unchanged
baseline.  See :mod:`repro.scheduling.matching` for documentation of
the algorithm itself.
"""


from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int, float]


def max_weight_matching_scalar(edges: Sequence[Edge],
                        maxcardinality: bool = False) -> List[int]:
    """Compute a maximum-weight matching on a general graph.

    ``edges`` is a list of ``(i, j, weight)`` with ``i != j``; at most
    one edge per vertex pair.  Returns ``mate`` with ``mate[v]`` the
    partner of ``v`` or ``-1`` if ``v`` is single.  With
    ``maxcardinality=True`` the matching has maximum cardinality first,
    maximum weight among those second.
    """
    if not edges:
        return []

    nedge = len(edges)
    nvertex = 0
    for (i, j, w) in edges:
        if i < 0 or j < 0 or i == j:
            raise ValueError(f"bad edge ({i}, {j})")
        nvertex = max(nvertex, i + 1, j + 1)

    maxweight = max(0, max(w for (_, _, w) in edges))

    # endpoint[p] is the vertex at endpoint p; edge k owns endpoints
    # 2k (its i side) and 2k+1 (its j side).
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]

    # neighbend[v] lists the *remote* endpoints of edges incident to v.
    neighbend: List[List[int]] = [[] for _ in range(nvertex)]
    for k in range(nedge):
        i, j, _ = edges[k]
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    # mate[v] is the remote endpoint of v's matched edge, or -1.
    mate = nvertex * [-1]

    # label[b]: 0 = free, 1 = S (even), 2 = T (odd); +4 marks a
    # breadcrumb during scan_blossom.  Indexed by top-level blossom for
    # blossoms, and additionally per-vertex for T-side bookkeeping.
    label = (2 * nvertex) * [0]

    # labelend[b]: the endpoint through which b acquired its label.
    labelend = (2 * nvertex) * [-1]

    # inblossom[v]: the top-level blossom containing vertex v.
    inblossom = list(range(nvertex))

    # Blossom structure: parent, ordered children, base vertex, and the
    # connecting endpoints between consecutive children.
    blossomparent = (2 * nvertex) * [-1]
    blossomchilds: List[Optional[List[int]]] = (2 * nvertex) * [None]
    blossombase = list(range(nvertex)) + nvertex * [-1]
    blossomendps: List[Optional[List[int]]] = (2 * nvertex) * [None]

    # bestedge[b]: least-slack edge from b to a different S-blossom.
    bestedge = (2 * nvertex) * [-1]
    blossombestedges: List[Optional[List[int]]] = (2 * nvertex) * [None]

    unusedblossoms = list(range(nvertex, 2 * nvertex))

    # Dual variables: u_v for vertices (init max weight), z_b for
    # blossoms (init 0).  Working in doubled units would avoid halves;
    # we follow the convention that vertex duals may become half-integer
    # only transiently, which is exact for integer weights.
    dualvar = nvertex * [maxweight] + nvertex * [0]

    # allowedge[k]: edge k has zero slack and may be crossed.
    allowedge = nedge * [False]

    queue: List[int] = []

    def slack(k: int) -> float:
        i, j, wt = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for child in blossomchilds[b]:
                if child < nvertex:
                    yield child
                else:
                    yield from blossom_leaves(child)

    def assign_label(w: int, t: int, p: int) -> None:
        """Give vertex w (and its blossom) label t via endpoint p."""
        b = inblossom[w]
        assert label[w] == 0 and label[b] == 0
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            # S-blossom: scan all its vertices.
            queue.extend(blossom_leaves(b))
        elif t == 2:
            # T-blossom: its base's mate becomes an S-vertex.
            base = blossombase[b]
            assert mate[base] >= 0
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w; return a common ancestor base or -1.

        -1 means the alternating paths from v and w reach different
        free roots, i.e. edge (v, w) closes an augmenting path.
        """
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            assert label[b] == 1
            path.append(b)
            label[b] = 5  # breadcrumb: 1 | 4
            assert labelend[b] == mate[blossombase[b]]
            if labelend[b] == -1:
                v = -1  # reached a free root
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                assert label[b] == 2
                assert labelend[b] >= 0
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Shrink the odd cycle through edge k and vertex ``base``."""
        v, w, _ = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        # Walk from v back to the base, collecting the path.
        path: List[int] = []
        endps: List[int] = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            assert (label[bv] == 2
                    or (label[bv] == 1
                        and labelend[bv] == mate[blossombase[bv]]))
            assert labelend[bv] >= 0
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        # Walk from w back to the base, extending forwards.
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            assert (label[bw] == 2
                    or (label[bw] == 1
                        and labelend[bw] == mate[blossombase[bw]]))
            assert labelend[bw] >= 0
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        assert label[bb] == 1
        blossomchilds[b] = path
        blossomendps[b] = endps
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                # Former T-vertices become S-vertices; scan them.
                queue.append(leaf)
            inblossom[leaf] = b
        # Merge the children's best-edge caches.
        bestedgeto = (2 * nvertex) * [-1]
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [[p // 2 for p in neighbend[leaf]]
                           for leaf in blossom_leaves(bv)]
            else:
                nblists = [blossombestedges[bv]]
            for nblist in nblists:
                for edge_k in nblist:
                    i, j, _ = edges[edge_k]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (bj != b and label[bj] == 1
                            and (bestedgeto[bj] == -1
                                 or slack(edge_k) < slack(bestedgeto[bj]))):
                        bestedgeto[bj] = edge_k
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [e for e in bestedgeto if e != -1]
        bestedge[b] = -1
        for edge_k in blossombestedges[b]:
            if bestedge[b] == -1 or slack(edge_k) < slack(bestedge[b]):
                bestedge[b] = edge_k

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo blossom b (its dual hit zero, or the stage ended)."""
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                # Recursively expand sub-blossoms with zero dual.
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        if (not endstage) and label[b] == 2:
            # The expanding blossom was a T-blossom mid-stage: relabel
            # the even-path children and clear the odd-path ones.
            assert labelend[b] >= 0
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                # Odd index: go forward around the blossom.
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                # Even index: go backward.
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                # Relabel the T-sub-blossom on the path to the base.
                label[endpoint[p ^ 1]] = 0
                label[endpoint[blossomendps[b][j - endptrick]
                               ^ endptrick ^ 1]] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            # The base sub-blossom keeps label T without propagating.
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            # Children off the path lose their labels (but a vertex
            # individually reached from outside keeps a T handle).
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                leaf = None
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        break
                if leaf is not None and label[leaf] != 0:
                    assert label[leaf] == 2
                    assert inblossom[leaf] == bv
                    label[leaf] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(leaf, 2, labelend[leaf])
                j += jstep
        # Recycle b.
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges inside b so v becomes its base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]
        assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        """Flip the matching along the augmenting path through edge k."""
        v, w, _ = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                assert label[bs] == 1
                assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a free root
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                assert label[bt] == 2
                assert labelend[bt] >= 0
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                assert blossombase[bt] == t
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # Main loop: each stage finds one augmenting path (or proves none
    # exists and terminates).
    for _ in range(nvertex):
        label[:] = (2 * nvertex) * [0]
        bestedge[:] = (2 * nvertex) * [-1]
        for b in range(nvertex, 2 * nvertex):
            blossombestedges[b] = None
        allowedge[:] = nedge * [False]
        queue[:] = []

        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)

        augmented = False
        while True:
            # Grow the forest from S-vertices in the queue.
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue  # internal edge
                    kslack = None
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            # w sits inside a T-blossom but was not yet
                            # individually reached; give it a handle so
                            # the blossom can expand through it later.
                            assert label[inblossom[w]] == 2
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # No zero-slack edges to cross: adjust the dual variables.
            deltatype = -1
            delta = deltaedge = deltablossom = None
            if not maxcardinality:
                deltatype = 1
                delta = min(dualvar[:nvertex])
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta, deltatype, deltaedge = d, 2, bestedge[v]
            for b in range(2 * nvertex):
                if (blossomparent[b] == -1 and label[b] == 1
                        and bestedge[b] != -1):
                    d = slack(bestedge[b]) / 2
                    if deltatype == -1 or d < delta:
                        delta, deltatype, deltaedge = d, 3, bestedge[b]
            for b in range(nvertex, 2 * nvertex):
                if (blossombase[b] >= 0 and blossomparent[b] == -1
                        and label[b] == 2
                        and (deltatype == -1 or dualvar[b] < delta)):
                    delta, deltatype, deltablossom = dualvar[b], 4, b
            if deltatype == -1:
                # No further improvement possible (max-cardinality mode
                # only); make the optimum verifiable anyway.
                assert maxcardinality
                deltatype = 1
                delta = max(0, min(dualvar[:nvertex]))

            for v in range(nvertex):
                v_label = label[inblossom[v]]
                if v_label == 1:
                    dualvar[v] -= delta
                elif v_label == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break  # optimum reached
            if deltatype == 2:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                assert label[inblossom[i]] == 1
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                assert label[inblossom[i]] == 1
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # End of a successful stage: expand S-blossoms whose dual
        # reached zero (they are no longer worth keeping shrunk).
        for b in range(nvertex, 2 * nvertex):
            if (blossomparent[b] == -1 and blossombase[b] >= 0
                    and label[b] == 1 and dualvar[b] == 0):
                expand_blossom(b, True)

    # Convert remote endpoints to plain vertex ids.
    for v in range(nvertex):
        if mate[v] >= 0:
            mate[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert mate[v] == -1 or mate[mate[v]] == v
    return mate


def min_weight_perfect_matching_scalar(
        costs: Dict[Tuple[int, int], float],
        n_vertices: int) -> Set[Tuple[int, int]]:
    """Minimum-weight perfect matching on a graph with float costs.

    ``costs`` maps unordered pairs ``(i, j)`` with ``i < j`` to a
    non-negative cost; ``n_vertices`` must be even and a perfect
    matching must exist (in the scheduler the graph is complete, so it
    always does).  Returns the matching as a set of ``(i, j)`` pairs
    with ``i < j``.

    Implementation: quantise the costs onto an integer grid, transform
    cost -> (max + 1 - cost) so smaller cost means bigger weight, and
    run :func:`max_weight_matching_scalar` in max-cardinality mode.
    """
    if n_vertices % 2 != 0:
        raise ValueError(f"perfect matching needs an even vertex count, "
                         f"got {n_vertices}")
    if n_vertices == 0:
        return set()
    for (i, j), cost in costs.items():
        if not (0 <= i < j < n_vertices):
            raise ValueError(f"bad pair ({i}, {j}) for {n_vertices} vertices")
        if cost < 0.0:
            raise ValueError(f"costs must be non-negative, got {cost}")

    max_cost = max(costs.values(), default=0.0)
    # Quantisation grid fine enough that rounding never reorders two
    # schedules that differ by more than one part in 1e12.
    grid = max_cost / 1e12 if max_cost > 0.0 else 1.0
    int_costs = {pair: int(round(cost / grid)) for pair, cost in costs.items()}
    top = max(int_costs.values(), default=0) + 1
    edges = [(i, j, top - c) for (i, j), c in int_costs.items()]

    mate = max_weight_matching_scalar(edges, maxcardinality=True)
    matching = {(v, mate[v]) for v in range(len(mate)) if 0 <= v < mate[v]}
    matched_vertices = {v for pair in matching for v in pair}
    if len(matched_vertices) != n_vertices:
        raise ValueError("graph admits no perfect matching")
    return matching


def matching_cost_scalar(matching: Set[Tuple[int, int]],
                  costs: Dict[Tuple[int, int], float]) -> float:
    """Total cost of a matching under a pair-cost map."""
    total = 0.0
    # Frozen reference: hash-order accumulation is part of the frozen
    # behaviour and must not be "fixed" to sorted order here.
    for (i, j) in matching:  # repro-lint: disable=RPR405
        key = (i, j) if i < j else (j, i)
        total += costs[key]
    return total
