"""SIC-aware scheduling (paper Section 6).

* :mod:`repro.scheduling.matching` — Edmonds' blossom algorithm for
  maximum-weight matching, implemented from scratch, plus the
  minimum-weight *perfect* matching wrapper the scheduler needs;
* :mod:`repro.scheduling.scheduler` — the reduction of Fig. 12: build
  the client-pair cost graph (with a dummy node for odd client counts),
  solve it, and emit the upload schedule;
* :mod:`repro.scheduling.baselines` — serial FIFO, greedy pairing,
  random pairing and a brute-force optimal pairing oracle.
"""

from repro.scheduling.matching import (
    max_weight_matching,
    min_weight_perfect_matching,
)
from repro.scheduling.scheduler import (
    BacklogCosts,
    Schedule,
    ScheduledSlot,
    SicScheduler,
    UploadClient,
)
from repro.scheduling.baselines import (
    brute_force_schedule,
    greedy_schedule,
    random_schedule,
    serial_schedule,
)
from repro.scheduling.backlog import BacklogClient, drain_backlog
from repro.scheduling.groups import (
    GroupSchedule,
    exhaustive_group_schedule,
    greedy_group_schedule,
)
from repro.scheduling.online import (
    ArrivalClient,
    compare_policies_online,
    simulate_online,
)

__all__ = [
    "ArrivalClient",
    "BacklogClient",
    "BacklogCosts",
    "GroupSchedule",
    "Schedule",
    "ScheduledSlot",
    "SicScheduler",
    "UploadClient",
    "brute_force_schedule",
    "compare_policies_online",
    "drain_backlog",
    "exhaustive_group_schedule",
    "greedy_group_schedule",
    "greedy_schedule",
    "max_weight_matching",
    "min_weight_perfect_matching",
    "random_schedule",
    "serial_schedule",
    "simulate_online",
]
