"""Online SIC-aware scheduling with stochastic packet arrivals.

The paper's scheduler is offline: it assumes a known backlog.  Real
APs see packets *arrive*; Section 3 motivates exactly this setting
("each transmitter has a finite number of packets ... it needs to get
a fair share of the channel to transmit its packets without inordinate
amount of delay").  This module closes that loop with a queueing
simulation:

* packets arrive per client as Poisson processes;
* a service policy picks what to send whenever the channel frees:

  - ``fifo`` — plain 802.11 behaviour: serve head-of-line packets one
    at a time in arrival order;
  - ``sic_pairing`` — run the blossom matching over the clients that
    currently have a head-of-line packet and serve the resulting slots
    (one packet per client per batch, re-planned when the batch ends);

* metrics: mean/percentile packet delay, served counts, utilisation.

The interesting question is *delay*, not just airtime: SIC pairing
drains the queue faster, so under load it wins on sojourn time too —
quantified by the online test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.scheduler import Schedule, SicScheduler, UploadClient
from repro.techniques.pairing import PairAirtime
from repro.util.rng import SeedLike, as_seed_sequence, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ArrivalClient:
    """A client with a Poisson packet-arrival process."""

    name: str
    rss_w: float
    arrival_rate_hz: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        check_positive("rss_w", self.rss_w)
        check_positive("arrival_rate_hz", self.arrival_rate_hz)

    def as_upload_client(self) -> UploadClient:
        return UploadClient(self.name, self.rss_w)


@dataclass
class OnlineMetrics:
    """Delay and throughput statistics of one online run."""

    delays_s: List[float] = field(default_factory=list)
    served_packets: int = 0
    busy_time_s: float = 0.0
    horizon_s: float = 0.0
    leftover_packets: int = 0

    @property
    def mean_delay_s(self) -> float:
        if not self.delays_s:
            return 0.0
        return float(np.mean(self.delays_s))

    @property
    def p95_delay_s(self) -> float:
        if not self.delays_s:
            return 0.0
        return float(np.quantile(self.delays_s, 0.95))

    @property
    def utilisation(self) -> float:
        if self.horizon_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / self.horizon_s)


def _arrival_times_scalar(clients: Sequence[ArrivalClient],
                          horizon_s: float,
                          rng: np.random.Generator
                          ) -> List[Tuple[float, str]]:
    """One-draw-at-a-time :func:`_arrival_times`, kept as the golden
    reference (PR-1 convention): the vectorised generator must replay
    this draw for draw.  Must stay behaviourally frozen."""
    events: List[Tuple[float, str]] = []
    for client in clients:
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / client.arrival_rate_hz))
            if t > horizon_s:
                break
            events.append((t, client.name))
    events.sort()
    return events


def _arrival_times(clients: Sequence[ArrivalClient], horizon_s: float,
                   rng: np.random.Generator) -> List[Tuple[float, str]]:
    """Merged, time-sorted (arrival_time, client) events.

    Draw for draw identical to :func:`_arrival_times_scalar` with the
    same generator: block draws of ``exponential(size=n)`` consume the
    bit stream exactly like ``n`` sequential scalar draws, and
    ``np.cumsum`` accumulates left to right exactly like the scalar
    ``t +=`` chain.  The crossing draw index is found on a *snapshot*
    of the generator state; the state is then rewound and exactly the
    draws the scalar loop would have consumed are re-drawn, so every
    client (and any later user of ``rng``) sees an unperturbed stream.
    """
    events: List[Tuple[float, str]] = []
    for client in clients:
        scale = 1.0 / client.arrival_rate_hz
        # Expected number of draws incl. the horizon-crossing one, plus
        # head room so one block usually suffices.
        block = int(horizon_s / scale * 1.25) + 16
        snapshot = rng.bit_generator.state
        t = 0.0
        needed = 0
        while True:
            # Block draws on a state snapshot: the stream is rewound
            # below, so looping here never desyncs from the frozen
            # per-draw reference.
            gaps = rng.exponential(scale, size=block)  # repro-lint: disable=RPR403
            times = np.cumsum(np.concatenate(([t], gaps)))[1:]
            crossed = (times > horizon_s).nonzero()[0]
            if crossed.size:
                needed += int(crossed[0]) + 1
                break
            needed += block
            t = float(times[-1])
        rng.bit_generator.state = snapshot
        # One exact-size block per client — precisely the draws the
        # frozen scalar loop would have consumed for this client.
        gaps = rng.exponential(scale, size=needed)  # repro-lint: disable=RPR403
        times = np.cumsum(gaps)[:-1]
        events.extend(zip(times.tolist(), [client.name] * (needed - 1)))
    events.sort()
    return events


class PairCostCache:
    """Memoises scheduler costs across online batches.

    Pair and solo airtimes depend only on the RSS values involved (and
    the scheduler's fixed technique set), and a whole batch schedule
    depends only on *which* clients are backlogged — so in steady state
    successive batches repeat and the blossom matching can be skipped
    entirely.  Three memo levels:

    * :meth:`solo_cost` — keyed by the client's RSS;
    * :meth:`pair_cost` — keyed by the order-normalised RSS pair
      (joint airtime is symmetric in its two clients);
    * :meth:`schedule` — keyed by the frozenset of backlogged
      ``(name, rss_w)`` pairs.

    The schedule memo assumes a consistent batch order per client set
    (true whenever batches are sub-sequences of one fixed client list,
    as in :func:`simulate_online`); the returned :class:`Schedule`
    objects are frozen dataclasses, safe to share between hits.
    ``hits`` / ``misses`` count schedule-memo outcomes.
    """

    def __init__(self, scheduler: SicScheduler) -> None:
        self.scheduler = scheduler
        self._solo: Dict[float, float] = {}
        self._pair: Dict[Tuple[float, float], PairAirtime] = {}
        self._schedules: Dict[FrozenSet[Tuple[str, float]], Schedule] = {}
        self.hits = 0
        self.misses = 0

    def solo_cost(self, client: UploadClient) -> float:
        """Memoised :meth:`SicScheduler.solo_cost`."""
        cost = self._solo.get(client.rss_w)
        if cost is None:
            cost = self.scheduler.solo_cost(client)
            self._solo[client.rss_w] = cost
        return cost

    def pair_cost(self, a: UploadClient, b: UploadClient) -> PairAirtime:
        """Memoised :meth:`SicScheduler.pair_cost` (symmetric key)."""
        key = ((a.rss_w, b.rss_w) if a.rss_w <= b.rss_w
               else (b.rss_w, a.rss_w))
        cost = self._pair.get(key)
        if cost is None:
            cost = self.scheduler.pair_cost(a, b)
            self._pair[key] = cost
        return cost

    def schedule(self, batch: Sequence[UploadClient]) -> Schedule:
        """Memoised :meth:`SicScheduler.schedule` over the batch set."""
        key = frozenset((c.name, c.rss_w) for c in batch)
        sched = self._schedules.get(key)
        if sched is None:
            self.misses += 1
            sched = self.scheduler.schedule(batch)
            self._schedules[key] = sched
        else:
            self.hits += 1
        return sched


def simulate_online(scheduler: SicScheduler,
                    clients: Sequence[ArrivalClient],
                    horizon_s: float,
                    policy: str = "sic_pairing",
                    seed: SeedLike = None,
                    cache: Optional[PairCostCache] = None,
                    use_cache: bool = True) -> OnlineMetrics:
    """Run one online scheduling experiment over ``horizon_s`` seconds.

    Arrivals after the horizon are cut off; the run continues until the
    already-queued packets drain (so every generated packet gets a
    delay sample).  ``policy`` is ``"fifo"`` or ``"sic_pairing"``.

    With ``use_cache`` (the default) batch schedules and solo costs are
    memoised through a :class:`PairCostCache` — in steady state the
    backlogged-client set repeats, so most batches skip the matching
    entirely while producing bit-identical metrics.  Pass ``cache`` to
    share memoised costs across runs of the same scheduler; it takes
    precedence over ``use_cache``.
    """
    if policy not in ("fifo", "sic_pairing"):
        raise ValueError(f"unknown policy {policy!r}")
    check_positive("horizon_s", horizon_s)
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ValueError(f"client names must be unique, got {names}")
    if cache is None and use_cache:
        cache = PairCostCache(scheduler)

    rng = make_rng(seed)
    arrivals = _arrival_times(clients, horizon_s, rng)
    by_name = {c.name: c for c in clients}

    metrics = OnlineMetrics(horizon_s=horizon_s)
    # Per-client FIFO queues of arrival timestamps (deques: every
    # service pops from the head, which is O(1) there and O(k) on a
    # plain list), plus a maintained total so the drain loop does not
    # re-scan every queue per iteration.
    queues: Dict[str, Deque[float]] = {c.name: deque() for c in clients}
    pending = arrivals[::-1]  # pop from the end = earliest first
    queued = 0

    now = 0.0

    def admit_until(t: float) -> int:
        admitted = 0
        while pending and pending[-1][0] <= t:
            arrival_time, name = pending.pop()
            queues[name].append(arrival_time)
            admitted += 1
        return admitted

    while pending or queued > 0:
        queued += admit_until(now)
        if queued == 0:
            # Idle until the next arrival.
            now = pending[-1][0]
            continue

        if policy == "fifo":
            # Serve the globally earliest head-of-line packet, alone.
            name = min((n for n, q in queues.items() if q),
                       key=lambda n: queues[n][0])
            arrival_time = queues[name].popleft()
            queued -= 1
            client = by_name[name].as_upload_client()
            service = (cache.solo_cost(client) if cache is not None
                       else scheduler.solo_cost(client))
            now += service
            metrics.busy_time_s += service
            metrics.delays_s.append(now - arrival_time)
            metrics.served_packets += 1
            continue

        # sic_pairing: schedule one head-of-line packet per backlogged
        # client as an optimal batch, then serve its slots in order.
        batch = [by_name[name].as_upload_client()
                 for name, q in queues.items() if q]
        schedule = (cache.schedule(batch) if cache is not None
                    else scheduler.schedule(batch))
        for slot in schedule.slots:
            now += slot.duration_s
            metrics.busy_time_s += slot.duration_s
            for name in slot.clients:
                arrival_time = queues[name].popleft()
                queued -= 1
                metrics.delays_s.append(now - arrival_time)
                metrics.served_packets += 1
            # New arrivals may join the next batch, not this one.
        queued += admit_until(now)

    metrics.leftover_packets = queued
    return metrics


def compare_policies_online(scheduler: SicScheduler,
                            clients: Sequence[ArrivalClient],
                            horizon_s: float,
                            seed: SeedLike = None
                            ) -> Dict[str, OnlineMetrics]:
    """Run both policies on the *same* arrival sample paths.

    ``seed`` is resolved once into a ``SeedSequence``; each policy then
    gets a fresh generator from that same sequence, so both replay an
    identical arrival stream and a repeated call with the same seed
    reproduces the whole comparison.
    """
    seed_seq = as_seed_sequence(seed)
    out: Dict[str, OnlineMetrics] = {}
    for policy in ("fifo", "sic_pairing"):
        out[policy] = simulate_online(scheduler, clients, horizon_s,
                                      policy=policy, seed=make_rng(seed_seq))
    return out
